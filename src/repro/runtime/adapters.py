"""Mechanism adapters: one runtime interface over every ``perturb``.

The privacy mechanisms grew three historical protocols:

- **per-window flip mechanisms** (the pattern-level PPMs, multi-pattern
  composition): independent per-type randomized response, batch-applied
  via :func:`repro.core.ppm.apply_randomized_response`;
- **whole-matrix randomized response** (event-/user-level baselines):
  one uniform draw over the full indicator matrix;
- **sequential releasers** (BD/BA, landmark): per-timestamp scheduler
  state exposed through ``online_releaser``.

:func:`runtime_mechanism` classifies a mechanism once and returns a
:class:`RuntimeMechanism` the executors use uniformly:
``perturb_batch`` delegates to the mechanism's own ``perturb`` (bit
parity with the historical batch path is free), and ``stepper`` yields
an object whose ``step_block`` processes window chunks *bit-identically
to the batch path under the same seed* — the property the executor
parity suite pins.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.utils.rng import RngLike, derive_rng, ensure_rng


class RuntimeMechanism:
    """Uniform executor-facing view of one privacy mechanism."""

    #: Whether this mechanism's stepper supports ``seek`` — skipping a
    #: prefix of windows while drawing the *same* randomness the batch
    #: path would draw for the remaining windows.
    #: :class:`~repro.runtime.executors.ShardedExecutor` shards seekable
    #: mechanisms directly.
    shardable: bool = False

    #: Whether this mechanism's stepper supports the checkpoint
    #: protocol — ``snapshot()``/``restore()`` of the full release state
    #: (scheduler state, trace, last release, rng-pool position).
    #: Sequential schedulers (BD/BA, landmark) cannot seek, but the
    #: sharded executor parallelizes them anyway through a sequential
    #: scheduler-state prepass that checkpoints at every shard boundary
    #: (see :mod:`repro.runtime.sharding`).
    checkpointable: bool = False

    def __init__(self, mechanism):
        self.mechanism = mechanism

    @property
    def name(self) -> str:
        if self.mechanism is None:
            return "identity"
        return getattr(
            self.mechanism, "name", type(self.mechanism).__name__
        )

    def perturb_batch(
        self, stream: IndicatorStream, *, rng: RngLike = None
    ) -> IndicatorStream:
        """One-shot perturbation of a materialized stream."""
        if self.mechanism is None:
            return stream
        return self.mechanism.perturb(stream, rng=rng)

    def stepper(
        self,
        alphabet: EventAlphabet,
        *,
        rng: RngLike = None,
        horizon: Optional[int] = None,
    ):
        """A chunk stepper reproducing ``perturb_batch`` bit for bit.

        Raises ``TypeError`` for mechanisms that only support batch
        perturbation.
        """
        raise TypeError(
            f"mechanism {type(self.mechanism).__name__} supports only batch "
            "perturbation; use BatchExecutor"
        )


class _IdentityRuntime(RuntimeMechanism):
    shardable = True

    def stepper(self, alphabet, *, rng=None, horizon=None):
        return _IdentityStepper()


class _IdentityStepper:
    def step_block(self, matrix: np.ndarray) -> np.ndarray:
        return matrix

    def seek(self, n_windows: int) -> None:
        """Skip ``n_windows`` windows (the identity draws nothing)."""

    def snapshot(self) -> dict:
        """The identity holds no state; sessions persist only counters."""
        return {}

    def restore(self, snapshot: dict) -> None:
        """Nothing to restore (stateless)."""


class FlipStepper:
    """Chunked randomized response over named indicator columns.

    ``layers`` is a list of flip-probability maps applied in sequence
    (one per independent PPM).  Child generators are derived exactly as
    the batch path derives them — ``derive_rng(rng, "multi-ppm", i)``
    per layer when layered, then ``derive_rng(parent, "rr-flip", type)``
    per column — and each chunk consumes the next slice of the same
    per-type child streams, so chunked and batch decisions coincide.
    """

    def __init__(
        self,
        layers: Sequence[Dict[str, float]],
        alphabet: EventAlphabet,
        rng: RngLike,
        *,
        layered: bool = False,
    ):
        self._plan: List[List] = []
        for position, flip_by_type in enumerate(layers):
            parent = derive_rng(rng, "multi-ppm", position) if layered else rng
            entries = []
            for event_type, probability in flip_by_type.items():
                if not 0.0 <= probability <= 0.5:
                    raise ValueError(
                        f"flip probability for {event_type!r} must be in "
                        f"[0, 1/2], got {probability}"
                    )
                if event_type not in alphabet:
                    raise ValueError(
                        f"stream alphabet lacks protected element types "
                        f"[{event_type!r}]"
                    )
                entries.append(
                    (
                        alphabet.index(event_type),
                        probability,
                        derive_rng(parent, "rr-flip", event_type),
                    )
                )
            self._plan.append(entries)

    def step_block(self, matrix: np.ndarray) -> np.ndarray:
        released = matrix.copy()
        n_windows = released.shape[0]
        for entries in self._plan:
            for column, probability, child in entries:
                flips = child.random(n_windows) < probability
                released[:, column] ^= flips
        return released

    def seek(self, n_windows: int) -> None:
        """Skip the flip decisions of the first ``n_windows`` windows.

        Every per-type child consumes exactly one PCG64 word per window
        (one ``float64`` per flip decision), so advancing each child's
        bit generator by ``n_windows`` leaves the stepper in the state a
        sequential run over those windows would — the foundation of the
        sharded executor's bit-identity with the batch path.
        """
        if n_windows < 0:
            raise ValueError(f"n_windows must be >= 0, got {n_windows}")
        if n_windows == 0:
            return
        for entries in self._plan:
            for _column, _probability, child in entries:
                child.bit_generator.advance(n_windows)

    def snapshot(self) -> dict:
        """Per-type child generator states, in plan order (picklable)."""
        return {
            "children": [
                [child.bit_generator.state for _c, _p, child in entries]
                for entries in self._plan
            ]
        }

    def restore(self, snapshot: dict) -> None:
        """Put every per-type child back at the snapshotted position."""
        children = snapshot["children"]
        if len(children) != len(self._plan) or any(
            len(states) != len(entries)
            for states, entries in zip(children, self._plan)
        ):
            raise ValueError(
                "snapshot layer/type layout does not match this stepper"
            )
        for entries, states in zip(self._plan, children):
            for (_column, _probability, child), state in zip(entries, states):
                child.bit_generator.state = state


class _FlipRuntime(RuntimeMechanism):
    """Pattern-level PPMs: single or multi-pattern per-type flips."""

    shardable = True

    def __init__(self, mechanism, layers, *, layered):
        super().__init__(mechanism)
        self._layers = layers
        self._layered = layered

    def stepper(self, alphabet, *, rng=None, horizon=None):
        return FlipStepper(
            [layer() for layer in self._layers],
            alphabet,
            rng,
            layered=self._layered,
        )


class _MatrixRRRuntime(RuntimeMechanism):
    """Whole-matrix randomized response (event-/user-level baselines)."""

    shardable = True

    def stepper(self, alphabet, *, rng=None, horizon=None):
        mechanism = self.mechanism
        if hasattr(mechanism, "flip_probability"):
            probability = mechanism.flip_probability
        else:
            # User-level: the budget is split across every indicator of
            # the whole stream, so the horizon must be known.
            if horizon is None:
                raise TypeError(
                    "user-level randomized response needs the stream "
                    "horizon to split its budget; chunked execution "
                    "requires horizon="
                )
            from repro.mechanisms.randomized_response import (
                epsilon_to_flip_probability,
            )

            bits = horizon * len(alphabet)
            if bits == 0:
                probability = 0.0
            else:
                probability = epsilon_to_flip_probability(
                    mechanism.epsilon / bits
                )
        return _MatrixRRStepper(
            ensure_rng(rng), probability, len(alphabet)
        )


class _MatrixRRStepper:
    def __init__(self, generator, probability: float, width: int):
        self._generator = generator
        self._probability = probability
        self._width = width

    def step_block(self, matrix: np.ndarray) -> np.ndarray:
        flips = self._generator.random(matrix.shape) < self._probability
        return matrix ^ flips

    def seek(self, n_windows: int) -> None:
        """Skip the whole-matrix draws of the first ``n_windows`` windows.

        The batch draw is row-major over ``(n_windows, width)``, one
        PCG64 word per cell, so skipping ``n_windows`` rows means
        advancing ``n_windows * width`` words.
        """
        if n_windows < 0:
            raise ValueError(f"n_windows must be >= 0, got {n_windows}")
        if n_windows == 0:
            return
        self._generator.bit_generator.advance(n_windows * self._width)

    def snapshot(self) -> dict:
        """The matrix generator's position (one stream for all cells)."""
        return {"generator": self._generator.bit_generator.state}

    def restore(self, snapshot: dict) -> None:
        self._generator.bit_generator.state = snapshot["generator"]


class _SequentialRuntime(RuntimeMechanism):
    """Scheduler mechanisms exposing an online releaser (BD/BA, landmark)."""

    checkpointable = True

    def stepper(self, alphabet, *, rng=None, horizon=None, publish_trace=True):
        releaser = self.mechanism.online_releaser(
            len(alphabet), rng=rng, horizon=horizon
        )
        return _SequentialStepper(
            releaser, self.mechanism if publish_trace else None
        )


class _SequentialStepper:
    """Chunk stepper over an online releaser (BD/BA, landmark).

    Mirrors the batch path's trace bookkeeping lazily: the releaser's
    trace is published to ``mechanism.last_trace`` when this stepper
    *first steps*, not at construction — so building a stepper (or a
    speculative one that never runs) cannot discard the trace of a
    completed run.  The trace object is then mutated in place as the
    releaser steps, keeping ``last_trace`` current through a chunked
    run.  Shard replicas are built with ``publish_trace=False`` so
    partial traces never race the authoritative prepass trace.
    """

    def __init__(self, releaser, mechanism=None):
        self.releaser = releaser
        self._trace_owner = (
            mechanism if hasattr(mechanism, "last_trace") else None
        )

    def _publish_trace(self) -> None:
        if self._trace_owner is None:
            return
        trace = getattr(self.releaser, "trace", None)
        if trace is not None:
            self._trace_owner.last_trace = trace
        self._trace_owner = None

    def step_block(self, matrix: np.ndarray) -> np.ndarray:
        self._publish_trace()
        released = self.releaser.step_block(matrix.astype(float))
        return released >= 0.5

    def advance_block(self, matrix: np.ndarray) -> None:
        """Advance scheduler state without materializing released rows."""
        self._publish_trace()
        self.releaser.advance_block(matrix.astype(float))

    # -- checkpoint protocol -------------------------------------------

    def snapshot(self, *, include_trace: bool = True) -> dict:
        """Checkpoint of the full release state (see the releasers).

        ``include_trace=False`` yields the compact shard-replica form:
        the accounting-trace prefix is omitted (replay never reads it;
        the prepass trace stays authoritative).
        """
        return self.releaser.snapshot(include_trace=include_trace)

    def restore(self, snapshot: dict) -> None:
        self.releaser.restore(snapshot)

    def decision_slice(self, start: int, stop: int):
        """Recorded scheduler decisions for [start, stop), if supported.

        Returns ``None`` for releasers without decision replay (the
        landmark mechanism draws fresh noise at every regular timestamp,
        so replaying its decisions would not skip any work).
        """
        releaser = self.releaser
        if hasattr(releaser, "decision_slice"):
            return releaser.decision_slice(start, stop)
        return None

    def replay_block(self, matrix: np.ndarray, decisions) -> np.ndarray:
        """Reproduce a stepped block from recorded decisions."""
        self._publish_trace()
        released = self.releaser.replay_block(
            matrix.astype(float), decisions
        )
        return released >= 0.5


def runtime_mechanism(mechanism) -> RuntimeMechanism:
    """Classify ``mechanism`` into its runtime adapter.

    ``None`` yields the identity (no protection).  Mechanisms that match
    none of the streamable protocols still run under the batch executor
    through their own ``perturb``.
    """
    if mechanism is None:
        return _IdentityRuntime(mechanism)
    if not hasattr(mechanism, "perturb"):
        raise TypeError(
            "mechanism must expose perturb(IndicatorStream, rng=...)"
        )
    if hasattr(mechanism, "online_releaser"):
        return _SequentialRuntime(mechanism)
    if hasattr(mechanism, "ppms"):
        return _FlipRuntime(
            mechanism,
            [ppm.flip_probability_by_type for ppm in mechanism.ppms],
            layered=True,
        )
    if hasattr(mechanism, "flip_probability_by_type"):
        return _FlipRuntime(
            mechanism, [mechanism.flip_probability_by_type], layered=False
        )
    if hasattr(mechanism, "flip_probability") or hasattr(
        mechanism, "per_bit_epsilon"
    ):
        return _MatrixRRRuntime(mechanism)
    return RuntimeMechanism(mechanism)
