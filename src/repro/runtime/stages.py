"""Pipeline stages of the streaming runtime.

The service phase (Section III-A, Fig. 2) is one conceptual pipeline —
events → windows → existence indicators → PPM perturbation → query
matching → quality metrics.  Each stage is a small reusable object:

- :class:`WindowStage` wraps any window assigner from
  :mod:`repro.streams.windows` and exposes the per-window event-type
  sets (with a vectorized fast path for tumbling windows);
- :class:`IndicatorExtractor` reduces window type-sets to the boolean
  indicator matrix in one scatter instead of per-window row loops;
- :class:`QueryMatcher` answers all registered containment queries with
  precomputed column indices;
- :class:`MetricsSink` accumulates confusion counts and derives the
  quality metric ``Q`` and ``MRE_Q`` (Eqs. (3)/(4)).

The stages are deliberately free of privacy logic — the mechanism stage
lives in :mod:`repro.runtime.adapters` because it has to bridge several
historical ``perturb`` protocols.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.metrics.confusion import ConfusionCounts
from repro.metrics.mre import mean_relative_error
from repro.metrics.quality import DataQuality
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.stream import EventStream
from repro.streams.windows import TumblingWindows, Window


class WindowStage:
    """Windowing stage: an assigner lifted into the pipeline.

    ``type_sets`` is what downstream extraction needs — the set of event
    types per window.  For tumbling windows it is computed from the
    event arrays directly (one pass, no per-window ``Window`` object
    construction); any other assigner goes through its ``assign``.
    """

    def __init__(self, assigner):
        if not hasattr(assigner, "assign"):
            raise TypeError(
                f"window assigner must expose assign(EventStream), got "
                f"{type(assigner).__name__}"
            )
        self.assigner = assigner

    def windows(self, stream: EventStream) -> List[Window]:
        """The materialized windows (general path)."""
        return self.assigner.assign(stream)

    def type_sets(self, stream: EventStream) -> List[frozenset]:
        """Per-window event-type sets, in window order."""
        assigner = self.assigner
        if isinstance(assigner, TumblingWindows):
            return self._tumbling_type_sets(stream, assigner)
        return [window.event_types() for window in self.windows(stream)]

    @staticmethod
    def _tumbling_type_sets(
        stream: EventStream, assigner: TumblingWindows
    ) -> List[frozenset]:
        events = stream.events
        if not events:
            return []
        origin = (
            assigner.origin
            if assigner.origin is not None
            else events[0].timestamp
        )
        timestamps = np.fromiter(
            (event.timestamp for event in events), dtype=float, count=len(events)
        )
        if timestamps.min() < origin:
            offender = float(timestamps.min())
            raise ValueError(
                f"event at t={offender} precedes window origin {origin}"
            )
        buckets = ((timestamps - origin) // assigner.width).astype(np.int64)
        if assigner.emit_empty:
            bucket_ids = np.arange(0, int(buckets.max()) + 1)
        else:
            bucket_ids = np.unique(buckets)
        row_of_bucket = {int(bucket): row for row, bucket in enumerate(bucket_ids)}
        sets: List[set] = [set() for _ in bucket_ids]
        for event, bucket in zip(events, buckets):
            sets[row_of_bucket[int(bucket)]].add(event.event_type)
        return [frozenset(types) for types in sets]


class IndicatorExtractor:
    """Existence-indicator reduction over a fixed alphabet.

    Builds the ``(n_windows, len(alphabet))`` boolean matrix with a
    single coordinate scatter.  ``strict=True`` raises on event types
    outside the alphabet (matching
    :meth:`IndicatorStream.from_window_sets`); the default silently
    ignores them, as the engine's service phase does.
    """

    def __init__(self, alphabet: EventAlphabet, *, strict: bool = False):
        if not isinstance(alphabet, EventAlphabet):
            raise TypeError(
                f"alphabet must be EventAlphabet, got {type(alphabet).__name__}"
            )
        self.alphabet = alphabet
        self.strict = strict
        self._index = {name: i for i, name in enumerate(alphabet.types)}

    def extract_matrix(
        self, type_sets: Sequence[Iterable[str]]
    ) -> np.ndarray:
        """The boolean indicator matrix of the given window type-sets."""
        rows: List[int] = []
        cols: List[int] = []
        index = self._index
        count = 0
        for row, window in enumerate(type_sets):
            count = row + 1
            for name in window:
                col = index.get(name)
                if col is None:
                    if self.strict:
                        raise KeyError(
                            f"event type {name!r} is not in the alphabet"
                        )
                    continue
                rows.append(row)
                cols.append(col)
        matrix = np.zeros((count, len(self.alphabet)), dtype=bool)
        if rows:
            matrix[rows, cols] = True
        return matrix

    def extract(self, type_sets: Sequence[Iterable[str]]) -> IndicatorStream:
        """The indicator stream of the given window type-sets."""
        return IndicatorStream(self.alphabet, self.extract_matrix(type_sets))


class QueryMatcher:
    """Answers registered containment queries over indicator matrices.

    Column indices per query are resolved once at construction; each
    ``answer`` call is one ``all``-reduction per query.
    """

    def __init__(self, alphabet: EventAlphabet, queries: Sequence):
        self.alphabet = alphabet
        self._columns: Dict[str, List[int]] = {}
        for query in queries:
            elements = getattr(query.pattern, "elements", None)
            if elements is None:
                raise ValueError(
                    f"query {query.name!r} uses a non-sequential pattern; the "
                    "windowed-indicator mode needs seq-of-types patterns "
                    "(use match() for full CEP semantics)"
                )
            self._columns[query.name] = alphabet.indices(list(elements))

    @property
    def query_names(self) -> List[str]:
        return list(self._columns)

    def answer(self, matrix: np.ndarray) -> Dict[str, np.ndarray]:
        """Per-query boolean detection vectors over ``matrix`` rows."""
        return {
            name: matrix[:, columns].all(axis=1)
            for name, columns in self._columns.items()
        }


class MetricsSink:
    """Accumulates released-versus-truth confusion across queries.

    Micro-averaged over all queries (Section III-B); chunked execution
    updates the sink incrementally, so metrics never require the full
    stream in memory.
    """

    def __init__(self, *, alpha: float = 0.5):
        self.alpha = alpha
        self._counts = ConfusionCounts()

    def update(
        self,
        true_answers: Dict[str, np.ndarray],
        released_answers: Dict[str, np.ndarray],
    ) -> None:
        for name, truth in true_answers.items():
            self._counts = self._counts + ConfusionCounts.from_vectors(
                truth, released_answers[name]
            )

    def absorb(self, counts: ConfusionCounts) -> None:
        """Fold pre-accumulated confusion counts into the sink.

        Sharded execution accumulates counts per shard and merges them
        here; addition of counts is associative, so the merged quality
        equals the sequentially-accumulated one.
        """
        self._counts = self._counts + counts

    @property
    def confusion(self) -> ConfusionCounts:
        return self._counts

    def quality(self, alpha: Optional[float] = None) -> DataQuality:
        """The combined quality ``Q`` of everything accumulated so far."""
        return DataQuality.from_confusion(
            self._counts, alpha=self.alpha if alpha is None else alpha
        )

    def mre(
        self, q_ordinary: float = 1.0, alpha: Optional[float] = None
    ) -> float:
        """``MRE_Q`` against the ordinary (unperturbed) quality."""
        return mean_relative_error(q_ordinary, self.quality(alpha).q)
