"""Declarative stream sinks: where the sanitized stream goes.

A :class:`StreamSink` receives, window by window, the *released*
(perturbed) indicator row and the per-query answers computed from it —
never the original data — and egresses them: into memory, into
``csv``/``jsonl`` files, into a quality-metrics aggregate, or into a
user callback.  Sinks are resolved from registered spec strings
(:mod:`repro.io.registry`) or passed as objects when their payload
cannot live in JSON (a Python callback).

The contract: :meth:`StreamSink.open` fixes the alphabet and query
names (``append=True`` continues a previous run's output, which is how
the gateway resumes file sinks); :meth:`StreamSink.write` takes one
window; :meth:`StreamSink.close` flushes; :meth:`StreamSink.result`
returns whatever the sink accumulated.  A sink that sets
:attr:`StreamSink.wants_truth` also receives the engine-internal true
answers (a trusted-engine diagnostic — the metrics sink aggregates
confusion counts from it; file sinks never see it).
"""

from __future__ import annotations

import csv
import json
import os

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.io.registry import register_sink
from repro.obs.metrics import Counter, default_registry
from repro.service.specgrammar import SpecKey
from repro.streams.indicator import EventAlphabet, IndicatorStream

__all__ = [
    "CallbackSink",
    "CsvSink",
    "JsonlSink",
    "MemorySink",
    "MetricsSink",
    "StreamSink",
    "write_indicator_csv",
]


def write_indicator_csv(
    stream: IndicatorStream, path: str, *, append: bool = False
) -> None:
    """Write an indicator stream as CSV (header = alphabet, rows = 0/1).

    The format round-trips through
    :func:`~repro.io.sources.read_indicator_csv` / the ``csv:`` source.
    """
    sink = CsvSink(path)
    sink.open(alphabet=stream.alphabet, query_names=(), append=append)
    try:
        matrix = stream.matrix_view()
        for index in range(matrix.shape[0]):
            sink.write(index, matrix[index], {})
    finally:
        sink.close()


class StreamSink:
    """Base class of all stream sinks (windows in, egress out)."""

    #: When True, :meth:`write` receives the per-window true answers
    #: (engine-internal ground truth) alongside the released ones.
    wants_truth: bool = False

    def __init__(self):
        self._alphabet: Optional[EventAlphabet] = None
        self._query_names: Tuple[str, ...] = ()
        # Per-sink obs counters are the single source of truth behind
        # windows_written / windows_shed; the process-wide aggregates
        # (repro_sink_*_total in the default registry) ride along.
        # Created on first use: spec-built sinks must stay structurally
        # comparable, and a Counter carries a lock that never compares
        # equal.
        self._written_counter: Optional[Counter] = None
        self._shed_counter: Optional[Counter] = None

    def open(
        self,
        *,
        alphabet: EventAlphabet,
        query_names: Sequence[str] = (),
        append: bool = False,
    ) -> "StreamSink":
        """Prepare for one run's windows.

        ``append=True`` continues earlier output instead of starting
        fresh (file sinks skip their header; accumulating sinks keep
        accumulating) — the gateway resumes sinks this way.
        """
        self._alphabet = alphabet
        self._query_names = tuple(query_names)
        if not append or self._written_counter is None:
            # A fresh open starts a fresh output record: new counters
            # rather than reset() so references handed out earlier keep
            # describing the run they were taken from.
            self._written_counter = Counter("windows_written")
            self._shed_counter = Counter("windows_shed")
        self._open(append=append)
        return self

    def _open(self, *, append: bool) -> None:
        """Subclass hook called by :meth:`open`."""

    @property
    def alphabet(self) -> EventAlphabet:
        if self._alphabet is None:
            raise RuntimeError(
                "sink is not open; call open(alphabet=..., "
                "query_names=...) first (the service does this when it "
                "runs)"
            )
        return self._alphabet

    @property
    def query_names(self) -> Tuple[str, ...]:
        return self._query_names

    @property
    def windows_written(self) -> int:
        """Windows egressed so far (across appends)."""
        if self._written_counter is None:
            return 0
        return int(self._written_counter.value)

    @property
    def windows_shed(self) -> int:
        """Windows the gateway's rate limiter shed before this sink.

        A shed window never reaches :meth:`write` — it was dropped at
        ingress by a tenant's token bucket — but its loss is part of
        this pipeline's output record, so the count is surfaced here
        (and in the metrics sink's ``result()``) instead of vanishing.
        """
        if self._shed_counter is None:
            return 0
        return int(self._shed_counter.value)

    def shed(self, index: int, row: Optional[np.ndarray] = None) -> None:
        """Record one window shed upstream of this sink (never written)."""
        if self._shed_counter is None:
            self._shed_counter = Counter("windows_shed")
        self._shed_counter.inc()
        default_registry().counter(
            "repro_sink_shed_windows_total",
            "Windows shed at ingress before any sink, process-wide.",
        ).inc()

    def write(
        self,
        index: int,
        row: np.ndarray,
        answers: Dict[str, bool],
        truth: Optional[Dict[str, bool]] = None,
    ) -> None:
        """Egress one window: its released row and per-query answers."""
        self.alphabet  # open check
        self._write(index, np.asarray(row).reshape(-1), answers, truth)
        self._written_counter.inc()
        default_registry().counter(
            "repro_sink_windows_total",
            "Windows egressed through any sink, process-wide.",
        ).inc()

    def _write(self, index, row, answers, truth) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any underlying resources (idempotent)."""

    def result(self):
        """Whatever this sink accumulated (``None`` for pure egress)."""
        return None


# ---------------------------------------------------------------------------
# Built-in sinks
# ---------------------------------------------------------------------------


@register_sink("memory", keys=())
class MemorySink(StreamSink):
    """Collect the released stream and answers in memory.

    ``result()`` returns ``{"released": IndicatorStream, "answers":
    {query: [bool, ...]}}`` over everything written so far.
    """

    def __init__(self):
        super().__init__()
        self._rows: List[np.ndarray] = []
        self._answers: Dict[str, List[bool]] = {}

    def _open(self, *, append: bool) -> None:
        if not append:
            self._rows = []
            self._answers = {}
        for name in self.query_names:
            self._answers.setdefault(name, [])

    def _write(self, index, row, answers, truth) -> None:
        self._rows.append(row.astype(bool))
        for name, value in answers.items():
            self._answers.setdefault(name, []).append(bool(value))

    def result(self):
        width = len(self.alphabet)
        matrix = (
            np.stack(self._rows)
            if self._rows
            else np.zeros((0, width), dtype=bool)
        )
        return {
            "released": IndicatorStream(self.alphabet, matrix),
            "answers": {
                name: list(values) for name, values in self._answers.items()
            },
        }


@register_sink("csv", raw_tail=True, keys=(SpecKey("path", raw=True),))
class CsvSink(StreamSink):
    """Write released indicator rows as CSV (``csv:<path>``).

    The output is exactly the ``csv:`` source / indicator-CSV format
    (header = alphabet, rows = 0/1), so a sanitized stream written
    here can be served again as a source.  Answers are not part of
    this format — pair it with ``jsonl:`` when verdicts must ride
    along.
    """

    def __init__(self, path: str):
        super().__init__()
        if not isinstance(path, str) or not path:
            raise ValueError("csv sink needs a path: 'csv:<path>'")
        self.path = path
        self._handle = None
        self._writer = None

    def _open(self, *, append: bool) -> None:
        fresh = not (append and os.path.exists(self.path))
        self._handle = open(self.path, "w" if fresh else "a", newline="")
        self._writer = csv.writer(self._handle)
        if fresh:
            self._writer.writerow(self.alphabet.types)

    def _write(self, index, row, answers, truth) -> None:
        if self._writer is None:
            raise RuntimeError("sink is closed")
        self._writer.writerow([int(value) for value in row])

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._writer = None


@register_sink(
    "jsonl", raw_tail=True, keys=(SpecKey("path", raw=True),)
)
class JsonlSink(StreamSink):
    """Write one JSON object per window (``jsonl:<path>``).

    Each line is ``{"window": i, "types": [...], "answers": {...}}`` —
    the released window's event types plus the query verdicts.  The
    ``jsonl:`` source reads the same format back (via ``"types"``).
    """

    def __init__(self, path: str):
        super().__init__()
        if not isinstance(path, str) or not path:
            raise ValueError("jsonl sink needs a path: 'jsonl:<path>'")
        self.path = path
        self._handle = None

    def _open(self, *, append: bool) -> None:
        fresh = not (append and os.path.exists(self.path))
        self._handle = open(self.path, "w" if fresh else "a")

    def _write(self, index, row, answers, truth) -> None:
        if self._handle is None:
            raise RuntimeError("sink is closed")
        types = [
            name
            for name, present in zip(self.alphabet.types, row)
            if present
        ]
        record = {
            "window": int(index),
            "types": types,
            "answers": {name: bool(value) for name, value in answers.items()},
        }
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


@register_sink("metrics", keys=(SpecKey("alpha", convert=float),))
class MetricsSink(StreamSink):
    """Aggregate released-versus-truth quality (``metrics``).

    Accumulates micro-averaged :class:`~repro.metrics.ConfusionCounts`
    of every query's released answers against the engine-internal
    ground truth, per query and overall.  ``result()`` returns
    ``{"confusion", "quality", "mre", "windows", "per_query"}`` —
    ``quality`` is Section III-B's ``Q`` under ``alpha``, ``mre`` is
    Eq. (4) against the perfect ``Q_ord = 1``.  A trusted-engine
    diagnostic: it consumes the truth the engine never releases.
    """

    wants_truth = True

    def __init__(self, alpha: float = 0.5):
        super().__init__()
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._counts: Dict[str, List[float]] = {}

    def _open(self, *, append: bool) -> None:
        if not append:
            self._counts = {}
        for name in self.query_names:
            self._counts.setdefault(name, [0.0, 0.0, 0.0, 0.0])

    def _write(self, index, row, answers, truth) -> None:
        if truth is None:
            raise ValueError(
                "the metrics sink aggregates released-vs-truth "
                "confusion and needs per-window true answers; drive it "
                "through StreamService.run()/pump()"
            )
        for name, value in answers.items():
            counts = self._counts.setdefault(name, [0.0, 0.0, 0.0, 0.0])
            expected = bool(truth[name])
            got = bool(value)
            if expected and got:
                counts[0] += 1.0
            elif not expected and got:
                counts[1] += 1.0
            elif expected and not got:
                counts[2] += 1.0
            else:
                counts[3] += 1.0

    def result(self):
        from repro.metrics.confusion import ConfusionCounts
        from repro.metrics.mre import mean_relative_error
        from repro.metrics.quality import DataQuality

        per_query = {
            name: ConfusionCounts(tp=tp, fp=fp, fn=fn, tn=tn)
            for name, (tp, fp, fn, tn) in sorted(self._counts.items())
        }
        total = ConfusionCounts()
        for counts in per_query.values():
            total = total + counts
        quality = DataQuality.from_confusion(total, alpha=self.alpha)
        return {
            "confusion": total,
            "quality": quality,
            "mre": mean_relative_error(1.0, quality.q),
            "windows": self.windows_written,
            "shed": self.windows_shed,
            "per_query": per_query,
        }


@register_sink("callback", keys=())
class CallbackSink(StreamSink):
    """Invoke a Python callable per window (``callback``).

    The callable receives ``(index, row, answers)``.  A callable is
    not JSON, so ``sink="callback"`` in a spec declares the intent and
    the live ``CallbackSink(fn)`` rides in at run time.
    """

    def __init__(self, fn: Optional[Callable] = None):
        super().__init__()
        if fn is not None and not callable(fn):
            raise TypeError(
                f"callback sink needs a callable, got {type(fn).__name__}"
            )
        self._fn = fn

    def _write(self, index, row, answers, truth) -> None:
        if self._fn is None:
            raise ValueError(
                "the 'callback' sink has no callable bound; construct "
                "CallbackSink(fn) and pass it at run time"
            )
        self._fn(index, row, answers)

    def result(self):
        return {"windows": self.windows_written}
