"""Plugin registries resolving string specs to sources and sinks.

The I/O layer mirrors the service layer's registry design
(:mod:`repro.service.registry`): a connector is named by a *spec
string* — a registered name optionally followed by ``key=value``
arguments (the shared grammar in :mod:`repro.service.specgrammar`) or
a raw address tail — and third-party connectors hook in without
touching core:

>>> from repro.io import register_source
>>> @register_source("kafka", raw_tail=True)
... def _build(topic, *, group="repro"):
...     '''Source draining a Kafka topic into the service.'''
...     return KafkaSource(topic, group=group)

and ``ServiceSpec(source="kafka:trips", ...)`` just works.

Built-in sources: ``memory``, ``csv:<path>``, ``jsonl:<path>``,
``synthetic:generator=bernoulli,windows=500,seed=3``,
``replay:<path>:<rate>``, ``queue``,
``broker:url=redis://host:port,stream=...,group=...,consumer=...``.
Built-in sinks: ``memory``, ``csv:<path>``, ``jsonl:<path>``,
``metrics``, ``callback``,
``broker:url=redis://host:port,stream=...``.  Legacy
positional tails (``synthetic:bernoulli:500:3``) still resolve to
identical connectors behind one ``DeprecationWarning`` per callsite;
raw address tails (``csv:<path>``) are first-class and never warn.

Connectors whose payload cannot live in a JSON spec (an in-memory
stream, a live ``asyncio.Queue``, a Python callback) are *bound at run
time*: the spec string validates and declares intent, and the object
rides in through ``StreamService.run(source=...)`` /
``pump(source=...)`` / ``StreamGateway.add_tenant(..., source=...)``.
"""

from __future__ import annotations

from typing import Tuple

from repro.service.registry import _Registry, parse_spec

__all__ = [
    "parse_spec",
    "register_sink",
    "register_source",
    "registered_sinks",
    "registered_sources",
    "resolve_sink",
    "resolve_source",
]

_SOURCES = _Registry("source")
_SINKS = _Registry("sink")


def _ensure_builtins() -> None:
    """Register the built-in connectors (import side effect, idempotent).

    Lets callers that import only this module (e.g. the spec validator)
    see the built-ins without importing the whole package eagerly.
    """
    from repro.io import sinks, sources  # noqa: F401


def register_source(
    name: str, *, aliases=(), raw_tail: bool = False, keys=None
):
    """Register a source factory under a spec name (plus aliases).

    The factory is called as
    ``factory(*legacy_args, **spec_kwargs, **options)`` and must
    return a :class:`~repro.io.sources.StreamSource`.
    ``raw_tail=True`` hands the factory everything after the first
    colon as one uncoerced string (for path arguments, which may
    themselves contain colons).  ``keys`` declares the name's
    key=value keys (default: the factory's keyword parameters).
    """
    return _SOURCES.register(
        name, aliases=aliases, raw_tail=raw_tail, keys=keys
    )


def register_sink(
    name: str, *, aliases=(), raw_tail: bool = False, keys=None
):
    """Register a sink factory under a spec name (plus aliases).

    The factory is called as
    ``factory(*legacy_args, **spec_kwargs, **options)`` and must
    return a :class:`~repro.io.sinks.StreamSink`; ``raw_tail`` /
    ``keys`` as for :func:`register_source`.
    """
    return _SINKS.register(
        name, aliases=aliases, raw_tail=raw_tail, keys=keys
    )


def registered_sources() -> Tuple[str, ...]:
    """The source spec names the I/O layer currently accepts."""
    _ensure_builtins()
    return _SOURCES.names()


def registered_sinks() -> Tuple[str, ...]:
    """The sink spec names the I/O layer currently accepts."""
    _ensure_builtins()
    return _SINKS.names()


def validate_source_spec(spec: str) -> str:
    """Check the spec's head names a registered source; return it."""
    _ensure_builtins()
    return _SOURCES.canonical(spec)


def validate_sink_spec(spec: str) -> str:
    """Check the spec's head names a registered sink; return it."""
    _ensure_builtins()
    return _SINKS.canonical(spec)


def resolve_source(spec, **options):
    """Instantiate the source a spec names (pass-through for objects).

    ``spec`` may be a spec string (``"csv:stream.csv"``) or an already
    constructed :class:`~repro.io.sources.StreamSource`, which is
    returned unchanged — that is how runtime-only sources (in-memory
    data, live queues) ride along a declarative spec.
    """
    from repro.io.sources import StreamSource

    _ensure_builtins()
    if isinstance(spec, StreamSource):
        if options:
            raise ValueError(
                "options only apply to source spec strings; configure "
                "the source object directly"
            )
        return spec
    factory, args, kwargs = _SOURCES.resolve(spec)
    return factory(*args, **{**kwargs, **options})


def resolve_sink(spec, **options):
    """Instantiate the sink a spec names (pass-through for objects)."""
    from repro.io.sinks import StreamSink

    _ensure_builtins()
    if isinstance(spec, StreamSink):
        if options:
            raise ValueError(
                "options only apply to sink spec strings; configure "
                "the sink object directly"
            )
        return spec
    factory, args, kwargs = _SINKS.resolve(spec)
    return factory(*args, **{**kwargs, **options})
