"""Declarative stream sources: where the service's windows come from.

A :class:`StreamSource` produces the per-window indicator rows a
:class:`~repro.service.StreamService` consumes — from memory, from
files (streamed, never materialized as Python lists), from a synthetic
generator, from a timestamped replay, or from a live
``asyncio.Queue``-fed producer.  Sources are resolved from registered
spec strings (:mod:`repro.io.registry`) or passed as objects when
their payload cannot live in JSON.

The common contract:

- :meth:`StreamSource.bind` fixes the service alphabet (column
  layout) and validates the source against it;
- :meth:`StreamSource.rows` / :meth:`StreamSource.arows` yield one
  boolean indicator row per window, exactly once — a source is a
  single pass over its data, like the stream it models;
- :attr:`StreamSource.offset` counts rows emitted so far and
  :meth:`StreamSource.skip` fast-forwards a fresh source to a
  checkpointed offset without emitting, which is how the
  :class:`~repro.service.gateway.StreamGateway` resumes in-flight
  sources (file sources discard rows; synthetic sources regenerate
  deterministically; live queues cannot seek and refuse).
"""

from __future__ import annotations

import asyncio
import csv
import json
import os
import time

from typing import Iterable, Iterator, Optional

import numpy as np

from repro.io.registry import register_source
from repro.service.specgrammar import SpecKey
from repro.streams.indicator import EventAlphabet, IndicatorStream

__all__ = [
    "CsvSource",
    "JsonlSource",
    "MemorySource",
    "QueueSource",
    "ReplaySource",
    "StreamSource",
    "SyntheticSource",
    "iter_indicator_csv",
    "read_indicator_csv",
]

#: Rows per preallocated buffer block when assembling streamed rows
#: into one matrix (bounds the assembly overhead without doubling peak
#: memory the way a Python list-of-lists did).
_CHUNK_ROWS = 4096


# ---------------------------------------------------------------------------
# Streamed CSV plumbing (shared with the datasets.io compatibility shims)
# ---------------------------------------------------------------------------


def iter_indicator_csv(path: str):
    """Open an indicator CSV; return ``(alphabet, row_iterator)``.

    The header row becomes the :class:`EventAlphabet`; the iterator
    yields one validated boolean row per line *as it reads*, so a large
    replay file never exists as Python lists.  Malformed lines raise
    ``ValueError`` naming the file and line.
    """
    handle = open(path, newline="")
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        handle.close()
        raise ValueError(f"{path} is empty; expected an alphabet header")
    try:
        alphabet = EventAlphabet(header)
    except ValueError:
        handle.close()
        raise

    def rows() -> Iterator[np.ndarray]:
        width = len(header)
        with handle:
            for line_number, row in enumerate(reader, start=2):
                if len(row) != width:
                    raise ValueError(
                        f"{path}:{line_number}: expected {width} columns, "
                        f"got {len(row)}"
                    )
                try:
                    values = [int(value) for value in row]
                except ValueError:
                    raise ValueError(
                        f"{path}:{line_number}: non-integer indicator value"
                    ) from None
                if any(value not in (0, 1) for value in values):
                    raise ValueError(
                        f"{path}:{line_number}: indicator values must be "
                        "0/1"
                    )
                yield np.asarray(values, dtype=bool)

    return alphabet, rows()


def assemble_rows(rows: Iterable[np.ndarray], width: int) -> np.ndarray:
    """Collect streamed indicator rows into one boolean matrix.

    Fills fixed-size preallocated blocks and concatenates them once at
    the end — peak memory is the final matrix plus one block, not a
    Python list of the whole file.
    """
    blocks = []
    buffer: Optional[np.ndarray] = None
    fill = 0
    for row in rows:
        if buffer is None:
            buffer = np.empty((_CHUNK_ROWS, width), dtype=bool)
            fill = 0
        buffer[fill] = row
        fill += 1
        if fill == _CHUNK_ROWS:
            blocks.append(buffer)
            buffer = None
    if buffer is not None:
        blocks.append(buffer[:fill])
    if not blocks:
        return np.zeros((0, width), dtype=bool)
    if len(blocks) == 1:
        return blocks[0]
    return np.concatenate(blocks)


def read_indicator_csv(path: str) -> IndicatorStream:
    """Read an indicator CSV into a stream, row-streamed (not list-built)."""
    alphabet, rows = iter_indicator_csv(path)
    return IndicatorStream(alphabet, assemble_rows(rows, len(alphabet)))


# ---------------------------------------------------------------------------
# The source contract
# ---------------------------------------------------------------------------


class StreamSource:
    """Base class of all stream sources (one pass of indicator rows).

    Subclasses implement :meth:`_rows` — a generator of boolean rows
    over the bound alphabet, starting from the first window.  The base
    class provides offset tracking, checkpoint fast-forward
    (:meth:`skip`), paced emission (:attr:`delay` seconds between
    rows, used by the replay source) and the async view
    (:meth:`arows`).
    """

    #: Seconds to wait before each emitted row (0 = emit immediately).
    delay: float = 0.0

    #: Whether a fresh instance can :meth:`skip` to a checkpointed
    #: offset (replayable data: files, memory, generators).  Live
    #: feeds (``queue:``, ``broker:``) cannot — resume binds a fresh
    #: feed carrying the remainder instead.
    seekable: bool = True

    #: Whether this source can actually deliver rows right now.  Only
    #: live-feed sources ever report False — a ``queue:`` spec with no
    #: queue object bound yet, a ``broker:`` spec with no url.  The
    #: gateway checks this *before* serving, so a fleet resumed
    #: without re-binding its live feeds fails pointedly instead of
    #: deep inside the pump's first emit.
    live_feed_bound: bool = True

    def __init__(self):
        self._alphabet: Optional[EventAlphabet] = None
        self._offset = 0
        self._pending_skip = 0
        self._iterator: Optional[Iterator[np.ndarray]] = None
        #: Rows drawn but returned unconsumed (see :meth:`unemit`);
        #: re-emitted before the underlying iterator continues.
        self._pushback: list = []
        #: Absolute monotonic deadline of the next paced emission
        #: (``None`` until pacing starts).  Deadlines advance by
        #: ``delay`` per row independent of how long the sleep or the
        #: consumer actually took, so per-row jitter cannot accumulate
        #: into rate drift over a long replay.
        self._next_emit: Optional[float] = None

    # -- lifecycle -----------------------------------------------------

    def bind(self, alphabet: EventAlphabet) -> "StreamSource":
        """Fix the service alphabet; validate the source against it."""
        if not isinstance(alphabet, EventAlphabet):
            raise TypeError(
                f"alphabet must be EventAlphabet, got "
                f"{type(alphabet).__name__}"
            )
        if self._alphabet is not None and self._alphabet != alphabet:
            raise ValueError(
                "source is already bound to a different alphabet"
            )
        self._alphabet = alphabet
        self._bind(alphabet)
        return self

    def _bind(self, alphabet: EventAlphabet) -> None:
        """Subclass hook: validate/prepare against the bound alphabet."""

    @property
    def alphabet(self) -> EventAlphabet:
        if self._alphabet is None:
            raise RuntimeError(
                "source is not bound; call bind(alphabet) first (the "
                "service does this when compiling its spec)"
            )
        return self._alphabet

    # -- offsets and checkpointing -------------------------------------

    @property
    def offset(self) -> int:
        """Windows emitted so far (including any skipped prefix)."""
        return self._offset

    def skip(self, count: int) -> "StreamSource":
        """Fast-forward over the first ``count`` windows without emitting.

        Used to resume a checkpointed pipeline: a fresh source over the
        same data, skipped to the checkpoint's offset, continues with
        exactly the windows an uninterrupted run would have seen next.
        Must be called before iteration starts.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if self._iterator is not None:
            raise RuntimeError(
                "cannot skip after iteration has started; skip a fresh "
                "source"
            )
        self._pending_skip += count
        self._offset += count
        return self

    def unemit(self, row: np.ndarray) -> None:
        """Return a drawn-but-unconsumed row to the front of the stream.

        Used by the pump's cancellation path: a row already drawn from
        the iterator but never accepted by the session is pushed back,
        so both continuation styles see it again — a later pump on the
        *same* source re-emits it, and a checkpoint's offset (rolled
        back with it) makes a *fresh* source re-read it.
        """
        self._pushback.append(row)
        self._offset -= 1

    def checkpoint_mark(self) -> None:
        """Hook: a checkpoint is being taken at the current offset.

        Called by :meth:`~repro.service.StreamService.checkpoint`
        right before it records this source's offset.  Sources with
        at-least-once delivery semantics commit here — the ``broker:``
        source acks every entry emitted so far, so acks land exactly
        at checkpoint boundaries.  A raise aborts the checkpoint.
        The default is a no-op (replayable sources need no commit).
        """

    # -- iteration -----------------------------------------------------

    def _emitter(self) -> Iterator[np.ndarray]:
        if self._iterator is None:
            iterator = self._rows()
            for _ in range(self._pending_skip):
                next(iterator, None)
            self._pending_skip = 0
            self._iterator = iterator
        return self._iterator

    def _next_row(self) -> Optional[np.ndarray]:
        if self._pushback:
            return self._pushback.pop()
        return next(self._emitter(), None)

    def _pace_wait(self) -> float:
        """Seconds until the next emission deadline (<= 0: emit now).

        Deadlines are absolute on the monotonic clock: the first paced
        row is due ``delay`` from now, every later row exactly ``delay``
        after the previous *deadline* — not after the previous sleep
        returned.  Relative per-row sleeps under-shoot by the scheduler
        jitter and the consumer's processing time every single row,
        which at high replay rates accumulates into unbounded drift;
        sleeping toward a fixed deadline grid instead absorbs jitter up
        to a full period and holds the configured rate.  A consumer
        slower than the rate drives the wait negative — the source then
        emits immediately (no sleep) until it catches back up.
        """
        delay = self.delay
        if not delay:
            return 0.0
        now = time.monotonic()
        deadline = self._next_emit
        if deadline is None:
            deadline = now + delay
        self._next_emit = deadline + delay
        return deadline - now

    def rows(self) -> Iterator[np.ndarray]:
        """Yield one boolean indicator row per window (single pass)."""
        self.alphabet  # bound check
        while True:
            # Pace *before* drawing: an interruption while waiting then
            # loses nothing (a row drawn but never delivered would be
            # silently dropped from the single-pass iterator).
            if self.delay:
                wait = self._pace_wait()
                if wait > 0:
                    time.sleep(wait)
            row = self._next_row()
            if row is None:
                return
            self._offset += 1
            yield row

    async def arows(self):
        """Async view of :meth:`rows` (``delay`` awaits the loop)."""
        self.alphabet  # bound check
        while True:
            if self.delay:
                wait = self._pace_wait()
                if wait > 0:
                    await asyncio.sleep(wait)
            row = self._next_row()
            if row is None:
                return
            self._offset += 1
            yield row

    def indicator_stream(self) -> IndicatorStream:
        """Materialize the remaining windows as one indicator stream.

        The batch service phase needs the whole matrix at once; rows
        are streamed into preallocated blocks (:func:`assemble_rows`),
        never into Python lists.
        """
        return IndicatorStream(
            self.alphabet,
            assemble_rows(self.rows(), len(self.alphabet)),
        )

    def _rows(self) -> Iterator[np.ndarray]:
        raise NotImplementedError

    # -- helpers -------------------------------------------------------

    def _row_from_types(self, types: Iterable[str]) -> np.ndarray:
        """An indicator row from a window's event-type collection.

        Types outside the alphabet are ignored, matching the engine's
        service-phase extraction.
        """
        alphabet = self.alphabet
        row = np.zeros(len(alphabet), dtype=bool)
        for name in types:
            if name in alphabet:
                row[alphabet.index(name)] = True
        return row

    def _coerce_row(self, item) -> np.ndarray:
        """One submitted item (type collection or 0/1 vector) as a row."""
        if isinstance(item, np.ndarray):
            row = np.asarray(item).reshape(-1).astype(bool)
            if row.shape[0] != len(self.alphabet):
                raise ValueError(
                    f"row has {row.shape[0]} entries but the alphabet "
                    f"has {len(self.alphabet)} types"
                )
            return row
        if isinstance(item, str):
            return self._row_from_types((item,))
        return self._row_from_types(item)


class _ThrottledSource(StreamSource):
    """A rate-limiting proxy over a bound source (gateway-internal).

    The :class:`~repro.service.gateway.StreamGateway` wraps a
    rate-limited tenant's compiled source in one of these.  Rows are
    drawn from the wrapped source and forwarded only when the token
    bucket admits them; the rest are *shed* — still consumed (they
    advance the wrapped source's offset, so a checkpoint/resume never
    replays a shed window: its verdict is lost by design, not
    deferred) and reported through ``on_shed(index, row)`` so the loss
    surfaces in the tenant's metrics instead of vanishing.  Never
    resolved from a spec string; constructed by the gateway.
    """

    def __init__(self, inner: StreamSource, bucket, *, on_shed=None):
        super().__init__()
        self._inner = inner
        self._bucket = bucket
        self._on_shed = on_shed
        self._alphabet = inner._alphabet

    @property
    def inner(self) -> StreamSource:
        """The wrapped (unthrottled) source."""
        return self._inner

    @property
    def seekable(self) -> bool:
        return self._inner.seekable

    @property
    def delay(self) -> float:
        return self._inner.delay

    @property
    def live_feed_bound(self) -> bool:
        return self._inner.live_feed_bound

    @property
    def offset(self) -> int:
        # The wrapped source's offset counts *every* consumed window,
        # shed ones included — exactly what a checkpoint must record.
        return self._inner.offset

    def checkpoint_mark(self) -> None:
        self._inner.checkpoint_mark()

    def bind(self, alphabet: EventAlphabet) -> "StreamSource":
        self._inner.bind(alphabet)
        self._alphabet = self._inner._alphabet
        return self

    def skip(self, count: int) -> "StreamSource":
        self._inner.skip(count)
        return self

    def unemit(self, row: np.ndarray) -> None:
        self._inner.unemit(row)

    def _admit(self, row: np.ndarray) -> bool:
        if self._bucket.try_acquire():
            return True
        if self._on_shed is not None:
            self._on_shed(self._inner.offset - 1, row)
        return False

    def rows(self) -> Iterator[np.ndarray]:
        for row in self._inner.rows():
            if self._admit(row):
                yield row

    async def arows(self):
        async for row in self._inner.arows():
            if self._admit(row):
                yield row


# ---------------------------------------------------------------------------
# Built-in sources
# ---------------------------------------------------------------------------


@register_source("memory", keys=())
class MemorySource(StreamSource):
    """In-memory windows: an indicator stream, a 0/1 matrix, or
    per-window event-type collections.

    ``source="memory"`` in a spec declares that data arrives at run
    time (``service.run(data)``); resolving the bare spec without data
    fails pointedly on use.
    """

    def __init__(self, data=None):
        super().__init__()
        self._data = data

    def _bind(self, alphabet: EventAlphabet) -> None:
        if isinstance(self._data, IndicatorStream):
            if self._data.alphabet != alphabet:
                raise ValueError(
                    "in-memory stream alphabet differs from the "
                    "service alphabet"
                )

    def _rows(self) -> Iterator[np.ndarray]:
        data = self._data
        if data is None:
            raise ValueError(
                "the 'memory' source has no data bound; pass the "
                "stream to run()/pump() or construct "
                "MemorySource(data)"
            )
        if isinstance(data, IndicatorStream):
            matrix = data.matrix_view()
        elif isinstance(data, np.ndarray):
            matrix = np.asarray(data)
            if matrix.ndim != 2 or matrix.shape[1] != len(self.alphabet):
                raise ValueError(
                    f"matrix shape {matrix.shape} does not match the "
                    f"{len(self.alphabet)}-type alphabet"
                )
        else:
            for window in data:
                yield self._row_from_types(window)
            return
        for index in range(matrix.shape[0]):
            yield matrix[index].astype(bool)


@register_source("csv", raw_tail=True, keys=(SpecKey("path", raw=True),))
class CsvSource(StreamSource):
    """Windows streamed from an indicator CSV (``csv:<path>``).

    The file's header must equal the service alphabet; rows are read
    lazily, so the file is never materialized whole.  The whole spec
    tail is the path — colons inside it are preserved.
    """

    def __init__(self, path: str):
        super().__init__()
        if not isinstance(path, str) or not path:
            raise ValueError("csv source needs a path: 'csv:<path>'")
        self.path = path

    def _bind(self, alphabet: EventAlphabet) -> None:
        with open(self.path, newline="") as handle:
            try:
                header = EventAlphabet(next(csv.reader(handle)))
            except StopIteration:
                raise ValueError(
                    f"{self.path} is empty; expected an alphabet header"
                ) from None
        if header != alphabet:
            raise ValueError(
                f"{self.path} has alphabet {list(header.types)} but the "
                f"service alphabet is {list(alphabet.types)}"
            )

    def _rows(self) -> Iterator[np.ndarray]:
        _header, rows = iter_indicator_csv(self.path)
        return rows


@register_source(
    "jsonl", raw_tail=True, keys=(SpecKey("path", raw=True),)
)
class JsonlSource(StreamSource):
    """Windows streamed from a JSON-lines file (``jsonl:<path>``).

    Each line is one window: either a JSON array of event-type names
    or an object with a ``"types"`` array (the form
    :class:`~repro.io.sinks.JsonlSink` writes, so a sink's output can
    be replayed as a source).  Types outside the service alphabet are
    ignored, matching the engine's extraction.
    """

    def __init__(self, path: str):
        super().__init__()
        if not isinstance(path, str) or not path:
            raise ValueError("jsonl source needs a path: 'jsonl:<path>'")
        self.path = path

    def _bind(self, alphabet: EventAlphabet) -> None:
        if not os.path.exists(self.path):
            raise FileNotFoundError(f"no such jsonl source: {self.path}")

    def _rows(self) -> Iterator[np.ndarray]:
        with open(self.path) as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    raise ValueError(
                        f"{self.path}:{line_number}: invalid JSON"
                    ) from None
                if isinstance(record, dict):
                    try:
                        types = record["types"]
                    except KeyError:
                        raise ValueError(
                            f"{self.path}:{line_number}: window object "
                            "lacks a 'types' array"
                        ) from None
                elif isinstance(record, list):
                    types = record
                else:
                    raise ValueError(
                        f"{self.path}:{line_number}: expected a JSON "
                        "array of event types or a window object"
                    )
                yield self._row_from_types(types)


#: Synthetic generator kinds accepted by ``synthetic:<generator>:...``.
_SYNTHETIC_GENERATORS = ("bernoulli", "uniform")


@register_source(
    "synthetic",
    keys=(
        SpecKey("generator"),
        SpecKey("windows", dest="n_windows"),
        SpecKey("seed"),
        SpecKey("p"),
    ),
)
class SyntheticSource(StreamSource):
    """Deterministic generated windows
    (``synthetic:<generator>:<n>:<seed>``).

    Generators:

    - ``bernoulli`` — Algorithm 2's window sampler: per-type occurrence
      probabilities drawn uniformly from the seed, then each window
      includes a type with its occurrence probability;
    - ``uniform`` — every type occurs with the same probability
      (``p=`` option, default 0.5).

    The same spec string regenerates the same windows, so a resumed
    pipeline can skip to its checkpointed offset and continue exactly.
    """

    def __init__(
        self,
        generator: str = "bernoulli",
        n_windows: int = 1000,
        seed: int = 0,
        *,
        p: float = 0.5,
    ):
        super().__init__()
        if generator not in _SYNTHETIC_GENERATORS:
            raise ValueError(
                f"unknown synthetic generator {generator!r}; known: "
                f"{', '.join(_SYNTHETIC_GENERATORS)}"
            )
        if not isinstance(n_windows, int) or n_windows < 0:
            raise ValueError(
                f"n_windows must be a non-negative int, got {n_windows!r}"
            )
        if not isinstance(seed, int):
            raise ValueError(f"seed must be an int, got {seed!r}")
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.generator = generator
        self.n_windows = n_windows
        self.seed = seed
        self.p = p

    def _rows(self) -> Iterator[np.ndarray]:
        width = len(self.alphabet)
        rng = np.random.default_rng(self.seed)
        if self.generator == "bernoulli":
            occurrence = rng.random(width)
        else:
            occurrence = np.full(width, self.p)
        for _ in range(self.n_windows):
            yield rng.random(width) < occurrence


class ReplaySource(StreamSource):
    """Timestamped re-emission of a recorded file
    (``replay:<path>:<rate>``).

    Replays a ``csv``/``jsonl`` file (chosen by extension) at ``rate``
    windows per second — a soak-test source that exercises the
    backpressure path with realistic pacing.  ``rate`` 0 replays as
    fast as the consumer drains.  Skipping to a checkpointed offset
    discards rows without waiting.
    """

    def __init__(self, path: str, rate: float = 0.0):
        super().__init__()
        if not isinstance(path, str) or not path:
            raise ValueError(
                "replay source needs a path: 'replay:<path>:<rate>'"
            )
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if path.endswith(".jsonl"):
            self._inner: StreamSource = JsonlSource(path)
        else:
            self._inner = CsvSource(path)
        self.path = path
        self.rate = float(rate)
        self.delay = 1.0 / rate if rate > 0 else 0.0

    def _bind(self, alphabet: EventAlphabet) -> None:
        self._inner.bind(alphabet)

    def _rows(self) -> Iterator[np.ndarray]:
        return self._inner._rows()


@register_source(
    "replay",
    raw_tail=True,
    keys=(
        SpecKey("path", dest="tail", raw=True),
        SpecKey("rate", convert=float),
    ),
)
def _build_replay(tail: str = "", **options) -> ReplaySource:
    """Split ``<path>[:<rate>]`` from the tail's end, keeping any
    colons inside the path itself."""
    path, sep, rate_text = tail.rpartition(":")
    if sep:
        try:
            rate = float(rate_text)
        except ValueError:
            pass  # not a rate — the colon belongs to the path
        else:
            return ReplaySource(path, rate, **options)
    return ReplaySource(tail, **options)


@register_source("queue", keys=())
class QueueSource(StreamSource):
    """A live broker-shaped feed: any ``asyncio.Queue``-like producer.

    Producers put windows (event-type collections or 0/1 rows) on the
    queue; ``None`` signals end-of-stream.  The source is asynchronous
    only — it is consumed through
    :meth:`~repro.service.StreamService.pump`, where the bounded
    :class:`~repro.cep.async_session.AsyncSession` queue is the
    flow-control boundary: when the mechanism falls behind, ``submit``
    suspends the pump, the pump stops taking from this queue, and the
    producer blocks on its own bounded ``put`` — backpressure
    propagates end to end.

    ``source="queue"`` in a spec declares the intent; the live queue
    object rides in at run time (``QueueSource(queue)``).
    """

    seekable = False

    def __init__(self, queue=None):
        super().__init__()
        if queue is not None and not hasattr(queue, "get"):
            raise TypeError(
                "queue must expose asyncio.Queue-like get(), got "
                f"{type(queue).__name__}"
            )
        self._queue = queue

    @property
    def live_feed_bound(self) -> bool:
        return self._queue is not None

    def skip(self, count: int) -> "StreamSource":
        """A live feed cannot seek; resume binds a fresh queue instead."""
        if count:
            raise RuntimeError(
                "a live 'queue' source cannot skip past data it has "
                "not received; resume it by binding a fresh queue"
            )
        return self

    def _rows(self) -> Iterator[np.ndarray]:
        raise TypeError(
            "the 'queue' source is asynchronous; drive it with "
            "StreamService.pump() / StreamGateway.serve() instead of a "
            "synchronous run"
        )

    async def arows(self):
        self.alphabet  # bound check
        queue = self._queue
        if queue is None:
            raise ValueError(
                "the 'queue' source has no live queue bound; construct "
                "QueueSource(queue) and pass it at run time"
            )
        while True:
            if self._pushback:
                row = self._pushback.pop()
            else:
                item = await queue.get()
                if item is None:
                    return
                row = self._coerce_row(item)
            self._offset += 1
            yield row


# The broker connectors register themselves on import, exactly like
# the built-ins above; importing here keeps `_ensure_builtins()` the
# single trigger.  Bottom of module: the connectors subclass
# StreamSource, so the class must already exist.
from repro.broker import connectors as _broker_connectors  # noqa: E402,F401
