"""Declarative I/O connectors: sources in, sinks out.

PR 4 made the compute phase declarative (``ServiceSpec`` →
``StreamService``); this layer does the same for ingestion and egress.
A *source* produces per-window indicator rows (from memory, streamed
files, synthetic generators, timestamped replays, live
``asyncio.Queue`` feeds, or a Redis-Streams broker) and a *sink*
egresses the released stream and query answers (to memory, files, a
quality-metrics aggregate, a broker stream, or a callback) — both
named by registered spec strings that ride inside a
:class:`~repro.service.ServiceSpec` (``source="csv:stream.csv"``,
``sink="metrics"``) and JSON-round-trip with it.

Third-party connectors register with :func:`register_source` /
:func:`register_sink` exactly like mechanisms and executors do; live
payloads that cannot live in JSON (in-memory data, queues, callbacks)
are passed as connector *objects* at run time.  The multi-tenant
:class:`~repro.service.StreamGateway` drives many (spec, source, sink)
pipelines over one asyncio loop with per-tenant checkpoint/resume of
in-flight source offsets.
"""

from repro.io.registry import (
    register_sink,
    register_source,
    registered_sinks,
    registered_sources,
    resolve_sink,
    resolve_source,
)
from repro.io.sinks import (
    CallbackSink,
    CsvSink,
    JsonlSink,
    MemorySink,
    MetricsSink,
    StreamSink,
    write_indicator_csv,
)
from repro.io.sources import (
    CsvSource,
    JsonlSource,
    MemorySource,
    QueueSource,
    ReplaySource,
    StreamSource,
    SyntheticSource,
    iter_indicator_csv,
    read_indicator_csv,
)

#: Broker connectors re-exported from their own subsystem
#: (:mod:`repro.broker`) — resolved lazily because this package
#: initializes *during* that subsystem's import (sources.py triggers
#: the connector registration), so an eager import here would see a
#: partially initialized module.
_LAZY = ("BrokerSink", "BrokerSource")


def __getattr__(name):
    if name in _LAZY:
        from repro.broker import connectors

        value = getattr(connectors, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BrokerSink",
    "BrokerSource",
    "CallbackSink",
    "CsvSink",
    "CsvSource",
    "JsonlSink",
    "JsonlSource",
    "MemorySink",
    "MemorySource",
    "MetricsSink",
    "QueueSource",
    "ReplaySource",
    "StreamSink",
    "StreamSource",
    "SyntheticSource",
    "iter_indicator_csv",
    "read_indicator_csv",
    "register_sink",
    "register_source",
    "registered_sinks",
    "registered_sources",
    "resolve_sink",
    "resolve_source",
    "write_indicator_csv",
]
