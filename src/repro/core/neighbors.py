"""Neighbouring relations of pattern-level DP (Definitions 1-3).

Definition 1 (*in-pattern neighbours*): two same-length patterns that
differ in exactly one constituent event.

Definition 2 (*pattern type*): the group of pattern instances identified
by a query — here represented by :class:`~repro.cep.patterns.Pattern`
(instances are recognized by their element types).

Definition 3 (*pattern-level neighbours*): two pattern streams that are
identical except that one instance of the protected type is replaced by
an in-pattern neighbour.

The functions operate on instances given either as
:class:`~repro.cep.matcher.PatternMatch` objects or as plain sequences
of event-type symbols; the windowed-model helpers generate neighbouring
:class:`~repro.streams.indicator.IndicatorStream` objects by flipping a
single existence indicator of a pattern element.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.cep.matcher import PatternMatch
from repro.cep.patterns import Pattern
from repro.streams.indicator import IndicatorStream

Instance = Union[PatternMatch, Sequence[str]]


def _element_types(instance: Instance) -> Tuple[str, ...]:
    if isinstance(instance, PatternMatch):
        return instance.element_types()
    return tuple(instance)


def differing_positions(first: Instance, second: Instance) -> List[int]:
    """Positions at which two same-length instances differ."""
    first_types = _element_types(first)
    second_types = _element_types(second)
    if len(first_types) != len(second_types):
        raise ValueError(
            f"instances have different lengths "
            f"({len(first_types)} vs {len(second_types)})"
        )
    return [
        position
        for position, (a, b) in enumerate(zip(first_types, second_types))
        if a != b
    ]


def are_in_pattern_neighbors(first: Instance, second: Instance) -> bool:
    """Definition 1: same length, exactly one differing element.

    Instances of different lengths are simply *not* neighbours (rather
    than an error) when compared through
    :func:`are_pattern_level_neighbors`; called directly, a length
    mismatch raises to surface bugs early.
    """
    return len(differing_positions(first, second)) == 1


def instance_matches_type(instance: Instance, pattern: Pattern) -> bool:
    """Definition 2 membership test: is ``instance`` of type ``pattern``?

    In the windowed/sequential model an instance belongs to the type when
    its element types equal the pattern's element sequence.
    """
    if pattern.elements is None:
        raise ValueError(
            f"pattern {pattern.name!r} has no element list; "
            "membership in the windowed model is undefined"
        )
    return _element_types(instance) == tuple(pattern.elements)


def are_pattern_level_neighbors(
    first_stream: Sequence[Instance],
    second_stream: Sequence[Instance],
    pattern: Pattern,
) -> bool:
    """Definition 3: the streams differ in exactly one instance of
    ``pattern``, and that instance differs by exactly one element."""
    if len(first_stream) != len(second_stream):
        return False
    differing: List[int] = []
    for position, (first, second) in enumerate(zip(first_stream, second_stream)):
        first_types = _element_types(first)
        second_types = _element_types(second)
        if len(first_types) != len(second_types):
            return False
        if first_types != second_types:
            differing.append(position)
    if len(differing) != 1:
        return False
    position = differing[0]
    if not instance_matches_type(first_stream[position], pattern) and not (
        instance_matches_type(second_stream[position], pattern)
    ):
        # The differing instance must belong to the protected type on at
        # least one side (an instance stops being of the type once an
        # element is replaced).
        return False
    return are_in_pattern_neighbors(
        first_stream[position], second_stream[position]
    )


def enumerate_in_pattern_neighbors(
    instance: Instance, alphabet: Iterable[str]
) -> Iterator[Tuple[str, ...]]:
    """All in-pattern neighbours of ``instance`` over ``alphabet``.

    Yields every same-length sequence obtained by replacing exactly one
    element with a different symbol.
    """
    elements = _element_types(instance)
    symbols = list(alphabet)
    for position in range(len(elements)):
        for symbol in symbols:
            if symbol == elements[position]:
                continue
            yield elements[:position] + (symbol,) + elements[position + 1 :]


# -- windowed-model neighbours -------------------------------------------------


def enumerate_windowed_neighbors(
    stream: IndicatorStream,
    pattern: Pattern,
    *,
    window_index: Optional[int] = None,
) -> Iterator[IndicatorStream]:
    """Neighbouring indicator streams under single-event change.

    In the windowed model, replacing one constituent event of a pattern
    instance toggles one existence indicator of one pattern element in
    one window.  Yields every such single-bit-flip neighbour (restricted
    to ``window_index`` when given).
    """
    if pattern.elements is None:
        raise ValueError(f"pattern {pattern.name!r} has no element list")
    windows = (
        range(stream.n_windows)
        if window_index is None
        else [window_index]
    )
    seen_columns = set()
    for element in pattern.elements:
        if element in seen_columns:
            continue  # repeated element types share one indicator column
        seen_columns.add(element)
        for index in windows:
            yield stream.flip(index, element)


def windowed_instance_distance(
    first: IndicatorStream, second: IndicatorStream, pattern: Pattern
) -> int:
    """Number of pattern-element indicator bits at which two streams differ.

    0 — identical on the protected columns; 1 — pattern-level neighbours
    (single-event change); up to ``m`` — a full instance appearing or
    disappearing (the group-privacy case whose cost Theorem 1 sums).
    """
    if pattern.elements is None:
        raise ValueError(f"pattern {pattern.name!r} has no element list")
    if first.alphabet != second.alphabet:
        raise ValueError("streams must share an alphabet")
    if first.n_windows != second.n_windows:
        raise ValueError("streams must have the same number of windows")
    distance = 0
    for element in sorted(set(pattern.elements)):
        column_first = first.column(element)
        column_second = second.column(element)
        distance += int((column_first != column_second).sum())
    return distance


def are_windowed_neighbors(
    first: IndicatorStream, second: IndicatorStream, pattern: Pattern
) -> bool:
    """Whether two indicator streams are pattern-level neighbours.

    True when they differ in exactly one existence indicator of one
    pattern element (and nowhere else).
    """
    if first.alphabet != second.alphabet:
        return False
    if first.n_windows != second.n_windows:
        return False
    full_distance = int(
        (first.matrix_view() != second.matrix_view()).sum()
    )
    protected_distance = windowed_instance_distance(first, second, pattern)
    return full_distance == 1 and protected_distance == 1
