"""Pattern-level randomized response over raw event streams.

Definition 5 is stated on event streams: the mechanism takes the
existence ``I(e_i)`` of events and reports it truthfully with
probability ``1 - p_i``.  :class:`EventStreamPPM` realizes that
directly on :class:`~repro.streams.stream.EventStream` objects — a
deployment that must forward *events* (not indicator vectors) to
downstream CEP operators uses this form:

- when the flip decision for (window, type) fires and the type **is**
  present, every event of that type inside the window is suppressed;
- when it fires and the type is **absent**, a synthetic event of that
  type is injected at the window's midpoint (existence fabricated, as
  randomized response requires — the adversary cannot tell fabricated
  events from real ones at the existence level the guarantee covers);
- all other events pass through untouched.

The flip decisions are drawn by the same derivation as the windowed
mechanism (:func:`~repro.core.ppm.draw_flip_decisions`), so for the
same seed the two mechanisms are *exactly* equivalent under the window
reduction:

    reduce(EventStreamPPM.perturb(events)) ==
    apply_randomized_response(reduce(events))

— the commutativity property the test suite checks bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cep.patterns import Pattern
from repro.core.budget import BudgetAllocation
from repro.core.guarantee import PatternLevelGuarantee
from repro.core.ppm import draw_flip_decisions
from repro.mechanisms.randomized_response import epsilon_to_flip_probability
from repro.streams.events import Event
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.stream import EventStream
from repro.streams.windows import Window
from repro.utils.rng import RngLike


class EventStreamPPM:
    """Randomized response applied to the events of a window stream.

    Parameters
    ----------
    private_pattern:
        The protected pattern type (element list required).
    allocation:
        Per-element budgets; Theorem 1 composes them exactly as for the
        windowed PPM (the guarantee does not depend on the carrier
        representation).
    """

    mechanism_name = "pattern-level-events"

    def __init__(
        self,
        private_pattern: Pattern,
        allocation: BudgetAllocation,
    ):
        if private_pattern.elements is None:
            raise ValueError(
                f"pattern {private_pattern.name!r} has no element list"
            )
        if allocation.length != len(private_pattern.elements):
            raise ValueError(
                f"allocation has {allocation.length} budgets but the pattern "
                f"has {len(private_pattern.elements)} elements"
            )
        self.private_pattern = private_pattern
        self.allocation = allocation
        self.guarantee = PatternLevelGuarantee(
            private_pattern, allocation.total
        )

    @classmethod
    def uniform(
        cls, private_pattern: Pattern, epsilon: float
    ) -> "EventStreamPPM":
        """The uniform split ``ε_i = ε/m`` over event streams."""
        if private_pattern.elements is None:
            raise ValueError(
                f"pattern {private_pattern.name!r} has no element list"
            )
        return cls(
            private_pattern,
            BudgetAllocation.uniform(epsilon, len(private_pattern.elements)),
        )

    @property
    def name(self) -> str:
        return self.mechanism_name

    @property
    def epsilon(self) -> float:
        """The total pattern-level budget ``Σ ε_i``."""
        return self.allocation.total

    def flip_probability_by_type(self) -> Dict[str, float]:
        """Flip probability per distinct protected element type."""
        totals: Dict[str, float] = {}
        for element, epsilon in zip(
            self.private_pattern.elements, self.allocation.epsilons
        ):
            totals[element] = totals.get(element, 0.0) + epsilon
        return {
            element: epsilon_to_flip_probability(epsilon)
            for element, epsilon in totals.items()
        }

    # -- perturbation ---------------------------------------------------------

    def perturb_windows(
        self, windows: Sequence[Window], *, rng: RngLike = None
    ) -> List[Window]:
        """Perturb the events of pre-assigned windows.

        Returns new :class:`~repro.streams.windows.Window` objects whose
        event lists realize the flipped existence indicators.
        """
        flip_by_type = self.flip_probability_by_type()
        decisions = draw_flip_decisions(
            len(windows), flip_by_type, rng=rng
        )
        perturbed: List[Window] = []
        for index, window in enumerate(windows):
            events = list(window.events)
            for event_type in flip_by_type:
                if not decisions[event_type][index]:
                    continue
                present = any(
                    event.event_type == event_type for event in events
                )
                if present:
                    events = [
                        event
                        for event in events
                        if event.event_type != event_type
                    ]
                else:
                    midpoint = (window.start + window.end) / 2.0
                    events.append(
                        Event(
                            event_type,
                            midpoint,
                            attributes={"synthetic": True},
                        )
                    )
            events.sort(key=lambda event: event.timestamp)
            perturbed.append(
                Window(
                    index=window.index,
                    start=window.start,
                    end=window.end,
                    events=tuple(events),
                )
            )
        return perturbed

    def perturb(
        self,
        stream: EventStream,
        window_assigner,
        *,
        rng: RngLike = None,
    ) -> EventStream:
        """Perturb a raw event stream.

        ``window_assigner`` fixes the window scope of the existence
        indicators (any assigner from :mod:`repro.streams.windows`).
        The perturbed events are re-merged into a single temporally
        ordered stream.
        """
        windows = window_assigner.assign(stream)
        perturbed_windows = self.perturb_windows(windows, rng=rng)
        events: List[Event] = []
        for window in perturbed_windows:
            events.extend(window.events)
        events.sort(key=lambda event: event.timestamp)
        return EventStream(events, name=stream.name)

    def perturb_to_indicators(
        self,
        alphabet: EventAlphabet,
        windows: Sequence[Window],
        *,
        rng: RngLike = None,
    ) -> IndicatorStream:
        """Perturb windows and reduce the result to indicators.

        Bit-for-bit equal to running the windowed PPM on the reduction
        of the same windows with the same seed (the commutativity
        property documented in the module docstring).
        """
        perturbed = self.perturb_windows(windows, rng=rng)
        return IndicatorStream.from_event_windows(
            alphabet, perturbed, strict=False
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventStreamPPM(pattern={self.private_pattern.name!r}, "
            f"epsilon={self.epsilon:g})"
        )
