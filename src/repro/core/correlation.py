"""Correlation-based discovery of relevant events (Section V-C).

The paper's mechanisms assume that data subjects "perfectly" declare the
events constituting their private patterns — "a rigorous assumption
since neither of these entities is expected to be privacy experts."
Section V-C sketches the mitigation this module implements: "we can
estimate the correlations among events and patterns based on historical
data, which enables us to reveal most of the latent relationships."

Given historical windows and a declared private pattern, we measure the
phi coefficient (Pearson correlation of binary variables) between every
event type's indicator and the pattern's detection vector.  Event types
outside the declared element list that correlate strongly are *latent
proxies*: an adversary observing them learns about the private pattern,
so the subject should consider protecting them too.
:func:`augment_private_pattern` extends the declared pattern with the
discovered proxies (growing ``m`` and thus diluting the per-element
budget — the price of closing the leak, made explicit to the caller).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cep.patterns import Pattern
from repro.streams.indicator import IndicatorStream
from repro.utils.validation import check_in_range


def phi_coefficient(first: np.ndarray, second: np.ndarray) -> float:
    """Pearson correlation of two binary vectors (the phi coefficient).

    Returns 0.0 when either vector is constant (no co-variation to
    measure).
    """
    first = np.asarray(first, dtype=bool)
    second = np.asarray(second, dtype=bool)
    if first.shape != second.shape:
        raise ValueError(
            f"shape mismatch: {first.shape} vs {second.shape}"
        )
    if first.size == 0:
        raise ValueError("cannot correlate empty vectors")
    n11 = float(np.sum(first & second))
    n10 = float(np.sum(first & ~second))
    n01 = float(np.sum(~first & second))
    n00 = float(np.sum(~first & ~second))
    denominator = math.sqrt(
        (n11 + n10) * (n01 + n00) * (n11 + n01) * (n10 + n00)
    )
    if denominator == 0.0:
        return 0.0
    return (n11 * n00 - n10 * n01) / denominator


def event_pattern_correlations(
    history: IndicatorStream, pattern: Pattern
) -> Dict[str, float]:
    """Phi coefficient between every event type and pattern detection.

    The pattern's own elements correlate by construction (they are
    conjuncts of the detection rule); the interesting entries are the
    *other* event types.
    """
    if pattern.elements is None:
        raise ValueError(f"pattern {pattern.name!r} has no element list")
    detection = history.detect_all(list(pattern.elements))
    return {
        name: phi_coefficient(history.column(name), detection)
        for name in history.alphabet
    }


@dataclass(frozen=True)
class DiscoveredProxy:
    """One latent proxy event for a private pattern."""

    event_type: str
    correlation: float


@dataclass(frozen=True)
class CorrelationReport:
    """Outcome of a relevant-event discovery run."""

    pattern_name: str
    declared_elements: tuple
    proxies: tuple
    threshold: float

    def proxy_types(self) -> List[str]:
        """The discovered proxy event types, strongest first."""
        return [proxy.event_type for proxy in self.proxies]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{p.event_type}({p.correlation:+.2f})" for p in self.proxies
        )
        return (
            f"CorrelationReport({self.pattern_name!r}: "
            f"{len(self.proxies)} prox{'y' if len(self.proxies) == 1 else 'ies'}"
            f" above |phi|>={self.threshold:g}: [{inner}])"
        )


def discover_relevant_events(
    history: IndicatorStream,
    pattern: Pattern,
    *,
    threshold: float = 0.3,
    max_proxies: Optional[int] = None,
) -> CorrelationReport:
    """Find undeclared event types that leak the private pattern.

    Event types outside the declared element list whose |phi| with the
    pattern's detection vector reaches ``threshold`` are reported as
    proxies, strongest first.  ``max_proxies`` caps the report (each
    accepted proxy will dilute the per-element budget when the pattern
    is augmented).
    """
    check_in_range("threshold", threshold, 0.0, 1.0)
    if max_proxies is not None and max_proxies < 0:
        raise ValueError(f"max_proxies must be >= 0, got {max_proxies}")
    correlations = event_pattern_correlations(history, pattern)
    declared = set(pattern.elements)
    candidates = [
        DiscoveredProxy(name, value)
        for name, value in correlations.items()
        if name not in declared and abs(value) >= threshold
    ]
    candidates.sort(key=lambda proxy: (-abs(proxy.correlation), proxy.event_type))
    if max_proxies is not None:
        candidates = candidates[:max_proxies]
    return CorrelationReport(
        pattern_name=pattern.name,
        declared_elements=tuple(pattern.elements),
        proxies=tuple(candidates),
        threshold=threshold,
    )


def augment_private_pattern(
    pattern: Pattern, report: CorrelationReport
) -> Pattern:
    """Extend a private pattern with its discovered proxies.

    The result protects the declared elements *and* the latent proxies;
    its length grows accordingly, so the same total budget spreads
    thinner (callers see the trade-off through
    :class:`~repro.core.budget.BudgetAllocation`).
    """
    if pattern.elements is None:
        raise ValueError(f"pattern {pattern.name!r} has no element list")
    if report.pattern_name != pattern.name:
        raise ValueError(
            f"report is for pattern {report.pattern_name!r}, "
            f"not {pattern.name!r}"
        )
    extra = [
        proxy.event_type
        for proxy in report.proxies
        if proxy.event_type not in pattern.elements
    ]
    if not extra:
        return pattern
    return Pattern.of_types(
        f"{pattern.name}+proxies", *pattern.elements, *extra
    )


def leakage_after_protection(
    history: IndicatorStream,
    pattern: Pattern,
    protected_elements: Sequence[str],
) -> Dict[str, float]:
    """Residual correlation between *unprotected* events and the pattern.

    A diagnostic for the Section V-C risk: after protecting
    ``protected_elements``, any unprotected event type still correlated
    with the pattern's detection vector remains an inference channel.
    Returns the per-type |phi| of the unprotected types, descending.
    """
    correlations = event_pattern_correlations(history, pattern)
    protected = set(protected_elements)
    residual = {
        name: abs(value)
        for name, value in correlations.items()
        if name not in protected
    }
    return dict(
        sorted(residual.items(), key=lambda item: -item[1])
    )
