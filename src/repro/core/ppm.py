"""Pattern-level privacy-preserving mechanisms (Section V).

A pattern-level PPM perturbs *only* the existence indicators of the
events that constitute the private pattern — all other data passes
through untouched.  This is the paper's central efficiency argument:
budget is not wasted on events that carry no private information, so
the residual quality of the stream stays high.

:class:`PatternLevelPPM` is the shared machinery (randomized response
per protected element, Definition 5); the uniform and adaptive PPMs
differ only in how they build the :class:`~repro.core.budget.BudgetAllocation`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.cep.patterns import Pattern
from repro.core.budget import BudgetAllocation
from repro.core.guarantee import PatternLevelGuarantee
from repro.mechanisms.randomized_response import epsilon_to_flip_probability
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import RngLike, derive_rng


def draw_flip_decisions(
    n_windows: int,
    probability_by_type: Mapping[str, float],
    *,
    rng: RngLike = None,
) -> Dict[str, np.ndarray]:
    """Per-(window, type) flip decisions for a randomized-response PPM.

    One independent child generator is derived per event type, so the
    decisions do not depend on mapping iteration order, and — crucially —
    the *same* seed yields the same decisions whether the mechanism is
    applied to indicator matrices (:func:`apply_randomized_response`) or
    to raw event streams (:class:`~repro.core.event_ppm.EventStreamPPM`):
    the two realizations of Definition 5 commute exactly with the window
    reduction.
    """
    decisions: Dict[str, np.ndarray] = {}
    for event_type, probability in probability_by_type.items():
        if not 0.0 <= probability <= 0.5:
            raise ValueError(
                f"flip probability for {event_type!r} must be in [0, 1/2], "
                f"got {probability}"
            )
        child = derive_rng(rng, "rr-flip", event_type)
        decisions[event_type] = child.random(n_windows) < probability
    return decisions


def apply_randomized_response(
    stream: IndicatorStream,
    probability_by_type: Mapping[str, float],
    *,
    rng: RngLike = None,
) -> IndicatorStream:
    """Flip the named indicator columns independently per window.

    ``probability_by_type`` maps event-type symbols to flip
    probabilities; unnamed columns are untouched.  This realizes
    Definition 5 over a windowed stream: each protected existence
    indicator is reported truthfully with probability ``1 - p`` and
    inverted with probability ``p``.
    """
    decisions = draw_flip_decisions(
        stream.n_windows, probability_by_type, rng=rng
    )
    matrix = stream.matrix()
    for event_type, flips in decisions.items():
        column = stream.alphabet.index(event_type)
        matrix[:, column] ^= flips
    return stream.with_matrix(matrix)


class PatternLevelPPM:
    """Randomized-response PPM protecting one private pattern.

    Parameters
    ----------
    private_pattern:
        The protected pattern type ``P = seq(e_1..e_m)``; must expose an
        element list (sequence of event types).
    allocation:
        The per-element budgets ``(ε_1..ε_m)``.  Theorem 1 composes them
        into ``Σ ε_i``-pattern-level DP, exposed as :attr:`guarantee`.
    """

    mechanism_name = "pattern-level"

    def __init__(
        self,
        private_pattern: Pattern,
        allocation: BudgetAllocation,
        *,
        name: Optional[str] = None,
    ):
        if not isinstance(private_pattern, Pattern):
            raise TypeError(
                f"private_pattern must be a Pattern, got "
                f"{type(private_pattern).__name__}"
            )
        if private_pattern.elements is None:
            raise ValueError(
                f"pattern {private_pattern.name!r} is not a sequence of event "
                "types; pattern-level PPMs need an element list"
            )
        if allocation.length != len(private_pattern.elements):
            raise ValueError(
                f"allocation has {allocation.length} budgets but the pattern "
                f"has {len(private_pattern.elements)} elements"
            )
        self.private_pattern = private_pattern
        self.allocation = allocation
        self.guarantee = PatternLevelGuarantee(
            private_pattern, allocation.total
        )
        self._name = name or self.mechanism_name

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def epsilon(self) -> float:
        """The total pattern-level budget ``ε = Σ ε_i``."""
        return self.allocation.total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(pattern={self.private_pattern.name!r}, "
            f"epsilon={self.epsilon:g})"
        )

    # -- budget bookkeeping ---------------------------------------------------

    def epsilon_by_type(self) -> Dict[str, float]:
        """Budget per *distinct* element type.

        A pattern may repeat an element type (e.g. ``seq(a, b, a)``); in
        the windowed model both occurrences share one indicator column,
        so their budgets combine on that column.
        """
        totals: Dict[str, float] = {}
        for element, epsilon in zip(
            self.private_pattern.elements, self.allocation.epsilons
        ):
            totals[element] = totals.get(element, 0.0) + epsilon
        return totals

    def flip_probability_by_type(self) -> Dict[str, float]:
        """Flip probability per distinct protected element type."""
        return {
            element: epsilon_to_flip_probability(epsilon)
            for element, epsilon in self.epsilon_by_type().items()
        }

    def privacy_statement(self) -> str:
        """Human-readable statement of the delivered guarantee."""
        return self.guarantee.statement()

    # -- service ---------------------------------------------------------------

    def perturb(
        self, stream: IndicatorStream, *, rng: RngLike = None
    ) -> IndicatorStream:
        """Perturb the protected indicators of an indicator stream.

        Only the private pattern's element columns are touched; every
        other column is returned bit-identical.
        """
        missing = [
            element
            for element in self.private_pattern.elements
            if element not in stream.alphabet
        ]
        if missing:
            raise ValueError(
                f"stream alphabet lacks protected element types {missing}"
            )
        return apply_randomized_response(
            stream, self.flip_probability_by_type(), rng=rng
        )

    def answer(
        self,
        stream: IndicatorStream,
        target_pattern: Pattern,
        *,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Per-window binary answers for one target pattern.

        The stream is perturbed once and the containment query evaluated
        on the perturbed indicators.
        """
        if target_pattern.elements is None:
            raise ValueError(
                f"target pattern {target_pattern.name!r} has no element list"
            )
        perturbed = self.perturb(stream, rng=rng)
        return perturbed.detect_all(list(target_pattern.elements))


class MultiPatternPPM:
    """Independent pattern-level PPMs for several private patterns.

    Section V-A: overlapping or repeating private patterns are handled
    by *independent* PPMs with independent budgets — shared events are
    then flipped by several mechanisms, which "only brings more noise to
    the private information", strengthening protection while each
    pattern's own guarantee is unaffected.
    """

    mechanism_name = "pattern-level-multi"

    def __init__(self, ppms: Sequence[PatternLevelPPM]):
        if not ppms:
            raise ValueError("at least one PPM is required")
        names = [ppm.private_pattern.name for ppm in ppms]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate private patterns: {names}")
        self._ppms = list(ppms)

    @property
    def name(self) -> str:
        return self.mechanism_name

    @property
    def ppms(self) -> List[PatternLevelPPM]:
        return list(self._ppms)

    @property
    def epsilon(self) -> float:
        """The per-pattern budgets are independent; report the maximum
        (each pattern type enjoys its own ε guarantee)."""
        return max(ppm.epsilon for ppm in self._ppms)

    def guarantees(self) -> List[PatternLevelGuarantee]:
        """The per-pattern guarantees delivered simultaneously."""
        return [ppm.guarantee for ppm in self._ppms]

    def perturb(
        self, stream: IndicatorStream, *, rng: RngLike = None
    ) -> IndicatorStream:
        """Apply every PPM in sequence with independent randomness."""
        perturbed = stream
        for position, ppm in enumerate(self._ppms):
            child = derive_rng(rng, "multi-ppm", position)
            perturbed = ppm.perturb(perturbed, rng=child)
        return perturbed

    def privacy_statement(self) -> str:
        return "; ".join(ppm.privacy_statement() for ppm in self._ppms)
