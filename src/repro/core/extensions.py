"""Numerical-answer extension of the pattern-level PPMs (Section V).

The paper's PPMs answer binary queries; Section V notes "the potential
to further extend these PPMs so that they can process queries that
require numerical or categorical answers" and motivates it with drivers
counting nearby passengers.  This module provides that extension for
the most common numerical query over patterns: **how many windows
contained the pattern?**

The released answer is computed from the *already-perturbed* indicators
(post-processing of the pattern-level DP output, so no extra budget is
spent).  The raw count over perturbed indicators is biased — flips both
destroy true detections and fabricate false ones — and
:func:`estimate_detection_count` inverts that bias:

For a target pattern with elements ``e_1..e_k`` and per-element flip
probabilities ``p_e`` (0 for unprotected elements), a window with true
indicator pattern ``b ∈ {0,1}^k`` is observed as fully-set with
probability ``Π_e (b_e(1-p_e) + (1-b_e)p_e)``.  Under cross-element
independence of the true indicators (exact for Algorithm 2 workloads,
where window contents are independent Bernoullis), the observed
detection rate is an invertible affine function of the per-element true
rates, each of which is itself debiasable by the standard randomized
response estimator.  The estimator composes the two inversions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cep.patterns import Pattern
from repro.core.ppm import PatternLevelPPM
from repro.streams.indicator import IndicatorStream
from repro.utils.validation import check_probability


def debias_rate(observed_rate: float, flip_probability: float) -> float:
    """Invert randomized response on an occurrence rate.

    If the true rate is ``r``, the observed rate is
    ``r(1-p) + (1-r)p``; solving for ``r`` gives
    ``(observed - p) / (1 - 2p)``, clipped to [0, 1].  ``p = 1/2``
    carries no signal and is rejected.
    """
    check_probability("observed_rate", observed_rate)
    check_probability("flip_probability", flip_probability)
    if flip_probability == 0.5:
        raise ValueError(
            "flip probability 1/2 destroys all rate information"
        )
    if flip_probability > 0.5:
        raise ValueError(
            f"flip probability must be <= 1/2, got {flip_probability}"
        )
    estimate = (observed_rate - flip_probability) / (
        1.0 - 2.0 * flip_probability
    )
    return min(1.0, max(0.0, estimate))


@dataclass(frozen=True)
class CountEstimate:
    """A debiased pattern-count answer.

    Attributes
    ----------
    raw_count:
        Detections counted directly on the perturbed stream (biased).
    estimated_count:
        The debiased estimate of the true detection count.
    n_windows:
        Number of windows answered over.
    """

    raw_count: int
    estimated_count: float
    n_windows: int

    @property
    def estimated_rate(self) -> float:
        """Debiased per-window detection rate."""
        if self.n_windows == 0:
            return 0.0
        return self.estimated_count / self.n_windows


def estimate_detection_count(
    perturbed: IndicatorStream,
    target: Pattern,
    flip_by_type: Mapping[str, float],
) -> CountEstimate:
    """Debiased count of windows containing ``target``.

    ``flip_by_type`` is the deployed mechanism's per-element flip map
    (``PatternLevelPPM.flip_probability_by_type()``); elements absent
    from it are treated as unperturbed.  The estimate assumes
    cross-element independence of the true indicators (see module
    docstring); it is exact in expectation for workloads with
    independent columns and a documented approximation otherwise.
    """
    if target.elements is None:
        raise ValueError(f"target pattern {target.name!r} has no element list")
    distinct = list(dict.fromkeys(target.elements))
    raw = int(perturbed.detect_all(distinct).sum())
    n_windows = perturbed.n_windows
    if n_windows == 0:
        return CountEstimate(raw_count=0, estimated_count=0.0, n_windows=0)
    # Debias each element's occurrence rate, then recompose the joint
    # under independence.
    estimated_joint = 1.0
    for element in distinct:
        observed_rate = float(perturbed.column(element).mean())
        p = flip_by_type.get(element, 0.0)
        if p == 0.0:
            true_rate = observed_rate
        else:
            true_rate = debias_rate(observed_rate, p)
        estimated_joint *= true_rate
    return CountEstimate(
        raw_count=raw,
        estimated_count=estimated_joint * n_windows,
        n_windows=n_windows,
    )


class CountingQuery:
    """A standing numerical query: "how many windows contain ``target``?"

    Wraps a pattern-level PPM; the binary guarantee carries over because
    the count is post-processing of the protected indicators.
    """

    def __init__(self, ppm: PatternLevelPPM, target: Pattern):
        if target.elements is None:
            raise ValueError(
                f"target pattern {target.name!r} has no element list"
            )
        self.ppm = ppm
        self.target = target

    def answer(
        self, stream: IndicatorStream, *, rng=None
    ) -> CountEstimate:
        """Perturb once, count, debias."""
        perturbed = self.ppm.perturb(stream, rng=rng)
        return estimate_detection_count(
            perturbed, self.target, self.ppm.flip_probability_by_type()
        )

    def crowdedness(
        self,
        stream: IndicatorStream,
        *,
        threshold_rate: float = 0.5,
        rng=None,
    ) -> bool:
        """The paper's Taxi motivation: "their true intention is to know
        if this area is crowded, which can be answered in binary".

        Returns whether the debiased detection rate reaches
        ``threshold_rate``.
        """
        check_probability("threshold_rate", threshold_rate)
        estimate = self.answer(stream, rng=rng)
        return estimate.estimated_rate >= threshold_rate
