"""Privacy-budget algebra for pattern-level DP (Theorem 1).

A pattern ``P = seq(e_1..e_m)`` is protected by flipping each element's
existence indicator with probability ``p_i``; each flip spends
``ε_i = ln((1 - p_i)/p_i)`` and Theorem 1 composes them into
``Σ_i ε_i``-pattern-level DP.  :class:`BudgetAllocation` is the vector
``(ε_1..ε_m)`` with the invariants the PPMs rely on:

- every ``ε_i`` is non-negative and finite;
- the components sum to the total budget ``ε`` (within tolerance);
- the flip probabilities they induce satisfy ``0 < p_i <= 1/2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.mechanisms.randomized_response import (
    epsilon_to_flip_probability,
    flip_probability_to_epsilon,
)
from repro.utils.validation import check_positive

_SUM_TOLERANCE = 1e-9


@dataclass(frozen=True)
class BudgetAllocation:
    """A distribution of the total pattern-level budget over elements."""

    epsilons: Tuple[float, ...]

    def __init__(self, epsilons: Sequence[float]):
        epsilons = tuple(float(value) for value in epsilons)
        if not epsilons:
            raise ValueError("an allocation needs at least one element")
        for position, value in enumerate(epsilons):
            if math.isnan(value) or math.isinf(value):
                raise ValueError(
                    f"epsilon_{position + 1} must be finite, got {value}"
                )
            if value < 0:
                raise ValueError(
                    f"epsilon_{position + 1} must be >= 0, got {value}"
                )
        object.__setattr__(self, "epsilons", epsilons)

    # -- constructors -----------------------------------------------------

    @classmethod
    def uniform(cls, total_epsilon: float, length: int) -> "BudgetAllocation":
        """The uniform split ``ε_i = ε/m`` (Section V-A, Fig. 3)."""
        check_positive("total_epsilon", total_epsilon)
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        share = total_epsilon / length
        return cls((share,) * length)

    @classmethod
    def from_flip_probabilities(
        cls, probabilities: Sequence[float]
    ) -> "BudgetAllocation":
        """Recover the allocation spending these flip probabilities."""
        return cls(
            tuple(flip_probability_to_epsilon(p) for p in probabilities)
        )

    # -- basic accessors ----------------------------------------------------

    @property
    def length(self) -> int:
        """The pattern length ``m``."""
        return len(self.epsilons)

    @property
    def total(self) -> float:
        """Theorem 1's composed budget ``Σ_i ε_i``."""
        return float(sum(self.epsilons))

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, index: int) -> float:
        return self.epsilons[index]

    def __iter__(self):
        return iter(self.epsilons)

    def flip_probabilities(self) -> List[float]:
        """The per-element flip probabilities ``p_i = 1/(1 + e^{ε_i})``.

        ``ε_i = 0`` maps to ``p_i = 1/2``: that element is reported as a
        fair coin, revealing nothing.
        """
        return [epsilon_to_flip_probability(value) for value in self.epsilons]

    def sums_to(self, total_epsilon: float) -> bool:
        """Whether the allocation exhausts exactly ``total_epsilon``."""
        return abs(self.total - total_epsilon) <= max(
            _SUM_TOLERANCE, 1e-9 * max(1.0, abs(total_epsilon))
        )

    # -- stepwise moves (Algorithm 1) ----------------------------------------

    def with_move(self, index: int, step: float) -> "BudgetAllocation":
        """One bidirectional stepwise move (Algorithm 1, line 7).

        Adds ``step`` to element ``index`` and removes ``step/(m-1)``
        from every other element, then clamps at zero and renormalizes so
        the total budget is conserved exactly.  (The paper's pseudocode
        divides by ``m``, which leaks budget; we keep the sum invariant —
        see DESIGN.md.)
        """
        if not 0 <= index < self.length:
            raise IndexError(
                f"index {index} out of range for length {self.length}"
            )
        check_positive("step", step)
        if self.length == 1:
            return BudgetAllocation(self.epsilons)
        values = list(self.epsilons)
        compensation = step / (self.length - 1)
        values[index] += step
        for other in range(self.length):
            if other != index:
                values[other] -= compensation
        clamped = [max(0.0, value) for value in values]
        return self._renormalized(clamped, self.total)

    @staticmethod
    def _renormalized(values: List[float], total: float) -> "BudgetAllocation":
        current = sum(values)
        if current <= 0:
            # Degenerate: everything clamped to zero; fall back to uniform.
            length = len(values)
            return BudgetAllocation((total / length,) * length)
        scale = total / current
        return BudgetAllocation(tuple(value * scale for value in values))

    def normalized_to(self, total_epsilon: float) -> "BudgetAllocation":
        """Rescale the allocation to a different total budget."""
        check_positive("total_epsilon", total_epsilon)
        return self._renormalized(list(self.epsilons), total_epsilon)

    # -- diagnostics ----------------------------------------------------------

    def entropy(self) -> float:
        """Shannon entropy of the normalized allocation (nats).

        ``log(m)`` for the uniform split; lower values mean the adaptive
        search has concentrated budget on few elements.
        """
        total = self.total
        if total == 0:
            return 0.0
        entropy = 0.0
        for value in self.epsilons:
            if value > 0:
                share = value / total
                entropy -= share * math.log(share)
        return entropy

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{value:.4f}" for value in self.epsilons)
        return f"BudgetAllocation([{inner}], total={self.total:.4f})"


def theorem1_epsilon(flip_probabilities: Sequence[float]) -> float:
    """Theorem 1: the pattern-level budget of a randomized-response PPM.

    ``Σ_{i: e_i ∈ P} ln((1 - p_i)/p_i)`` — the product bound of Eq. (6)
    rewritten as a sum of per-element budgets.
    """
    return float(
        sum(flip_probability_to_epsilon(p) for p in flip_probabilities)
    )
