"""The uniform pattern-level PPM (Section V-A).

"A basic approach is to distribute the given privacy budget ε evenly to
each related pattern [element]" (Fig. 3): ``ε_i = ε/m`` for a private
pattern of length ``m``, giving every protected element the same flip
probability ``p = 1/(1 + e^{ε/m})``.
"""

from __future__ import annotations

from repro.cep.patterns import Pattern
from repro.core.budget import BudgetAllocation
from repro.core.ppm import PatternLevelPPM
from repro.utils.validation import check_positive


class UniformPatternPPM(PatternLevelPPM):
    """Pattern-level PPM with the uniform budget split ``ε_i = ε/m``."""

    mechanism_name = "uniform"

    def __init__(self, private_pattern: Pattern, epsilon: float):
        check_positive("epsilon", epsilon)
        if private_pattern.elements is None:
            raise ValueError(
                f"pattern {private_pattern.name!r} has no element list"
            )
        allocation = BudgetAllocation.uniform(
            epsilon, len(private_pattern.elements)
        )
        super().__init__(
            private_pattern, allocation, name=self.mechanism_name
        )
