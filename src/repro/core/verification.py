"""Exact verification of the pattern-level DP guarantee (Definition 4).

Rather than trusting the Theorem 1 algebra, these checks *enumerate* the
mechanism's exact output distribution over the protected indicators of a
window and compare it against the distribution on a neighbouring stream:

- :func:`verify_single_event_dp` — Definition 3 neighbours (one
  constituent event replaced).  The observed worst-case log-ratio must
  not exceed ``max_i ε_i`` (and a fortiori the Theorem 1 sum).
- :func:`verify_instance_dp` — the group-privacy reading: the whole
  instance appears/disappears (all ``m`` element indicators differ).
  The observed log-ratio must not exceed ``Σ_i ε_i``, with equality in
  the worst case — this is exactly the budget Theorem 1 charges.

Because randomized response factorizes over indicators, the joint
distribution over a window's ``k`` protected bits has only ``2^k``
outcomes and is computed exactly (no sampling).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.ppm import PatternLevelPPM
from repro.streams.indicator import IndicatorStream

_RATIO_TOLERANCE = 1e-9


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one exact DP check.

    Attributes
    ----------
    epsilon_claimed:
        The bound being verified (``max_i ε_i`` or ``Σ_i ε_i``).
    epsilon_observed:
        The worst-case log probability ratio actually measured across
        all neighbours and all response outcomes.
    holds:
        ``epsilon_observed <= epsilon_claimed`` (within tolerance).
    neighbors_checked, outcomes_checked:
        Sizes of the enumeration, for reporting.
    """

    epsilon_claimed: float
    epsilon_observed: float
    holds: bool
    neighbors_checked: int
    outcomes_checked: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "holds" if self.holds else "VIOLATED"
        return (
            f"VerificationReport({verdict}: observed ε="
            f"{self.epsilon_observed:.6f} vs claimed ε="
            f"{self.epsilon_claimed:.6f}, {self.neighbors_checked} neighbours, "
            f"{self.outcomes_checked} outcomes)"
        )


def response_distribution(
    ppm: PatternLevelPPM,
    stream: IndicatorStream,
    window_index: int,
) -> Dict[Tuple[bool, ...], float]:
    """Exact joint distribution of the perturbed protected bits.

    Returns ``Pr[R = r]`` for every assignment ``r`` of the protected
    (distinct) element indicators in window ``window_index``, given the
    stream's true values.  The flips are independent Bernoullis, so the
    joint mass is the product of per-bit marginals.
    """
    flip_by_type = ppm.flip_probability_by_type()
    elements = list(flip_by_type)
    truths = [stream.contains(window_index, element) for element in elements]
    distribution: Dict[Tuple[bool, ...], float] = {}
    for outcome in itertools.product((False, True), repeat=len(elements)):
        mass = 1.0
        for element, truth, response in zip(elements, truths, outcome):
            p = flip_by_type[element]
            mass *= (1.0 - p) if response == truth else p
        distribution[outcome] = mass
    return distribution


def _max_log_ratio(
    first: Dict[Tuple[bool, ...], float],
    second: Dict[Tuple[bool, ...], float],
) -> float:
    worst = 0.0
    for outcome, mass in first.items():
        other = second[outcome]
        if mass == 0.0 and other == 0.0:
            continue
        if mass == 0.0 or other == 0.0:
            return math.inf
        worst = max(worst, abs(math.log(mass / other)))
    return worst


def verify_single_event_dp(
    ppm: PatternLevelPPM,
    stream: IndicatorStream,
    *,
    window_index: Optional[int] = None,
) -> VerificationReport:
    """Check Definition 4 against all single-event neighbours.

    For each window (or just ``window_index``) and each protected
    element, the neighbour flips that one true indicator; the exact
    output distributions on both sides must stay within
    ``e^{max_i ε_i}`` of each other on every outcome.
    """
    epsilon_by_type = ppm.epsilon_by_type()
    claimed = max(epsilon_by_type.values())
    windows = (
        range(stream.n_windows) if window_index is None else [window_index]
    )
    observed = 0.0
    neighbors = 0
    outcomes = 0
    for index in windows:
        base = response_distribution(ppm, stream, index)
        for element in epsilon_by_type:
            neighbor_stream = stream.flip(index, element)
            other = response_distribution(ppm, neighbor_stream, index)
            observed = max(observed, _max_log_ratio(base, other))
            neighbors += 1
            outcomes += len(base)
    return VerificationReport(
        epsilon_claimed=claimed,
        epsilon_observed=observed,
        holds=observed <= claimed + _RATIO_TOLERANCE,
        neighbors_checked=neighbors,
        outcomes_checked=outcomes,
    )


def verify_instance_dp(
    ppm: PatternLevelPPM,
    stream: IndicatorStream,
    *,
    window_index: Optional[int] = None,
) -> VerificationReport:
    """Check the Theorem 1 sum against whole-instance neighbours.

    The neighbour flips *every* protected element indicator in the
    window — the largest change a private pattern instance can make.
    The observed log-ratio equals ``Σ_i ε_i`` exactly at the all-truth
    outcome, demonstrating that Theorem 1's budget is tight.
    """
    epsilon_by_type = ppm.epsilon_by_type()
    claimed = sum(epsilon_by_type.values())
    windows = (
        range(stream.n_windows) if window_index is None else [window_index]
    )
    observed = 0.0
    neighbors = 0
    outcomes = 0
    for index in windows:
        base = response_distribution(ppm, stream, index)
        neighbor_stream = stream
        for element in epsilon_by_type:
            neighbor_stream = neighbor_stream.flip(index, element)
        other = response_distribution(ppm, neighbor_stream, index)
        observed = max(observed, _max_log_ratio(base, other))
        neighbors += 1
        outcomes += len(base)
    return VerificationReport(
        epsilon_claimed=claimed,
        epsilon_observed=observed,
        holds=observed <= claimed + _RATIO_TOLERANCE,
        neighbors_checked=neighbors,
        outcomes_checked=outcomes,
    )


def empirical_flip_rates(
    ppm: PatternLevelPPM,
    stream: IndicatorStream,
    *,
    n_trials: int = 2000,
    rng=None,
) -> Dict[str, float]:
    """Measured per-element flip rates over repeated perturbations.

    A sanity probe used by tests: the empirical rate of each protected
    column disagreeing with the truth should approach its configured
    flip probability ``p_i``.
    """
    from repro.utils.rng import derive_rng  # local import avoids cycle noise

    if n_trials <= 0:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    flip_by_type = ppm.flip_probability_by_type()
    disagreements = {element: 0 for element in flip_by_type}
    total_bits = stream.n_windows * n_trials
    for trial in range(n_trials):
        child = derive_rng(rng, "verify-flip", trial)
        perturbed = ppm.perturb(stream, rng=child)
        for element in flip_by_type:
            original = stream.column(element)
            observed = perturbed.column(element)
            disagreements[element] += int((original != observed).sum())
    return {
        element: count / total_bits
        for element, count in disagreements.items()
    }
