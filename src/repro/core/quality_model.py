"""Estimating data quality under a budget allocation (Section V-B).

Algorithm 1 steers the budget distribution by the quality metric
``Q = alpha * Prec + (1 - alpha) * Rec`` evaluated on *historical data*
supplied by the data subjects.  Two estimators are provided:

:class:`AnalyticQualityEstimator`
    Exact expected confusion counts under independent indicator flips.
    For a window ``w`` and target pattern ``T``, the perturbed detection
    probability is ``d_w = Π_{e ∈ T} Pr[e present after flip]`` (flips
    are independent across elements); summing ``d_w`` over truth/false
    windows gives expected TP/FP (recall's denominator ``TP + FN`` is
    the constant number of positive windows, so expected recall is
    exact; expected precision uses the standard plug-in ratio of
    expectations).  Deterministic and fast — the estimator the shipped
    Algorithm 1 uses.

:class:`MonteCarloQualityEstimator`
    Simulates the perturbation end-to-end and averages the measured
    quality over trials.  Slower but assumption-free; used as a
    cross-check in tests and ablations.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence

import numpy as np

from repro.cep.patterns import Pattern
from repro.core.budget import BudgetAllocation
from repro.core.ppm import apply_randomized_response
from repro.metrics.confusion import ConfusionCounts
from repro.metrics.quality import DataQuality
from repro.mechanisms.randomized_response import epsilon_to_flip_probability
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import RngLike, derive_rng
from repro.utils.validation import check_probability


class QualityEstimator(abc.ABC):
    """Maps a budget allocation to the expected data quality."""

    @abc.abstractmethod
    def evaluate(self, allocation: BudgetAllocation) -> DataQuality:
        """Expected quality of the PPM induced by ``allocation``."""


def _check_setup(
    history: IndicatorStream,
    private_pattern: Pattern,
    target_patterns: Sequence[Pattern],
) -> None:
    if history.n_windows == 0:
        raise ValueError("historical data must contain at least one window")
    if private_pattern.elements is None:
        raise ValueError(
            f"private pattern {private_pattern.name!r} has no element list"
        )
    if not target_patterns:
        raise ValueError("at least one target pattern is required")
    for pattern in target_patterns:
        if pattern.elements is None:
            raise ValueError(
                f"target pattern {pattern.name!r} has no element list"
            )
        for element in pattern.elements:
            if element not in history.alphabet:
                raise ValueError(
                    f"target pattern {pattern.name!r} uses {element!r}, "
                    "absent from the historical alphabet"
                )
    for element in private_pattern.elements:
        if element not in history.alphabet:
            raise ValueError(
                f"private pattern uses {element!r}, absent from the "
                "historical alphabet"
            )


def _flip_probabilities_by_type(
    private_pattern: Pattern, allocation: BudgetAllocation
) -> Dict[str, float]:
    """Per distinct protected type (repeated types pool their budgets)."""
    totals: Dict[str, float] = {}
    for element, epsilon in zip(private_pattern.elements, allocation.epsilons):
        totals[element] = totals.get(element, 0.0) + epsilon
    return {
        element: epsilon_to_flip_probability(epsilon)
        for element, epsilon in totals.items()
    }


class AnalyticQualityEstimator(QualityEstimator):
    """Exact expected quality under independent indicator flips."""

    def __init__(
        self,
        history: IndicatorStream,
        private_pattern: Pattern,
        target_patterns: Sequence[Pattern],
        *,
        alpha: float = 0.5,
    ):
        _check_setup(history, private_pattern, target_patterns)
        self.history = history
        self.private_pattern = private_pattern
        self.target_patterns = list(target_patterns)
        self.alpha = check_probability("alpha", alpha)
        # Pre-extract per-target truth vectors, element columns, float
        # indicator matrices and positive/negative counts once: every
        # Algorithm 1 candidate evaluation reuses them.
        self._targets = []
        matrix = history.matrix_view()
        for pattern in self.target_patterns:
            distinct = list(dict.fromkeys(pattern.elements))
            columns = history.alphabet.indices(distinct)
            truth = matrix[:, columns].all(axis=1)
            negative = ~truth
            self._targets.append(
                (
                    distinct,
                    matrix[:, columns].astype(float),
                    truth,
                    negative,
                    float(truth.sum()),
                    float(negative.sum()),
                )
            )

    def expected_confusion(
        self, allocation: BudgetAllocation
    ) -> ConfusionCounts:
        """Expected confusion counts summed over all target patterns.

        For each target, the probability each element is present after
        perturbation is ``I*(1-p) + (1-I)*p`` (``p = 0`` for columns the
        PPM does not touch — exact in float arithmetic); windows detect
        the target with the product over its elements.
        """
        if allocation.length != len(self.private_pattern.elements):
            raise ValueError(
                f"allocation length {allocation.length} does not match "
                f"private pattern length {len(self.private_pattern.elements)}"
            )
        flip_by_type = _flip_probabilities_by_type(
            self.private_pattern, allocation
        )
        total = ConfusionCounts()
        for (
            distinct,
            floats,
            truth,
            negative,
            positives,
            negatives,
        ) in self._targets:
            flips = np.array(
                [flip_by_type.get(element, 0.0) for element in distinct]
            )
            presence = floats * (1.0 - flips) + (1.0 - floats) * flips
            detection = presence.prod(axis=1)
            tp = float(detection[truth].sum())
            fp = float(detection[negative].sum())
            total = total + ConfusionCounts(
                tp=tp,
                fp=fp,
                fn=positives - tp,
                tn=negatives - fp,
            )
        return total

    def evaluate(self, allocation: BudgetAllocation) -> DataQuality:
        counts = self.expected_confusion(allocation)
        return DataQuality.from_confusion(counts, alpha=self.alpha)


class MonteCarloQualityEstimator(QualityEstimator):
    """Simulation-based quality estimate (cross-check of the analytic model)."""

    def __init__(
        self,
        history: IndicatorStream,
        private_pattern: Pattern,
        target_patterns: Sequence[Pattern],
        *,
        alpha: float = 0.5,
        n_trials: int = 50,
        rng: RngLike = None,
    ):
        _check_setup(history, private_pattern, target_patterns)
        if n_trials <= 0:
            raise ValueError(f"n_trials must be positive, got {n_trials}")
        self.history = history
        self.private_pattern = private_pattern
        self.target_patterns = list(target_patterns)
        self.alpha = check_probability("alpha", alpha)
        self.n_trials = n_trials
        self._rng = rng
        self._truths = {
            pattern.name: history.detect_all(list(pattern.elements))
            for pattern in self.target_patterns
        }

    def evaluate(self, allocation: BudgetAllocation) -> DataQuality:
        flip_by_type = _flip_probabilities_by_type(
            self.private_pattern, allocation
        )
        precisions: List[float] = []
        recalls: List[float] = []
        for trial in range(self.n_trials):
            child = derive_rng(self._rng, "mc-quality", trial)
            perturbed = apply_randomized_response(
                self.history, flip_by_type, rng=child
            )
            counts = ConfusionCounts()
            for pattern in self.target_patterns:
                predicted = perturbed.detect_all(list(pattern.elements))
                counts = counts + ConfusionCounts.from_vectors(
                    self._truths[pattern.name], predicted
                )
            precisions.append(counts.precision)
            recalls.append(counts.recall)
        return DataQuality(
            precision=float(np.mean(precisions)),
            recall=float(np.mean(recalls)),
            alpha=self.alpha,
        )


def combine_flip_probabilities(maps: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Net flip probability per column under independent mechanisms.

    Section V-A: overlapping private patterns are protected by
    *independent* PPMs, so a shared column is flipped by several
    mechanisms in sequence.  Two independent flips with probabilities
    ``p`` and ``q`` leave a bit flipped with probability
    ``p(1-q) + q(1-p)``; folding this over all mechanisms gives the net
    per-column flip probability (never exceeding 1/2 when all inputs are
    at most 1/2 — more mechanisms only push towards pure noise).
    """
    combined: Dict[str, float] = {}
    for mapping in maps:
        for element, probability in mapping.items():
            if not 0.0 <= probability <= 0.5:
                raise ValueError(
                    f"flip probability for {element!r} must be in [0, 1/2], "
                    f"got {probability}"
                )
            current = combined.get(element, 0.0)
            combined[element] = (
                current * (1.0 - probability)
                + probability * (1.0 - current)
            )
    return combined


def expected_confusion_for_flips(
    history: IndicatorStream,
    flip_by_type: Dict[str, float],
    target_patterns: Sequence[Pattern],
) -> ConfusionCounts:
    """Exact expected confusion counts for arbitrary per-column flips.

    Generalizes :class:`AnalyticQualityEstimator` to any flip map (e.g.
    the net flips of a :class:`~repro.core.ppm.MultiPatternPPM`).
    """
    matrix = history.matrix_view()
    total = ConfusionCounts()
    for pattern in target_patterns:
        if pattern.elements is None:
            raise ValueError(
                f"target pattern {pattern.name!r} has no element list"
            )
        distinct = list(dict.fromkeys(pattern.elements))
        columns = history.alphabet.indices(distinct)
        truth = matrix[:, columns].all(axis=1)
        presence = np.empty((history.n_windows, len(distinct)), dtype=float)
        for position, element in enumerate(distinct):
            indicator = matrix[:, columns[position]].astype(float)
            p = flip_by_type.get(element)
            if p is None:
                presence[:, position] = indicator
            else:
                presence[:, position] = indicator * (1.0 - p) + (
                    1.0 - indicator
                ) * p
        detection = presence.prod(axis=1)
        tp = float(detection[truth].sum())
        fp = float(detection[~truth].sum())
        total = total + ConfusionCounts(
            tp=tp,
            fp=fp,
            fn=float(truth.sum()) - tp,
            tn=float((~truth).sum()) - fp,
        )
    return total


def baseline_quality(
    history: IndicatorStream,
    target_patterns: Sequence[Pattern],
    *,
    alpha: float = 0.5,
) -> DataQuality:
    """The *ordinary* quality ``Q_ord`` without any PPM (perfect detection).

    With no perturbation every window is answered correctly, so
    ``Q_ord = 1`` by construction in the windowed model; provided as a
    function so call sites make the definition of Eq. (4)'s numerator
    explicit, and so alternative (noisy-ground-truth) setups can swap it.
    """
    counts = ConfusionCounts()
    for pattern in target_patterns:
        if pattern.elements is None:
            raise ValueError(
                f"target pattern {pattern.name!r} has no element list"
            )
        truth = history.detect_all(list(pattern.elements))
        counts = counts + ConfusionCounts.from_vectors(truth, truth)
    return DataQuality.from_confusion(counts, alpha=alpha)
