"""The pattern-level ε-DP guarantee object (Definition 4).

A mechanism ``M`` over pattern streams satisfies pattern-level ε-DP of a
pattern type ``P`` iff for all pattern-level neighbours ``S, S'`` and
response sets ``R``::

    Pr[M(S) ∈ R] <= e^ε · Pr[M(S') ∈ R].

:class:`PatternLevelGuarantee` carries the protected pattern and the
budget, and knows how to check whether a randomized-response allocation
delivers it — both for the single-event neighbouring of Definition 3
(worst case ``max_i ε_i``) and for the whole-instance group-privacy
reading that Theorem 1's sum bounds (``Σ_i ε_i``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.cep.patterns import Pattern
from repro.core.budget import BudgetAllocation
from repro.utils.validation import check_positive

_TOLERANCE = 1e-9


@dataclass(frozen=True)
class PatternLevelGuarantee:
    """Pattern-level ε-DP of a given pattern type (Definition 4)."""

    pattern: Pattern
    epsilon: float

    def __post_init__(self):
        if not isinstance(self.pattern, Pattern):
            raise TypeError(
                f"pattern must be a Pattern, got {type(self.pattern).__name__}"
            )
        check_positive("epsilon", self.epsilon)

    @property
    def pattern_length(self) -> int:
        """The number of protected pattern elements ``m``."""
        return self.pattern.length

    def statement(self) -> str:
        """A human-readable statement of the guarantee."""
        return (
            f"pattern-level {self.epsilon:g}-DP of pattern type "
            f"{self.pattern.name!r} ({self.pattern.expr.render()})"
        )

    # -- checks ------------------------------------------------------------

    def satisfied_by(self, allocation: BudgetAllocation) -> bool:
        """Theorem 1 check: does the allocation stay within the budget?

        The randomized-response PPM with per-element budgets ``ε_i``
        guarantees ``Σ ε_i``-pattern-level DP; the guarantee holds when
        that sum does not exceed this object's ε.
        """
        if allocation.length != self.pattern_length:
            raise ValueError(
                f"allocation length {allocation.length} does not match "
                f"pattern length {self.pattern_length}"
            )
        return allocation.total <= self.epsilon + _TOLERANCE

    def worst_case_single_event_epsilon(
        self, allocation: BudgetAllocation
    ) -> float:
        """The privacy loss against Definition 3 neighbours.

        A single-event change touches one element, so the worst-case loss
        is ``max_i ε_i`` — never larger than the Theorem 1 sum.
        """
        if allocation.length != self.pattern_length:
            raise ValueError(
                f"allocation length {allocation.length} does not match "
                f"pattern length {self.pattern_length}"
            )
        return max(allocation.epsilons)

    def max_likelihood_ratio(self) -> float:
        """The bound ``e^ε`` on any response-probability ratio."""
        return math.exp(self.epsilon)

    def privacy_loss_of(self, flip_probabilities: Sequence[float]) -> float:
        """Theorem 1's composed loss of given flip probabilities."""
        allocation = BudgetAllocation.from_flip_probabilities(
            flip_probabilities
        )
        return allocation.total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PatternLevelGuarantee({self.statement()})"
