"""The adaptive pattern-level PPM (Section V-B, Algorithm 1).

Uniform budget distribution is not optimal when some elements are
critical for detecting *target* patterns while carrying little private
information; shifting budget towards those elements (weaker protection,
less noise) buys data quality at no cost to the total pattern-level
budget.  Algorithm 1 finds such a distribution by bidirectional
stepwise search over the quality metric estimated on historical data.

Implementation note (see DESIGN.md): the paper's pseudocode mutates the
allocation cumulatively inside its candidate loop and compensates by
``δε/m``; we implement the evident intent — candidates are evaluated
independently from the current allocation, compensation is
``δε/(m-1)``, allocations are clamped to ``[0, ε]`` and renormalized so
the total budget is conserved, and the search commits the best strictly
improving move until none exists or the iteration cap is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.cep.patterns import Pattern
from repro.core.budget import BudgetAllocation
from repro.core.ppm import PatternLevelPPM
from repro.core.quality_model import (
    AnalyticQualityEstimator,
    QualityEstimator,
)
from repro.streams.indicator import IndicatorStream
from repro.utils.validation import check_positive, check_probability

_IMPROVEMENT_TOLERANCE = 1e-12


def default_step_size(epsilon: float, length: int) -> float:
    """The paper's suggested step ``δε = mε/100`` (Algorithm 1, line 2)."""
    return length * epsilon / 100.0


@dataclass
class AdaptiveFitResult:
    """Trace of one Algorithm 1 run.

    Attributes
    ----------
    allocation:
        The final budget distribution.
    quality_trace:
        ``Q`` after the initial uniform allocation and after each
        committed move (monotone non-decreasing by construction).
    iterations:
        Number of committed moves.
    converged:
        True when the search stopped because no move improved ``Q``
        (False when it hit ``max_iterations``).
    """

    allocation: BudgetAllocation
    quality_trace: List[float] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False


def fit_allocation(
    epsilon: float,
    length: int,
    estimator: QualityEstimator,
    *,
    step_size: Optional[float] = None,
    max_iterations: int = 200,
) -> AdaptiveFitResult:
    """Run the bidirectional stepwise search of Algorithm 1.

    Starts from the uniform allocation (line 1), repeatedly tries moving
    ``step_size`` of budget onto each element in turn (lines 6-9), and
    commits the best move while it improves the estimated quality
    (lines 10-12).
    """
    check_positive("epsilon", epsilon)
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if max_iterations <= 0:
        raise ValueError(f"max_iterations must be positive, got {max_iterations}")
    if step_size is None:
        step_size = default_step_size(epsilon, length)
    check_positive("step_size", step_size)

    allocation = BudgetAllocation.uniform(epsilon, length)
    quality = estimator.evaluate(allocation).q
    trace = [quality]

    if length == 1:
        # A single element leaves nothing to redistribute.
        return AdaptiveFitResult(
            allocation=allocation,
            quality_trace=trace,
            iterations=0,
            converged=True,
        )

    iterations = 0
    converged = False
    while iterations < max_iterations:
        best_quality = quality
        best_allocation: Optional[BudgetAllocation] = None
        for index in range(length):
            candidate = allocation.with_move(index, step_size)
            if candidate.epsilons == allocation.epsilons:
                continue  # clamping absorbed the move
            candidate_quality = estimator.evaluate(candidate).q
            if candidate_quality > best_quality + _IMPROVEMENT_TOLERANCE:
                best_quality = candidate_quality
                best_allocation = candidate
        if best_allocation is None:
            converged = True
            break
        allocation = best_allocation
        quality = best_quality
        trace.append(quality)
        iterations += 1

    return AdaptiveFitResult(
        allocation=allocation,
        quality_trace=trace,
        iterations=iterations,
        converged=converged,
    )


class AdaptivePatternPPM(PatternLevelPPM):
    """Pattern-level PPM with the Algorithm 1 budget distribution.

    Build it with :meth:`fit` (runs the search on historical data) or
    directly from a pre-computed allocation.
    """

    mechanism_name = "adaptive"

    def __init__(
        self,
        private_pattern: Pattern,
        allocation: BudgetAllocation,
        *,
        fit_result: Optional[AdaptiveFitResult] = None,
    ):
        super().__init__(private_pattern, allocation, name=self.mechanism_name)
        self.fit_result = fit_result

    @classmethod
    def fit(
        cls,
        private_pattern: Pattern,
        epsilon: float,
        history: IndicatorStream,
        target_patterns: Sequence[Pattern],
        *,
        alpha: float = 0.5,
        step_size: Optional[float] = None,
        max_iterations: int = 200,
        estimator_factory: Optional[
            Callable[..., QualityEstimator]
        ] = None,
    ) -> "AdaptivePatternPPM":
        """Run Algorithm 1 on historical data and return the fitted PPM.

        Parameters
        ----------
        private_pattern:
            The protected pattern ``P = seq(e_1..e_m)``.
        epsilon:
            Total pattern-level budget (conserved by every move).
        history:
            Historical windows granted by the data subjects
            (Section V-B: they trust the engine with this data).
        target_patterns:
            The data consumers' target patterns whose detection quality
            the search maximizes.
        alpha:
            The quality metric's precision weight (Eq. (3)).
        step_size:
            Budget moved per committed step; defaults to the paper's
            ``mε/100``.
        estimator_factory:
            Alternative estimator constructor with the signature of
            :class:`AnalyticQualityEstimator`; the default is the exact
            analytic model.
        """
        check_positive("epsilon", epsilon)
        check_probability("alpha", alpha)
        if private_pattern.elements is None:
            raise ValueError(
                f"pattern {private_pattern.name!r} has no element list"
            )
        factory = estimator_factory or AnalyticQualityEstimator
        estimator = factory(
            history, private_pattern, list(target_patterns), alpha=alpha
        )
        result = fit_allocation(
            epsilon,
            len(private_pattern.elements),
            estimator,
            step_size=step_size,
            max_iterations=max_iterations,
        )
        return cls(private_pattern, result.allocation, fit_result=result)
