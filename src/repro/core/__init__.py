"""Pattern-level differential privacy — the paper's core contribution.

- Definitions 1-3: neighbouring relations (:mod:`repro.core.neighbors`);
- Definition 4: the guarantee object (:mod:`repro.core.guarantee`);
- Theorem 1: budget algebra (:mod:`repro.core.budget`);
- Section V-A: the uniform PPM (:mod:`repro.core.uniform`);
- Section V-B / Algorithm 1: the adaptive PPM (:mod:`repro.core.adaptive`);
- exact guarantee verification (:mod:`repro.core.verification`).
"""

from repro.core.adaptive import (
    AdaptiveFitResult,
    AdaptivePatternPPM,
    default_step_size,
    fit_allocation,
)
from repro.core.budget import BudgetAllocation, theorem1_epsilon
from repro.core.correlation import (
    CorrelationReport,
    DiscoveredProxy,
    augment_private_pattern,
    discover_relevant_events,
    event_pattern_correlations,
    leakage_after_protection,
    phi_coefficient,
)
from repro.core.extensions import (
    CountEstimate,
    CountingQuery,
    debias_rate,
    estimate_detection_count,
)
from repro.core.event_ppm import EventStreamPPM
from repro.core.guarantee import PatternLevelGuarantee
from repro.core.neighbors import (
    are_in_pattern_neighbors,
    are_pattern_level_neighbors,
    are_windowed_neighbors,
    differing_positions,
    enumerate_in_pattern_neighbors,
    enumerate_windowed_neighbors,
    instance_matches_type,
    windowed_instance_distance,
)
from repro.core.ppm import (
    MultiPatternPPM,
    PatternLevelPPM,
    apply_randomized_response,
    draw_flip_decisions,
)
from repro.core.quality_model import (
    AnalyticQualityEstimator,
    MonteCarloQualityEstimator,
    QualityEstimator,
    baseline_quality,
    combine_flip_probabilities,
    expected_confusion_for_flips,
)
from repro.core.uniform import UniformPatternPPM
from repro.core.verification import (
    VerificationReport,
    empirical_flip_rates,
    response_distribution,
    verify_instance_dp,
    verify_single_event_dp,
)

__all__ = [
    "AdaptiveFitResult",
    "AdaptivePatternPPM",
    "AnalyticQualityEstimator",
    "BudgetAllocation",
    "CorrelationReport",
    "CountEstimate",
    "CountingQuery",
    "DiscoveredProxy",
    "EventStreamPPM",
    "MonteCarloQualityEstimator",
    "MultiPatternPPM",
    "PatternLevelGuarantee",
    "PatternLevelPPM",
    "QualityEstimator",
    "UniformPatternPPM",
    "VerificationReport",
    "apply_randomized_response",
    "are_in_pattern_neighbors",
    "are_pattern_level_neighbors",
    "are_windowed_neighbors",
    "augment_private_pattern",
    "baseline_quality",
    "combine_flip_probabilities",
    "debias_rate",
    "default_step_size",
    "differing_positions",
    "discover_relevant_events",
    "draw_flip_decisions",
    "empirical_flip_rates",
    "enumerate_in_pattern_neighbors",
    "enumerate_windowed_neighbors",
    "estimate_detection_count",
    "event_pattern_correlations",
    "expected_confusion_for_flips",
    "fit_allocation",
    "instance_matches_type",
    "leakage_after_protection",
    "phi_coefficient",
    "response_distribution",
    "theorem1_epsilon",
    "verify_instance_dp",
    "verify_single_event_dp",
    "windowed_instance_distance",
]
