"""Replay soak harness: sustained multi-tenant traffic with kill/resume.

:func:`run_soak` is the operational proof behind the ROADMAP's soak
item: N tenants replay a recorded indicator file at a paced rate
(``replay:<path>:<rate>`` sources) through a
:class:`~repro.service.StreamGateway`, serving in bounded slices; every
few slices the fleet is checkpointed, the gateway discarded (the
"kill"), and a fresh one resumed from the checkpoint.  Throughout, the
gateway's metrics registry is the single ledger: session latency
histograms, shed/served counters and the checkpoint/resume counters
survive each kill via the checkpoint's ``metrics`` section, so the
final p50/p99 end-to-end window latency and windows/sec come straight
from :class:`~repro.obs.metrics.Histogram` bucket math over the whole
run — not from any side bookkeeping.

With ``broker_url=`` the same harness drives **broker-fed** tenants
instead: the recorded file is published once per tenant to a
Redis-Streams stream and each tenant consumes it through a
``broker:`` source (at-least-once, acks at checkpoint boundaries), so
the kill/resume cycle also exercises the pending-entry drain.  A
``fault_hook`` lets the caller arm connection faults against their
broker between slices — the report then counts redeliveries and
reconnects from the ``repro_broker_*`` series.
"""

from __future__ import annotations

import asyncio
import csv
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs.exposition import JsonlSnapshotWriter
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanRecorder, use_recorder
from repro.service.gateway import StreamGateway
from repro.service.spec import ServiceSpec

__all__ = ["SoakReport", "run_soak"]


@dataclass
class SoakReport:
    """What a soak run measured, sourced from the fleet registry."""

    tenants: int
    duration_seconds: float
    windows_total: int
    windows_per_second: float
    p50_latency_seconds: float
    p99_latency_seconds: float
    shed_windows: Dict[str, int]
    checkpoints: int
    resumes: int
    slices: int
    registry: MetricsRegistry
    #: Broker-mode extras (zero when the soak replayed from files).
    broker: bool = False
    delivered_entries: int = 0
    redelivered_entries: int = 0
    reconnects: int = 0

    def summary(self) -> str:
        """A compact human-readable report (the soak example prints
        this)."""
        shed_total = sum(self.shed_windows.values())
        lines = [
            f"soak: {self.tenants} tenant(s), "
            f"{self.duration_seconds:.2f}s wall, "
            f"{self.slices} slice(s)",
            f"windows: {self.windows_total} total, "
            f"{self.windows_per_second:.1f} windows/sec "
            f"(shed {shed_total})",
            f"latency: p50 {self.p50_latency_seconds * 1e3:.2f}ms, "
            f"p99 {self.p99_latency_seconds * 1e3:.2f}ms "
            "(end-to-end, submit to released answers)",
            f"lifecycle: {self.checkpoints} checkpoint(s), "
            f"{self.resumes} resume(s)",
        ]
        if self.broker:
            lines.append(
                f"broker: {self.delivered_entries} delivered, "
                f"{self.redelivered_entries} redelivered, "
                f"{self.reconnects} reconnect(s)"
            )
        return "\n".join(lines)


def _replay_alphabet(path: str) -> tuple:
    """The alphabet header of a recorded indicator CSV."""
    with open(path, newline="") as handle:
        try:
            header = next(csv.reader(handle))
        except StopIteration:
            raise ValueError(
                f"{path} is empty; expected an alphabet header"
            ) from None
    if not header:
        raise ValueError(f"{path} has an empty alphabet header")
    return tuple(header)


def run_soak(
    path: str,
    *,
    tenants: int = 2,
    rate: float = 200.0,
    duration: float = 3.0,
    slice_windows: int = 64,
    kill_every: int = 2,
    mechanism: str = "bd",
    mechanism_options: Optional[dict] = None,
    seed: int = 11,
    rate_limit: Optional[float] = None,
    registry: Optional[MetricsRegistry] = None,
    recorder: Optional[SpanRecorder] = None,
    snapshot_path: Optional[str] = None,
    broker_url: Optional[str] = None,
    fault_hook: Optional[Callable[[int], None]] = None,
) -> SoakReport:
    """Soak a multi-tenant fleet over ``replay:<path>:<rate>`` sources.

    Parameters
    ----------
    path:
        A recorded indicator CSV (header = alphabet, rows = 0/1; see
        :func:`repro.io.write_indicator_csv`).
    tenants:
        Fleet size; tenant ``i`` gets its own seed (``seed + i``) and
        budget ledger over the same replayed file.
    rate:
        Replay pacing per tenant, windows/second (absolute-deadline
        paced; 0 replays as fast as the fleet drains).
    duration:
        Wall-clock budget in seconds; the soak also ends early once
        every tenant's replay is exhausted.
    slice_windows:
        Windows served per tenant per slice (each slice is one
        ``serve`` call on a fresh event loop).
    kill_every:
        Checkpoint the fleet, discard the gateway and resume a fresh
        one from the checkpoint every this-many slices (0 = never) —
        the kill/resume cycle under sustained traffic.
    mechanism / mechanism_options / seed / rate_limit:
        Tenant pipeline knobs; the default is the w-event BD baseline.
    registry:
        The first generation's fleet registry (default: fresh).  Each
        resume merges the checkpoint's ``metrics`` section into the
        next generation's registry, so counters and histograms are
        monotone across kills.
    recorder:
        Optional :class:`SpanRecorder` installed for the whole soak.
    snapshot_path:
        Optional JSONL file appended with one registry snapshot per
        slice (the periodic-exposition trail).
    broker_url:
        When set (``redis://host:port``), the recorded file is
        published once per tenant to stream ``soak-<i>`` on that
        broker and tenants consume through ``broker:`` sources
        (at-least-once, acked at each fleet checkpoint) instead of
        paced file replay; ``rate`` is then ignored — entries are
        pre-published and the pump drains as fast as it processes.
    fault_hook:
        Optional callable invoked with the slice number after every
        slice (broker soaks arm connection faults against their
        server here; any exception propagates).
    """
    if tenants <= 0:
        raise ValueError(f"tenants must be positive, got {tenants}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if slice_windows <= 0:
        raise ValueError(
            f"slice_windows must be positive, got {slice_windows}"
        )
    if kill_every < 0:
        raise ValueError(f"kill_every must be >= 0, got {kill_every}")
    alphabet = _replay_alphabet(path)
    if len(alphabet) < 2:
        raise ValueError(
            f"{path} needs an alphabet of >= 2 event types, got "
            f"{list(alphabet)}"
        )
    options = dict(mechanism_options or {})
    if mechanism == "bd" and not options:
        options = {"epsilon": 1.0, "w": 16}
    if broker_url is not None:
        # Publish the recording once per tenant (each gets its own
        # stream + consumer group, so budgets and acks stay isolated)
        # and consume it back through the at-least-once broker path.
        from repro.broker.connectors import publish_indicator_stream
        from repro.io.sources import read_indicator_csv

        recording = read_indicator_csv(path)
        sources = {}
        for i in range(tenants):
            stream_name = f"soak-{i}"
            publish_indicator_stream(broker_url, stream_name, recording)
            sources[i] = (
                f"broker:url={broker_url},stream={stream_name},"
                "group=soak,consumer=c0,block_ms=100"
            )
    else:
        sources = {i: f"replay:{path}:{rate}" for i in range(tenants)}
    specs = {
        f"tenant-{i}": ServiceSpec(
            alphabet=alphabet,
            patterns=[("soak-pattern", (alphabet[0], alphabet[1]))],
            queries=[("soak-q", (alphabet[0], alphabet[1]))],
            mechanism=mechanism,
            mechanism_options=options,
            source=sources[i],
            sink="metrics",
            seed=seed + i,
        )
        for i in range(tenants)
    }

    gateway = StreamGateway(registry=registry)
    for name, spec in specs.items():
        gateway.add_tenant(name, spec, rate_limit=rate_limit)

    started = time.monotonic()
    deadline = started + duration
    slices = 0
    recorder_scope = (
        use_recorder(recorder) if recorder is not None else None
    )
    if recorder_scope is not None:
        recorder_scope.__enter__()
    try:
        while time.monotonic() < deadline:
            before = sum(gateway.windows_served().values())
            asyncio.run(gateway.serve(max_windows=slice_windows))
            slices += 1
            if snapshot_path is not None:
                JsonlSnapshotWriter(
                    snapshot_path, gateway.registry
                ).write()
            if fault_hook is not None:
                fault_hook(slices)
            if sum(gateway.windows_served().values()) == before:
                break  # every replay is exhausted
            if kill_every and slices % kill_every == 0:
                checkpoint = gateway.checkpoint()
                # The "kill": drop the live fleet, resume a fresh one
                # from the checkpoint (a fresh registry per generation
                # proves the merge keeps the series monotone).
                gateway = StreamGateway.resume(
                    checkpoint, registry=MetricsRegistry()
                )
    finally:
        if recorder_scope is not None:
            recorder_scope.__exit__(None, None, None)
    elapsed = time.monotonic() - started

    final = gateway.registry
    latency = final.get("repro_window_latency_seconds")
    windows_total = latency.count if latency is not None else 0
    checkpoints = final.get("repro_gateway_checkpoints_total")
    resumes = final.get("repro_gateway_resumes_total")

    def counter_value(name: str) -> int:
        metric = final.get(name)
        return int(metric.value) if metric is not None else 0

    return SoakReport(
        tenants=tenants,
        duration_seconds=elapsed,
        windows_total=windows_total,
        windows_per_second=(
            windows_total / elapsed if elapsed > 0 else 0.0
        ),
        p50_latency_seconds=(
            latency.percentile(50) if latency is not None else 0.0
        ),
        p99_latency_seconds=(
            latency.percentile(99) if latency is not None else 0.0
        ),
        shed_windows=gateway.shed_windows(),
        checkpoints=int(checkpoints.value) if checkpoints else 0,
        resumes=int(resumes.value) if resumes else 0,
        slices=slices,
        registry=final,
        broker=broker_url is not None,
        delivered_entries=counter_value("repro_broker_delivered_total"),
        redelivered_entries=counter_value(
            "repro_broker_redelivered_total"
        ),
        reconnects=counter_value("repro_broker_reconnects_total"),
    )
