"""Observability subsystem: metrics, span tracing, exposition, soak.

``repro.obs`` is the telemetry plane the runtime reports into:

- :mod:`repro.obs.metrics` — thread-safe ``Counter``/``Gauge``/
  ``Histogram`` families in a :class:`MetricsRegistry` (global default
  + injectable instances), with Prometheus text rendering and
  JSON-able snapshot/merge;
- :mod:`repro.obs.tracing` — ``trace_span`` + ring-buffer
  :class:`SpanRecorder`, no-op cheap when no recorder is installed;
- :mod:`repro.obs.exposition` — the JSONL periodic snapshot writer;
- :mod:`repro.obs.soak` — the replay soak harness
  (:func:`run_soak`), imported lazily because it pulls in the whole
  service layer.

Importing this package has no side effects beyond creating the (empty)
default registry — in particular it never touches random state.
"""

from repro.obs.exposition import JsonlSnapshotWriter, render_text
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
    use_registry,
)
from repro.obs.tracing import (
    Span,
    SpanRecorder,
    current_recorder,
    install_recorder,
    trace_span,
    uninstall_recorder,
    use_recorder,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlSnapshotWriter",
    "MetricsRegistry",
    "SoakReport",
    "Span",
    "SpanRecorder",
    "current_recorder",
    "default_registry",
    "install_recorder",
    "render_text",
    "run_soak",
    "set_default_registry",
    "trace_span",
    "uninstall_recorder",
    "use_recorder",
    "use_registry",
]

_LAZY = {"run_soak", "SoakReport"}


def __getattr__(name):
    # The soak harness imports the service layer (gateway, sources),
    # which itself imports repro.obs.metrics — resolving it lazily
    # keeps this package importable from those modules.
    if name in _LAZY:
        from repro.obs import soak

        value = getattr(soak, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _LAZY)
