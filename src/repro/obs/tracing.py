"""Span tracing: ``trace_span`` + a ring-buffer :class:`SpanRecorder`.

The tracing plane is deliberately pull-free: instrumented call sites do

    with trace_span("session.drain", windows=n):
        ...

and when no recorder is installed the call returns a shared no-op
context manager — one global read and one function call, no
allocations, so hot loops can stay instrumented permanently.  When a
recorder *is* installed, spans carry monotonically assigned ids and a
per-thread parent stack, so nested spans reconstruct the call tree.

Recorders are bounded ring buffers: a soak run records forever without
growing, keeping the newest ``capacity`` spans.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = [
    "Span",
    "SpanRecorder",
    "current_recorder",
    "install_recorder",
    "trace_span",
    "uninstall_recorder",
    "use_recorder",
]


class Span:
    """One finished span: timing, identity and attributes."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attrs",
        "error",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        end: float,
        attrs: Dict,
        error: Optional[str] = None,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.attrs = attrs
        self.error = error

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration * 1e3:.3f}ms)"
        )


class SpanRecorder:
    """Bounded ring buffer of finished spans.

    Thread-safe: ids are assigned under a lock, the parent stack is
    thread-local (each thread nests independently), and finished spans
    append to one shared deque that evicts the oldest beyond
    ``capacity``.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._spans: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._spans)

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: Optional[int] = None,
        **attrs,
    ) -> Span:
        """Record an externally timed span (e.g. a cluster task)."""
        span = Span(name, self._allocate_id(), parent_id, start, end, attrs)
        self.record(span)
        return span

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Recorded spans, oldest first; optionally filtered by name."""
        with self._lock:
            snapshot = list(self._spans)
        if name is None:
            return snapshot
        return [span for span in snapshot if span.name == name]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


class _NoopSpan:
    """The shared do-nothing span when no recorder is installed."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs) -> None:
        pass


_NOOP = _NoopSpan()


class _ActiveSpan:
    """A live span bound to a recorder; finalizes on ``__exit__``."""

    __slots__ = ("_recorder", "name", "attrs", "span_id", "parent_id", "start")

    def __init__(self, recorder: SpanRecorder, name: str, attrs: Dict):
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.start = 0.0

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __enter__(self):
        recorder = self._recorder
        stack = recorder._stack()
        self.parent_id = stack[-1] if stack else None
        self.span_id = recorder._allocate_id()
        stack.append(self.span_id)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        end = time.perf_counter()
        recorder = self._recorder
        stack = recorder._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        recorder.record(
            Span(
                self.name,
                self.span_id,
                self.parent_id,
                self.start,
                end,
                self.attrs,
                error=exc_type.__name__ if exc_type is not None else None,
            )
        )
        return False


_recorder: Optional[SpanRecorder] = None


def install_recorder(recorder: SpanRecorder) -> Optional[SpanRecorder]:
    """Install the process recorder; returns the previous one."""
    global _recorder
    if recorder is not None and not isinstance(recorder, SpanRecorder):
        raise TypeError(
            f"recorder must be SpanRecorder, got {type(recorder).__name__}"
        )
    previous = _recorder
    _recorder = recorder
    return previous


def uninstall_recorder() -> Optional[SpanRecorder]:
    """Remove the process recorder; returns it."""
    global _recorder
    previous = _recorder
    _recorder = None
    return previous


def current_recorder() -> Optional[SpanRecorder]:
    return _recorder


class use_recorder:
    """Context manager scoping the installed recorder to a block."""

    def __init__(self, recorder: SpanRecorder):
        self.recorder = recorder
        self._previous: Optional[SpanRecorder] = None

    def __enter__(self) -> SpanRecorder:
        self._previous = install_recorder(self.recorder)
        return self.recorder

    def __exit__(self, exc_type, exc, tb):
        global _recorder
        _recorder = self._previous
        return False


def trace_span(name: str, **attrs):
    """A context manager timing one named span.

    With no recorder installed this is the shared no-op singleton —
    cheap enough for per-batch call sites in drain loops and kernels.
    """
    recorder = _recorder
    if recorder is None:
        return _NOOP
    return _ActiveSpan(recorder, name, attrs)
