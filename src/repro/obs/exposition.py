"""Exposition: getting metrics out of the process.

Two formats:

- Prometheus text — :meth:`MetricsRegistry.render_text` (re-exported
  here as :func:`render_text` for symmetry) for scrape-style pulls;
- JSONL snapshots — :class:`JsonlSnapshotWriter` appends one
  :meth:`MetricsRegistry.snapshot` document per line, either on demand
  (:meth:`~JsonlSnapshotWriter.write`) or periodically from a daemon
  thread (:meth:`~JsonlSnapshotWriter.start`), which is what long soak
  runs use to leave an inspectable trail.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Optional

from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = ["JsonlSnapshotWriter", "render_text"]


def render_text(registry: Optional[MetricsRegistry] = None) -> str:
    """Prometheus text format of ``registry`` (default: the default)."""
    return (registry or default_registry()).render_text()


class JsonlSnapshotWriter:
    """Append registry snapshots to a JSONL file.

    Each line is ``{"at": <unix seconds>, "snapshot": {...}}``.  The
    writer opens the file per write (append mode), so a killed process
    never loses flushed lines — exactly the property a kill/resume soak
    needs.  Usable as a context manager: ``stop()`` runs on exit and
    writes one final snapshot.
    """

    def __init__(
        self,
        path: str,
        registry: Optional[MetricsRegistry] = None,
        clock=time.time,
    ):
        self.path = path
        self._registry = registry
        self._clock = clock
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry or default_registry()

    def write(self) -> None:
        """Append one snapshot line now."""
        line = json.dumps(
            {"at": self._clock(), "snapshot": self.registry.snapshot()},
            sort_keys=True,
        )
        with open(self.path, "a") as handle:
            handle.write(line + "\n")

    def start(self, interval: float) -> None:
        """Snapshot every ``interval`` seconds from a daemon thread."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if self._thread is not None:
            raise RuntimeError("snapshot writer already started")
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(interval):
                self.write()

        self._thread = threading.Thread(
            target=_loop, name="obs-jsonl-snapshots", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the periodic thread (if any) and write a final line."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.write()

    def __enter__(self) -> "JsonlSnapshotWriter":
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
