"""Process-local, thread-safe metrics plane.

The observability subsystem's ground layer: three metric primitives
(:class:`Counter`, :class:`Gauge`, :class:`Histogram`) grouped into a
:class:`MetricsRegistry`.  The design goals, in order:

- **hot-path cheap** — ``Counter.inc`` is one lock acquire and one
  float add, no allocations, so decision kernels and drain loops can
  count per row without perturbing the benches;
- **hermetic tests** — every registry is an ordinary object; the
  module-level default registry exists for convenience and can be
  swapped (:func:`set_default_registry`) or scoped
  (:func:`use_registry`) so tests never observe each other's counts;
- **mergeable** — :meth:`MetricsRegistry.snapshot` is a plain
  JSON-able document and :meth:`MetricsRegistry.merge_snapshot` folds
  one registry's deltas into another (counters add, gauges overwrite,
  histograms add bucket-wise).  That is what lets gateway checkpoints
  carry their counters across a kill/resume and cluster workers ship
  per-task metrics back over the frame protocol.

Metrics never touch random state: instrumented runs stay bit-identical
to uninstrumented ones.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
    "use_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Fixed exponential latency buckets (seconds): 0.5 ms doubling up to
#: ~32 s.  Wide enough for end-to-end window latency under soak without
#: per-histogram configuration on the hot path.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    0.0005 * (2.0**i) for i in range(17)
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(key: LabelKey, extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


class _Metric:
    """Shared family plumbing: name/help validation and label children.

    A metric object is *both* the family and its unlabeled instance —
    ``counter.inc()`` works directly, and ``counter.labels(tenant="a")``
    returns (and caches) the child for that label set.  The cache is
    keyed by the sorted label items so the same labels always yield the
    same object (``c.labels(a="1") is c.labels(a="1")``).
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._children: Dict[LabelKey, "_Metric"] = {}
        self._label_key: LabelKey = ()

    def _make_child(self) -> "_Metric":
        return type(self)(self.name, self.help)

    def labels(self, **labels: str) -> "_Metric":
        """The child metric for this label set (created on first use)."""
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                child._label_key = key
                self._children[key] = child
            return child

    def _samples(self) -> Iterator[Tuple[LabelKey, "_Metric"]]:
        """The unlabeled instance (if touched) plus every child."""
        yield (self._label_key, self)
        with self._lock:
            children = list(self._children.items())
        for key, child in children:
            yield (key, child)


class Counter(_Metric):
    """Monotone counter: ``inc`` only, never decremented."""

    kind = "counter"

    def __init__(self, name: str = "counter", help: str = ""):
        super().__init__(name, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        """Zero the counter (tests and fresh-sink reopens only)."""
        with self._lock:
            self._value = 0.0


class Gauge(_Metric):
    """Point-in-time value: ``set``/``inc``/``dec``."""

    kind = "gauge"

    def __init__(self, name: str = "gauge", help: str = ""):
        super().__init__(name, help)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Metric):
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    ``buckets`` are the finite upper bounds; an implicit ``+Inf``
    overflow bucket always exists.  ``observe`` is a bisect plus two
    adds — cheap enough for per-window latency on the drain path.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str = "histogram",
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must strictly increase")
        self.buckets = bounds
        # counts[i] pairs with buckets[i]; counts[-1] is +Inf overflow.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, self.buckets)

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket counts (finite bounds then ``+Inf``), a copy."""
        with self._lock:
            return list(self._counts)

    def percentile(self, q: float) -> float:
        """The q-th percentile (``q`` in [0, 100]) from bucket counts.

        Linear interpolation inside the winning bucket; observations in
        the overflow bucket report the largest finite bound.  An empty
        histogram reports 0.0.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = (q / 100.0) * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.buckets):
                    return self.buckets[-1]
                lower = self.buckets[index - 1] if index else 0.0
                upper = self.buckets[index]
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        return self.buckets[-1]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named collection of metrics with get-or-create accessors.

    ``registry.counter(name)`` returns the existing family or creates
    it; asking for the same name with a different kind is an error.
    Registries render to Prometheus text (:meth:`render_text`),
    snapshot to JSON-able documents (:meth:`snapshot`) and fold other
    snapshots in (:meth:`merge_snapshot`).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, **kwargs)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        if (
            cls is Histogram
            and "buckets" in kwargs
            and tuple(float(b) for b in kwargs["buckets"]) != metric.buckets
        ):
            raise ValueError(
                f"histogram {name!r} already registered with different "
                f"buckets"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        """The registered metric family, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[_Metric]:
        """Registered families in registration order (a copy)."""
        with self._lock:
            return list(self._metrics.values())

    # -- exposition --------------------------------------------------

    def render_text(self) -> str:
        """Prometheus text exposition format of the whole registry."""
        lines: List[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for key, sample in metric._samples():
                if isinstance(sample, Histogram):
                    counts = sample.bucket_counts()
                    cumulative = 0
                    for bound, bucket_count in zip(
                        sample.buckets, counts[:-1]
                    ):
                        cumulative += bucket_count
                        labels = _render_labels(key, f'le="{bound!r}"')
                        lines.append(
                            f"{metric.name}_bucket{labels} {cumulative}"
                        )
                    cumulative += counts[-1]
                    labels = _render_labels(key, 'le="+Inf"')
                    lines.append(
                        f"{metric.name}_bucket{labels} {cumulative}"
                    )
                    lines.append(
                        f"{metric.name}_sum{_render_labels(key)} "
                        f"{sample.sum!r}"
                    )
                    lines.append(
                        f"{metric.name}_count{_render_labels(key)} "
                        f"{sample.count}"
                    )
                else:
                    lines.append(
                        f"{metric.name}{_render_labels(key)} "
                        f"{sample.value!r}"
                    )
        return "\n".join(lines) + "\n"

    # -- snapshot / merge --------------------------------------------

    def snapshot(self) -> Dict:
        """A JSON-able document of every metric's current state."""
        families = []
        for metric in self.metrics():
            samples = []
            for key, sample in metric._samples():
                entry: Dict = {"labels": {k: v for k, v in key}}
                if isinstance(sample, Histogram):
                    entry["buckets"] = list(sample.buckets)
                    entry["counts"] = sample.bucket_counts()
                    entry["sum"] = sample.sum
                    entry["count"] = sample.count
                else:
                    entry["value"] = sample.value
                samples.append(entry)
            families.append(
                {
                    "name": metric.name,
                    "kind": metric.kind,
                    "help": metric.help,
                    "samples": samples,
                }
            )
        return {"format": 1, "metrics": families}

    def merge_snapshot(self, snapshot: Optional[Dict]) -> None:
        """Fold a :meth:`snapshot` document into this registry.

        Counters and histograms *add* (the snapshot is treated as a
        delta or a prior life of the same process); gauges overwrite.
        Unknown kinds raise; histogram bucket bounds must match.
        """
        if not snapshot:
            return
        for family in snapshot.get("metrics", []):
            kind = family.get("kind")
            cls = _KINDS.get(kind)
            if cls is None:
                raise ValueError(f"unknown metric kind {kind!r}")
            name = family["name"]
            help = family.get("help", "")
            for entry in family.get("samples", []):
                labels = entry.get("labels", {})
                if kind == "histogram":
                    bounds = tuple(float(b) for b in entry["buckets"])
                    family_metric = self._get_or_create(
                        Histogram, name, help, buckets=bounds
                    )
                    target = (
                        family_metric.labels(**labels)
                        if labels
                        else family_metric
                    )
                    if target.buckets != bounds:
                        raise ValueError(
                            f"histogram {name!r} bucket mismatch on merge"
                        )
                    counts = entry["counts"]
                    if len(counts) != len(target._counts):
                        raise ValueError(
                            f"histogram {name!r} count arity mismatch"
                        )
                    with target._lock:
                        for i, c in enumerate(counts):
                            target._counts[i] += c
                        target._sum += entry["sum"]
                        target._count += entry["count"]
                    continue
                family_metric = self._get_or_create(cls, name, help)
                target = (
                    family_metric.labels(**labels)
                    if labels
                    else family_metric
                )
                if kind == "counter":
                    target.inc(entry["value"])
                else:
                    target.set(entry["value"])


_default_lock = threading.Lock()
_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide default registry instrumented code reports to."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process default; returns the previous registry."""
    global _default_registry
    if not isinstance(registry, MetricsRegistry):
        raise TypeError(
            f"registry must be MetricsRegistry, got "
            f"{type(registry).__name__}"
        )
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
        return previous


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Scope the default registry to ``registry`` for a ``with`` block."""
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)
