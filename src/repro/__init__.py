"""repro — pattern-level differential privacy for data streams.

A complete reproduction of "Differential Privacy for Protecting Private
Patterns in Data Streams" (Gu, Plagemann, Benndorf, Goebel, Koldehofe —
ICDE 2023): the pattern-level ε-DP guarantee, the uniform and adaptive
pattern-level PPMs, the CEP engine and stream substrates they run on,
the non-pattern-level baselines they are compared against, both
evaluation datasets, and the harness regenerating the paper's Fig. 4.

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.baselines import (
    BudgetAbsorption,
    BudgetConverter,
    BudgetDistribution,
    EventLevelRR,
    LandmarkPrivacy,
    UserLevelRR,
)
from repro.cep import (
    AND,
    Atom,
    CEPEngine,
    ContinuousQuery,
    EventPredicate,
    KLEENE,
    NEG,
    OR,
    OnlineSession,
    Pattern,
    PatternMatch,
    PatternMatcher,
    PatternStream,
    SEQ,
)
from repro.core import (
    AdaptivePatternPPM,
    AnalyticQualityEstimator,
    BudgetAllocation,
    CountingQuery,
    EventStreamPPM,
    MonteCarloQualityEstimator,
    MultiPatternPPM,
    PatternLevelGuarantee,
    PatternLevelPPM,
    UniformPatternPPM,
    discover_relevant_events,
    verify_instance_dp,
    verify_single_event_dp,
)
from repro.datasets import (
    SyntheticConfig,
    TaxiConfig,
    Workload,
    build_taxi_workload,
    synthesize_dataset,
    synthesize_many,
)
from repro.experiments import (
    ExperimentConfig,
    run_fig4_synthetic,
    run_fig4_taxi,
)
from repro.mechanisms import (
    LaplaceMechanism,
    PrivacyAccountant,
    RandomizedResponse,
)
from repro.metrics import ConfusionCounts, DataQuality, mean_relative_error
from repro.runtime import (
    BatchExecutor,
    ChunkedExecutor,
    StreamPipeline,
)
from repro.streams import (
    DataStream,
    Event,
    EventAlphabet,
    EventStream,
    IndicatorStream,
)

__version__ = "1.0.0"

__all__ = [
    "AND",
    "AdaptivePatternPPM",
    "AnalyticQualityEstimator",
    "Atom",
    "BatchExecutor",
    "BudgetAbsorption",
    "BudgetAllocation",
    "BudgetConverter",
    "BudgetDistribution",
    "CEPEngine",
    "ChunkedExecutor",
    "ConfusionCounts",
    "ContinuousQuery",
    "CountingQuery",
    "DataQuality",
    "DataStream",
    "Event",
    "EventAlphabet",
    "EventLevelRR",
    "EventPredicate",
    "EventStream",
    "EventStreamPPM",
    "ExperimentConfig",
    "IndicatorStream",
    "KLEENE",
    "LandmarkPrivacy",
    "LaplaceMechanism",
    "MonteCarloQualityEstimator",
    "MultiPatternPPM",
    "NEG",
    "OR",
    "OnlineSession",
    "Pattern",
    "PatternLevelGuarantee",
    "PatternLevelPPM",
    "PatternMatch",
    "PatternMatcher",
    "PatternStream",
    "PrivacyAccountant",
    "RandomizedResponse",
    "SEQ",
    "StreamPipeline",
    "SyntheticConfig",
    "TaxiConfig",
    "UniformPatternPPM",
    "UserLevelRR",
    "Workload",
    "build_taxi_workload",
    "discover_relevant_events",
    "mean_relative_error",
    "run_fig4_synthetic",
    "run_fig4_taxi",
    "synthesize_dataset",
    "synthesize_many",
    "verify_instance_dp",
    "verify_single_event_dp",
]
