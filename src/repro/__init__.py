"""repro — pattern-level differential privacy for data streams.

A complete reproduction of "Differential Privacy for Protecting Private
Patterns in Data Streams" (Gu, Plagemann, Benndorf, Goebel, Koldehofe —
ICDE 2023): the pattern-level ε-DP guarantee, the uniform and adaptive
pattern-level PPMs, the CEP engine and stream substrates they run on,
the non-pattern-level baselines they are compared against, both
evaluation datasets, and the harness regenerating the paper's Fig. 4.

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.baselines import (
    BudgetAbsorption,
    BudgetConverter,
    BudgetDistribution,
    EventLevelRR,
    LandmarkPrivacy,
    UserLevelRR,
)
from repro.broker import (
    BrokerClient,
    BrokerSink,
    BrokerSource,
    FakeRedisServer,
    RetryPolicy,
)
from repro.cep import (
    AND,
    AsyncSession,
    Atom,
    CEPEngine,
    ContinuousQuery,
    EventPredicate,
    KLEENE,
    NEG,
    OR,
    OnlineSession,
    Pattern,
    PatternMatch,
    PatternMatcher,
    PatternStream,
    SEQ,
)
from repro.core import (
    AdaptivePatternPPM,
    AnalyticQualityEstimator,
    BudgetAllocation,
    CountingQuery,
    EventStreamPPM,
    MonteCarloQualityEstimator,
    MultiPatternPPM,
    PatternLevelGuarantee,
    PatternLevelPPM,
    UniformPatternPPM,
    discover_relevant_events,
    verify_instance_dp,
    verify_single_event_dp,
)
from repro.datasets import (
    SyntheticConfig,
    TaxiConfig,
    Workload,
    build_taxi_workload,
    synthesize_dataset,
    synthesize_many,
)
from repro.experiments import (
    ExperimentConfig,
    run_fig4_synthetic,
    run_fig4_taxi,
)
from repro.mechanisms import (
    LaplaceMechanism,
    PrivacyAccountant,
    RandomizedResponse,
)
from repro.metrics import ConfusionCounts, DataQuality, mean_relative_error
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanRecorder,
    run_soak,
    trace_span,
)
from repro.runtime import (
    BatchExecutor,
    ChunkedExecutor,
    ClusterExecutor,
    ShardedExecutor,
    StreamPipeline,
)
from repro.io import (
    CallbackSink,
    QueueSource,
    register_sink,
    register_source,
    registered_sinks,
    registered_sources,
)
from repro.service import (
    ServiceSpec,
    StreamGateway,
    StreamService,
    TenantSpec,
    register_executor,
    register_mechanism,
    registered_executors,
    registered_mechanisms,
)
from repro.streams import (
    DataStream,
    Event,
    EventAlphabet,
    EventStream,
    IndicatorStream,
)


def _resolve_version() -> str:
    """Single-source the package version from the build metadata.

    A source checkout (``PYTHONPATH=src``) reads ``pyproject.toml``
    next to the imported tree — consulted *first*, so a stale installed
    distribution can never shadow the tree actually being imported;
    installed packages (no pyproject on disk) answer through
    ``importlib.metadata``.
    """
    try:
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
        text = pyproject.read_text(encoding="utf-8")
        try:
            import tomllib

            project = tomllib.loads(text)["project"]
            if project.get("name") == "repro-pattern-dp":
                return project["version"]
        except ModuleNotFoundError:  # Python 3.10: no tomllib
            import re

            if 'name = "repro-pattern-dp"' in text:
                match = re.search(
                    r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE
                )
                if match:
                    return match.group(1)
    except (OSError, KeyError):
        pass
    import importlib.metadata

    try:
        return importlib.metadata.version("repro-pattern-dp")
    except importlib.metadata.PackageNotFoundError:
        return "0+unknown"


__version__ = _resolve_version()

__all__ = [
    "AND",
    "AdaptivePatternPPM",
    "AnalyticQualityEstimator",
    "AsyncSession",
    "Atom",
    "BatchExecutor",
    "BrokerClient",
    "BrokerSink",
    "BrokerSource",
    "BudgetAbsorption",
    "BudgetAllocation",
    "BudgetConverter",
    "BudgetDistribution",
    "CEPEngine",
    "CallbackSink",
    "ChunkedExecutor",
    "ClusterExecutor",
    "ConfusionCounts",
    "ContinuousQuery",
    "Counter",
    "CountingQuery",
    "DataQuality",
    "DataStream",
    "Event",
    "EventAlphabet",
    "EventLevelRR",
    "EventPredicate",
    "EventStream",
    "EventStreamPPM",
    "ExperimentConfig",
    "FakeRedisServer",
    "Gauge",
    "Histogram",
    "IndicatorStream",
    "KLEENE",
    "LandmarkPrivacy",
    "LaplaceMechanism",
    "MetricsRegistry",
    "MonteCarloQualityEstimator",
    "MultiPatternPPM",
    "NEG",
    "OR",
    "OnlineSession",
    "Pattern",
    "PatternLevelGuarantee",
    "PatternLevelPPM",
    "PatternMatch",
    "PatternMatcher",
    "PatternStream",
    "PrivacyAccountant",
    "QueueSource",
    "RandomizedResponse",
    "RetryPolicy",
    "SEQ",
    "ServiceSpec",
    "ShardedExecutor",
    "SpanRecorder",
    "StreamGateway",
    "StreamPipeline",
    "StreamService",
    "SyntheticConfig",
    "TaxiConfig",
    "TenantSpec",
    "UniformPatternPPM",
    "UserLevelRR",
    "Workload",
    "build_taxi_workload",
    "discover_relevant_events",
    "mean_relative_error",
    "register_executor",
    "register_mechanism",
    "register_sink",
    "register_source",
    "registered_executors",
    "registered_mechanisms",
    "registered_sinks",
    "registered_sources",
    "run_fig4_synthetic",
    "run_fig4_taxi",
    "run_soak",
    "synthesize_dataset",
    "synthesize_many",
    "trace_span",
    "verify_instance_dp",
    "verify_single_event_dp",
]
