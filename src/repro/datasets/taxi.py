"""T-Drive-substitute taxi workload (Section VI-A.1).

The paper evaluates on the T-Drive Beijing taxi dataset (10,357 taxis,
GPS fixes every 177 seconds ≈ 623 m).  The dataset is not
redistributable and this environment has no network access, so we build
the closest synthetic equivalent exercising the same code paths (see
DESIGN.md "Substitutions"): a grid city in which taxis run
random-waypoint trips sampled every 177 s, with the paper's region
construction —

- 20 % of cells are *private* area;
- 40 % of the remaining cells are *target* area;
- 50 % of the private cells are additionally target area
  ("we randomly select 50% of the private pattern area to become target
  pattern area, which leads to an overall 50% target pattern area").

The private/target *overlap* is the crux of the evaluation: a GPS event
inside an overlap cell is simultaneously an element of a private
pattern and of a target pattern, so hiding the private visit must
damage the target query.  The grid cells therefore fall into four
categories —

====================  =============================================
``po`` private-only    private area that is not target area
``ov`` overlap         private ∩ target area (the shared elements)
``to`` target-only     target area that is not private area
``rd`` road            neither
====================  =============================================

and each per-taxi window is reduced to six indicators: for each of the
``po`` / ``ov`` / ``to`` categories, whether the taxi *entered* the
area and whether it was *inside* at any sample.  The patterns are short
region episodes (``seq(enter, in)``), reproducing the structural
property the paper reports for Taxi ("detecting a pattern is almost
identical to detecting a basic event") — which is what compresses the
uniform-vs-adaptive gap in Fig. 4's Taxi panel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.cep.patterns import Pattern
from repro.datasets.workload import Workload
from repro.streams.events import DataTuple
from repro.streams.extraction import EventExtractor
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.stream import DataStream
from repro.utils.rng import RngLike, derive_rng, ensure_rng
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
)

TAXI_ALPHABET = EventAlphabet(
    ["po_enter", "po_in", "ov_enter", "ov_in", "to_enter", "to_in"]
)

#: The data subjects' private patterns: visit episodes of the two
#: private area categories.  The overlap episode shares *all* its
#: elements with a target pattern — the dependence Section VI-A.1 wants.
PRIVATE_PATTERNS = [
    Pattern.of_types("private_only_visit", "po_enter", "po_in"),
    Pattern.of_types("private_overlap_visit", "ov_enter", "ov_in"),
]

#: The data consumers' target patterns: visit episodes of the two
#: target area categories.
TARGET_PATTERNS = [
    Pattern.of_types("target_only_visit", "to_enter", "to_in"),
    Pattern.of_types("target_overlap_visit", "ov_enter", "ov_in"),
]


@dataclass(frozen=True)
class TaxiConfig:
    """Parameters of the taxi workload (defaults scale the paper's setup
    down to laptop size while keeping every ratio)."""

    n_taxis: int = 100
    n_steps: int = 240
    grid_width: int = 25
    grid_height: int = 25
    sampling_interval: float = 177.0
    private_fraction: float = 0.2
    extra_target_fraction: float = 0.4
    private_target_overlap: float = 0.5
    window_steps: int = 4
    history_fraction: float = 1.0 / 3.0
    w: int = 10

    def __post_init__(self):
        check_positive_int("n_taxis", self.n_taxis)
        check_positive_int("n_steps", self.n_steps)
        check_positive_int("grid_width", self.grid_width)
        check_positive_int("grid_height", self.grid_height)
        check_positive("sampling_interval", self.sampling_interval)
        check_fraction("private_fraction", self.private_fraction)
        check_fraction("extra_target_fraction", self.extra_target_fraction)
        check_fraction("private_target_overlap", self.private_target_overlap)
        check_positive_int("window_steps", self.window_steps)
        check_fraction("history_fraction", self.history_fraction)
        check_positive_int("w", self.w)
        if self.private_fraction + self.extra_target_fraction > 1.0:
            raise ValueError(
                "private_fraction + extra_target_fraction must not exceed 1"
            )
        if self.window_steps > self.n_steps:
            raise ValueError("window_steps cannot exceed n_steps")


class GridCity:
    """A grid of cells with private/target region labels."""

    def __init__(
        self,
        width: int,
        height: int,
        private_mask: np.ndarray,
        target_mask: np.ndarray,
    ):
        self.width = check_positive_int("width", width)
        self.height = check_positive_int("height", height)
        n_cells = width * height
        private_mask = np.asarray(private_mask, dtype=bool)
        target_mask = np.asarray(target_mask, dtype=bool)
        if private_mask.shape != (n_cells,) or target_mask.shape != (n_cells,):
            raise ValueError(f"region masks must have shape ({n_cells},)")
        self.private_mask = private_mask
        self.target_mask = target_mask

    @classmethod
    def generate(cls, config: TaxiConfig, *, rng: RngLike = None) -> "GridCity":
        """Assign regions per the paper's construction (Section VI-A.1)."""
        generator = ensure_rng(rng)
        n_cells = config.grid_width * config.grid_height
        order = generator.permutation(n_cells)
        n_private = int(round(config.private_fraction * n_cells))
        n_extra_target = int(round(config.extra_target_fraction * n_cells))
        private_cells = order[:n_private]
        extra_target_cells = order[n_private : n_private + n_extra_target]
        private_mask = np.zeros(n_cells, dtype=bool)
        private_mask[private_cells] = True
        target_mask = np.zeros(n_cells, dtype=bool)
        target_mask[extra_target_cells] = True
        # A fraction of the private area doubles as target area.
        n_overlap = int(round(config.private_target_overlap * n_private))
        if n_overlap > 0:
            overlap_pick = generator.choice(
                n_private, size=n_overlap, replace=False
            )
            target_mask[private_cells[overlap_pick]] = True
        return cls(
            config.grid_width, config.grid_height, private_mask, target_mask
        )

    @property
    def n_cells(self) -> int:
        return self.width * self.height

    def cell_index(self, x: int, y: int) -> int:
        """Linear cell index of grid coordinates."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(
                f"({x}, {y}) outside the {self.width}x{self.height} grid"
            )
        return y * self.width + x

    def is_private(self, x: int, y: int) -> bool:
        return bool(self.private_mask[self.cell_index(x, y)])

    def is_target(self, x: int, y: int) -> bool:
        return bool(self.target_mask[self.cell_index(x, y)])

    def category(self, x: int, y: int) -> str:
        """Region category of a cell: ``po``, ``ov``, ``to`` or ``rd``."""
        private = self.is_private(x, y)
        target = self.is_target(x, y)
        if private and target:
            return "ov"
        if private:
            return "po"
        if target:
            return "to"
        return "rd"

    def region_fractions(self) -> Dict[str, float]:
        """Achieved private / target / overlap area fractions."""
        return {
            "private": float(self.private_mask.mean()),
            "target": float(self.target_mask.mean()),
            "overlap": float((self.private_mask & self.target_mask).mean()),
        }


def simulate_trace(config: TaxiConfig, *, rng: RngLike = None) -> np.ndarray:
    """One taxi's random-waypoint trace: ``(n_steps, 2)`` grid positions.

    The taxi walks one cell per 177 s sample towards a random waypoint
    (Manhattan moves, random axis priority), picking a new waypoint on
    arrival — the standard mobility model for synthetic urban traces.
    """
    generator = ensure_rng(rng)
    position = np.array(
        [
            generator.integers(0, config.grid_width),
            generator.integers(0, config.grid_height),
        ]
    )
    destination = position.copy()
    trace = np.empty((config.n_steps, 2), dtype=int)
    for step in range(config.n_steps):
        if np.array_equal(position, destination):
            destination = np.array(
                [
                    generator.integers(0, config.grid_width),
                    generator.integers(0, config.grid_height),
                ]
            )
        deltas = destination - position
        moves = [axis for axis in (0, 1) if deltas[axis] != 0]
        if moves:
            axis = moves[0] if len(moves) == 1 else int(generator.integers(0, 2))
            position[axis] += int(np.sign(deltas[axis]))
        trace[step] = position
    return trace


def simulate_fleet(
    config: TaxiConfig, *, rng: RngLike = None
) -> Dict[int, np.ndarray]:
    """Traces for the whole fleet, keyed by taxi id (derived seeds)."""
    return {
        taxi_id: simulate_trace(config, rng=derive_rng(rng, "taxi", taxi_id))
        for taxi_id in range(config.n_taxis)
    }


def fleet_data_stream(
    config: TaxiConfig,
    traces: Dict[int, np.ndarray],
) -> DataStream:
    """The raw GPS data stream ``S^D`` of the fleet.

    Tuples carry (taxi_id, x, y) plus the previous sample's position so
    stateless extractors can detect region *entries* — mirroring how a
    real deployment would join consecutive fixes.
    """

    def factory() -> Iterator[DataTuple]:
        for step in range(config.n_steps):
            timestamp = step * config.sampling_interval
            for taxi_id in sorted(traces):
                trace = traces[taxi_id]
                x, y = int(trace[step, 0]), int(trace[step, 1])
                prev_step = max(0, step - 1)
                px, py = int(trace[prev_step, 0]), int(trace[prev_step, 1])
                yield DataTuple(
                    timestamp,
                    values={
                        "taxi_id": taxi_id,
                        "x": x,
                        "y": y,
                        "prev_x": px,
                        "prev_y": py,
                    },
                    source=f"taxi-{taxi_id}",
                )

    return DataStream(factory=factory, name="taxi-fleet")


def taxi_event_extractors(city: GridCity) -> List[EventExtractor]:
    """Extractors lifting GPS tuples into the region-event alphabet.

    One ``*_in`` and one ``*_enter`` extractor per region category; used
    by the full-pipeline path (raw tuples → events → windows), which the
    examples and integration tests exercise.
    """

    def make_in(category: str):
        def predicate(t: DataTuple) -> bool:
            return city.category(t.value("x"), t.value("y")) == category

        return predicate

    def make_enter(category: str):
        def predicate(t: DataTuple) -> bool:
            now = city.category(t.value("x"), t.value("y"))
            before = city.category(t.value("prev_x"), t.value("prev_y"))
            return now == category and before != category

        return predicate

    keep = ["taxi_id", "x", "y"]

    def project(t: DataTuple) -> dict:
        return {key: t.value(key) for key in keep}

    extractors: List[EventExtractor] = []
    for category in ("po", "ov", "to"):
        extractors.append(
            EventExtractor(
                f"{category}_in",
                predicate=make_in(category),
                attributes=project,
            )
        )
        extractors.append(
            EventExtractor(
                f"{category}_enter",
                predicate=make_enter(category),
                attributes=project,
            )
        )
    return extractors


def _window_indicators(
    city: GridCity, trace: np.ndarray, start: int, stop: int
) -> Tuple[bool, ...]:
    """The six region indicators for trace[start:stop].

    Order matches :data:`TAXI_ALPHABET`:
    (po_enter, po_in, ov_enter, ov_in, to_enter, to_in).
    """
    inside = {"po": False, "ov": False, "to": False}
    entered = {"po": False, "ov": False, "to": False}
    previous = None
    for step in range(start, stop):
        category = city.category(int(trace[step, 0]), int(trace[step, 1]))
        if category in inside:
            inside[category] = True
            if previous is not None and previous != category:
                entered[category] = True
        previous = category
    return (
        entered["po"],
        inside["po"],
        entered["ov"],
        inside["ov"],
        entered["to"],
        inside["to"],
    )


def traces_to_indicator_stream(
    config: TaxiConfig, city: GridCity, traces: Dict[int, np.ndarray]
) -> IndicatorStream:
    """Chop every taxi's trace into windows of ``window_steps`` samples
    and reduce each window to the region-event indicators."""
    rows: List[Tuple[bool, ...]] = []
    n_windows_per_taxi = config.n_steps // config.window_steps
    for taxi_id in sorted(traces):
        trace = traces[taxi_id]
        for index in range(n_windows_per_taxi):
            start = index * config.window_steps
            stop = start + config.window_steps
            rows.append(_window_indicators(city, trace, start, stop))
    matrix = np.array(rows, dtype=bool).reshape(-1, len(TAXI_ALPHABET))
    return IndicatorStream(TAXI_ALPHABET, matrix)


def build_taxi_workload(
    config: TaxiConfig = TaxiConfig(), *, rng: RngLike = None
) -> Workload:
    """Simulate the fleet and assemble the Taxi evaluation workload.

    The leading ``history_fraction`` of windows becomes the historical
    data for Algorithm 1; the remainder is the evaluation stream.
    """
    city = GridCity.generate(config, rng=derive_rng(rng, "city"))
    traces = simulate_fleet(config, rng=derive_rng(rng, "fleet"))
    stream = traces_to_indicator_stream(config, city, traces)
    history, evaluation = stream.split(config.history_fraction)
    return Workload(
        name="taxi",
        stream=evaluation,
        history=history,
        private_patterns=list(PRIVATE_PATTERNS),
        target_patterns=list(TARGET_PATTERNS),
        w=config.w,
    )
