"""Legacy persistence helpers, reimplemented on the I/O connectors.

.. deprecated::
    The save/load helpers below predate the connector layer
    (:mod:`repro.io`) and are kept as thin compatibility shims: each
    call emits exactly one ``DeprecationWarning`` and delegates to the
    streamed connector implementations
    (:func:`repro.io.read_indicator_csv` /
    :func:`repro.io.write_indicator_csv`).  New code should read and
    write through connectors — ``ServiceSpec(source="csv:...",
    sink="csv:...")`` — or call the ``repro.io`` helpers directly;
    neither path warns.

The CSV format itself is unchanged (header = alphabet, rows = 0/1) and
round-trips between both APIs.
"""

from __future__ import annotations

import json
import os

from repro.cep.patterns import Pattern
from repro.datasets.workload import Workload
from repro.streams.indicator import IndicatorStream
from repro.utils.deprecation import (
    suppress_imperative_warnings,
    warn_superseded_io,
)

_STREAM_FILE = "stream.csv"
_HISTORY_FILE = "history.csv"
_META_FILE = "workload.json"


def save_indicator_csv(stream: IndicatorStream, path: str) -> None:
    """Write an indicator stream as CSV (header = alphabet, rows = 0/1).

    .. deprecated:: use :func:`repro.io.write_indicator_csv` or a
       ``csv:`` sink connector.
    """
    warn_superseded_io(
        "save_indicator_csv()",
        "write through repro.io.write_indicator_csv or a 'csv:' sink",
    )
    from repro.io.sinks import write_indicator_csv

    write_indicator_csv(stream, path)


def load_indicator_csv(path: str) -> IndicatorStream:
    """Read an indicator stream written by :func:`save_indicator_csv`.

    Rows are streamed into preallocated buffers (never materialized as
    Python lists), so loading a large replay file no longer doubles
    peak memory.

    .. deprecated:: use :func:`repro.io.read_indicator_csv` or a
       ``csv:`` source connector.
    """
    warn_superseded_io(
        "load_indicator_csv()",
        "read through repro.io.read_indicator_csv or a 'csv:' source",
    )
    from repro.io.sources import read_indicator_csv

    return read_indicator_csv(path)


def _pattern_to_dict(pattern: Pattern) -> dict:
    if pattern.elements is None:
        raise ValueError(
            f"pattern {pattern.name!r} has no element list; only "
            "seq-of-types patterns are serializable"
        )
    return {"name": pattern.name, "elements": list(pattern.elements)}


def _pattern_from_dict(data: dict) -> Pattern:
    return Pattern.of_types(data["name"], *data["elements"])


def save_workload(workload: Workload, directory: str) -> None:
    """Persist a workload into ``directory`` (created if missing).

    .. deprecated:: persist streams through ``csv:`` connectors; the
       pattern/window metadata lives in a ``ServiceSpec`` JSON today.
    """
    warn_superseded_io(
        "save_workload()",
        "persist streams through 'csv:' connectors and metadata "
        "through ServiceSpec JSON",
    )
    from repro.io.sinks import write_indicator_csv

    with suppress_imperative_warnings():
        os.makedirs(directory, exist_ok=True)
        write_indicator_csv(
            workload.stream, os.path.join(directory, _STREAM_FILE)
        )
        write_indicator_csv(
            workload.history, os.path.join(directory, _HISTORY_FILE)
        )
        meta = {
            "name": workload.name,
            "w": workload.w,
            "private_patterns": [
                _pattern_to_dict(p) for p in workload.private_patterns
            ],
            "target_patterns": [
                _pattern_to_dict(p) for p in workload.target_patterns
            ],
        }
        with open(os.path.join(directory, _META_FILE), "w") as handle:
            json.dump(meta, handle, indent=2)


def load_workload(directory: str) -> Workload:
    """Reload a workload persisted by :func:`save_workload`.

    .. deprecated:: load streams through ``csv:`` connectors; the
       pattern/window metadata lives in a ``ServiceSpec`` JSON today.
    """
    warn_superseded_io(
        "load_workload()",
        "load streams through 'csv:' connectors and metadata through "
        "ServiceSpec JSON",
    )
    from repro.io.sources import read_indicator_csv

    with suppress_imperative_warnings():
        meta_path = os.path.join(directory, _META_FILE)
        if not os.path.exists(meta_path):
            raise FileNotFoundError(f"no workload metadata at {meta_path}")
        with open(meta_path) as handle:
            meta = json.load(handle)
        return Workload(
            name=meta["name"],
            stream=read_indicator_csv(
                os.path.join(directory, _STREAM_FILE)
            ),
            history=read_indicator_csv(
                os.path.join(directory, _HISTORY_FILE)
            ),
            private_patterns=[
                _pattern_from_dict(d) for d in meta["private_patterns"]
            ],
            target_patterns=[
                _pattern_from_dict(d) for d in meta["target_patterns"]
            ],
            w=int(meta["w"]),
        )
