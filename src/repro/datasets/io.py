"""Persistence of indicator streams and workloads (CSV + JSON).

Lets users export generated workloads, run external tools on them, and
reload them for evaluation — and lets the examples ship reproducible
artefacts without binary formats.
"""

from __future__ import annotations

import csv
import json
import os
from typing import List

import numpy as np

from repro.cep.patterns import Pattern
from repro.datasets.workload import Workload
from repro.streams.indicator import EventAlphabet, IndicatorStream

_STREAM_FILE = "stream.csv"
_HISTORY_FILE = "history.csv"
_META_FILE = "workload.json"


def save_indicator_csv(stream: IndicatorStream, path: str) -> None:
    """Write an indicator stream as CSV (header = alphabet, rows = 0/1)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(stream.alphabet.types)
        for row in stream.matrix_view():
            writer.writerow([int(value) for value in row])


def load_indicator_csv(path: str) -> IndicatorStream:
    """Read an indicator stream written by :func:`save_indicator_csv`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty; expected an alphabet header")
        alphabet = EventAlphabet(header)
        rows: List[List[int]] = []
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise ValueError(
                    f"{path}:{line_number}: expected {len(header)} columns, "
                    f"got {len(row)}"
                )
            try:
                rows.append([int(value) for value in row])
            except ValueError:
                raise ValueError(
                    f"{path}:{line_number}: non-integer indicator value"
                ) from None
    if rows:
        matrix = np.array(rows, dtype=int)
    else:
        matrix = np.zeros((0, len(alphabet)), dtype=int)
    return IndicatorStream(alphabet, matrix)


def _pattern_to_dict(pattern: Pattern) -> dict:
    if pattern.elements is None:
        raise ValueError(
            f"pattern {pattern.name!r} has no element list; only "
            "seq-of-types patterns are serializable"
        )
    return {"name": pattern.name, "elements": list(pattern.elements)}


def _pattern_from_dict(data: dict) -> Pattern:
    return Pattern.of_types(data["name"], *data["elements"])


def save_workload(workload: Workload, directory: str) -> None:
    """Persist a workload into ``directory`` (created if missing)."""
    os.makedirs(directory, exist_ok=True)
    save_indicator_csv(
        workload.stream, os.path.join(directory, _STREAM_FILE)
    )
    save_indicator_csv(
        workload.history, os.path.join(directory, _HISTORY_FILE)
    )
    meta = {
        "name": workload.name,
        "w": workload.w,
        "private_patterns": [
            _pattern_to_dict(p) for p in workload.private_patterns
        ],
        "target_patterns": [
            _pattern_to_dict(p) for p in workload.target_patterns
        ],
    }
    with open(os.path.join(directory, _META_FILE), "w") as handle:
        json.dump(meta, handle, indent=2)


def load_workload(directory: str) -> Workload:
    """Reload a workload persisted by :func:`save_workload`."""
    meta_path = os.path.join(directory, _META_FILE)
    if not os.path.exists(meta_path):
        raise FileNotFoundError(f"no workload metadata at {meta_path}")
    with open(meta_path) as handle:
        meta = json.load(handle)
    return Workload(
        name=meta["name"],
        stream=load_indicator_csv(os.path.join(directory, _STREAM_FILE)),
        history=load_indicator_csv(os.path.join(directory, _HISTORY_FILE)),
        private_patterns=[
            _pattern_from_dict(d) for d in meta["private_patterns"]
        ],
        target_patterns=[
            _pattern_from_dict(d) for d in meta["target_patterns"]
        ],
        w=int(meta["w"]),
    )
