"""The workload abstraction consumed by the experiment harness.

A :class:`Workload` bundles everything one evaluation run needs: the
evaluation windows, the historical windows the adaptive PPM trains on
(Section V-B), the private and target pattern sets, and the w-event
window parameter used by the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.baselines.landmark import landmarks_from_pattern
from repro.cep.patterns import Pattern
from repro.streams.indicator import IndicatorStream
from repro.utils.validation import check_positive_int


@dataclass
class Workload:
    """One evaluation workload.

    Attributes
    ----------
    name:
        Identifier used in reports (``"taxi"``, ``"synthetic"``, ...).
    stream:
        The evaluation windows the mechanisms perturb and the queries
        are answered on.
    history:
        Historical windows for Algorithm 1 (disjoint from ``stream``).
    private_patterns:
        The pattern types the data subjects protect.
    target_patterns:
        The pattern types the data consumers query.
    w:
        The w-event sliding-window parameter used when baselines run on
        this workload.
    """

    name: str
    stream: IndicatorStream
    history: IndicatorStream
    private_patterns: List[Pattern]
    target_patterns: List[Pattern]
    w: int = 10

    def __post_init__(self):
        check_positive_int("w", self.w)
        if not self.private_patterns:
            raise ValueError("a workload needs at least one private pattern")
        if not self.target_patterns:
            raise ValueError("a workload needs at least one target pattern")
        if self.stream.alphabet != self.history.alphabet:
            raise ValueError(
                "evaluation and historical streams use different alphabets"
            )
        for pattern in self.private_patterns + self.target_patterns:
            if pattern.elements is None:
                raise ValueError(
                    f"pattern {pattern.name!r} has no element list"
                )
            for element in pattern.elements:
                if element not in self.stream.alphabet:
                    raise ValueError(
                        f"pattern {pattern.name!r} element {element!r} is "
                        "not in the workload alphabet"
                    )

    @property
    def primary_private(self) -> Pattern:
        """The first private pattern (workloads with a single one)."""
        return self.private_patterns[0]

    @property
    def max_private_length(self) -> int:
        """The longest private pattern's ``m`` (conversion worst case)."""
        return max(len(p.elements) for p in self.private_patterns)

    def private_elements(self) -> List[str]:
        """All distinct event types any private pattern protects."""
        seen = {}
        for pattern in self.private_patterns:
            for element in pattern.elements:
                seen.setdefault(element, None)
        return list(seen)

    def landmark_mask(self) -> np.ndarray:
        """Landmark windows for the landmark-privacy baseline.

        A window is a landmark when any private pattern element occurs
        in it (the data subject's sensitive timestamps).
        """
        return landmarks_from_pattern(self.stream, self.private_elements())

    def most_overlapping_private(self) -> Pattern:
        """The private pattern sharing the most element types with targets.

        Useful for ablations that need a pattern whose protection
        actually trades off against target quality (a disjoint private
        pattern can be noised for free).  Ties break towards the first
        pattern.
        """
        target_elements = set()
        for pattern in self.target_patterns:
            target_elements.update(pattern.elements)
        return max(
            self.private_patterns,
            key=lambda p: len(set(p.elements) & target_elements),
        )

    def overlap_summary(self) -> dict:
        """How private and target patterns share event types.

        The evaluation is only meaningful when they overlap
        (Section VI-A.1); this summary is used by reports and sanity
        tests.
        """
        private_elements = set(self.private_elements())
        shared = {}
        for pattern in self.target_patterns:
            shared[pattern.name] = sorted(
                private_elements & set(pattern.elements)
            )
        return {
            "private_elements": sorted(private_elements),
            "shared_by_target": shared,
            "any_overlap": any(bool(v) for v in shared.values()),
        }

    def statistics(self):
        """Workload statistics as a :class:`~repro.utils.tables.ResultTable`.

        One row per pattern with its detection rate on the evaluation
        stream, plus per-element occurrence rates — the numbers that
        determine how hard the workload is (rare patterns are fragile
        under flips; common ones are robust).
        """
        from repro.utils.tables import ResultTable

        table = ResultTable(
            ["kind", "name", "elements", "detection_rate"],
            title=f"workload statistics: {self.name}",
        )
        n = max(1, self.stream.n_windows)
        for kind, patterns in (
            ("private", self.private_patterns),
            ("target", self.target_patterns),
        ):
            for pattern in patterns:
                count = self.stream.detection_count(list(pattern.elements))
                table.add_row(
                    kind=kind,
                    name=pattern.name,
                    elements=",".join(pattern.elements),
                    detection_rate=count / n,
                )
        rates = self.stream.occurrence_rates()
        for element in self.private_elements():
            table.add_row(
                kind="element",
                name=element,
                elements=element,
                detection_rate=rates[element],
            )
        return table

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"workload {self.name!r}: {self.stream.n_windows} evaluation "
            f"windows, {self.history.n_windows} history windows, "
            f"{len(self.stream.alphabet)} event types, "
            f"{len(self.private_patterns)} private / "
            f"{len(self.target_patterns)} target patterns, w={self.w}"
        )
