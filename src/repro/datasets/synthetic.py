"""Synthetic dataset generation — Algorithm 2 of the paper, verbatim.

"Denote 20 basic events as e1..e20; randomly generate 20 numbers between
0 and 1 as the natural occurrence of e_i; [for each of 1000 windows,
include e_n when a uniform draw falls below Pr(e_n)]; among 20 patterns
randomly select 3 as private ones and 5 as target ones; assign randomly
3 events to each of the 20 patterns.  If all three events are contained
in one L_m, then their corresponding pattern is regarded as being
detected."

The paper synthesizes 1000 such datasets; :func:`synthesize_many` does
the same with the count as a parameter so tests stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.cep.patterns import Pattern
from repro.datasets.workload import Workload
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.utils.rng import RngLike, derive_rng, ensure_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of Algorithm 2 (paper defaults).

    Attributes
    ----------
    n_event_types:
        Size of the basic-event alphabet (paper: 20).
    n_windows:
        Evaluation windows per dataset (paper: 1000).
    n_history_windows:
        Additional windows generated from the same occurrence
        probabilities as the historical data for Algorithm 1.
    n_patterns:
        Total pattern pool size (paper: 20).
    pattern_length:
        Events per pattern (paper: 3).
    n_private, n_target:
        Patterns drawn as private / target (paper: 3 and 5).
    disjoint_roles:
        When True (default), the target patterns are drawn from the pool
        excluding the private ones — roles may still correlate through
        shared *events*, which is what makes the evaluation meaningful;
        when False a pattern may be private and target at once.
    w:
        The w-event parameter attached to the generated workload.
    """

    n_event_types: int = 20
    n_windows: int = 1000
    n_history_windows: int = 500
    n_patterns: int = 20
    pattern_length: int = 3
    n_private: int = 3
    n_target: int = 5
    disjoint_roles: bool = True
    w: int = 10

    def __post_init__(self):
        check_positive_int("n_event_types", self.n_event_types)
        check_positive_int("n_windows", self.n_windows)
        check_positive_int("n_history_windows", self.n_history_windows)
        check_positive_int("n_patterns", self.n_patterns)
        check_positive_int("pattern_length", self.pattern_length)
        check_positive_int("n_private", self.n_private)
        check_positive_int("n_target", self.n_target)
        check_positive_int("w", self.w)
        if self.pattern_length > self.n_event_types:
            raise ValueError(
                "pattern_length cannot exceed the alphabet size"
            )
        required = self.n_private + (
            self.n_target if self.disjoint_roles else 0
        )
        if required > self.n_patterns:
            raise ValueError(
                f"need {required} distinct pattern roles but the pool has "
                f"only {self.n_patterns} patterns"
            )


def _sample_windows(
    rng: np.random.Generator,
    occurrence: np.ndarray,
    n_windows: int,
) -> np.ndarray:
    """Algorithm 2 lines 4-11: include e_n in L_m w.p. Pr(e_n)."""
    return rng.random((n_windows, occurrence.shape[0])) < occurrence


def synthesize_dataset(
    config: SyntheticConfig = SyntheticConfig(),
    *,
    rng: RngLike = None,
    name: str = "synthetic",
) -> Workload:
    """Generate one Algorithm 2 dataset as a :class:`Workload`."""
    generator = ensure_rng(rng)
    alphabet = EventAlphabet.numbered(config.n_event_types)
    type_names = list(alphabet.types)

    # Line 2: natural occurrence probabilities.
    occurrence = generator.random(config.n_event_types)

    # Lines 3-12: the windows (evaluation + historical, same process).
    evaluation = _sample_windows(generator, occurrence, config.n_windows)
    history = _sample_windows(
        generator, occurrence, config.n_history_windows
    )

    # Line 14: assign 3 random events to each of the 20 patterns
    # (sampled without replacement within a pattern).
    pool: List[Pattern] = []
    for index in range(config.n_patterns):
        chosen = generator.choice(
            config.n_event_types, size=config.pattern_length, replace=False
        )
        elements = [type_names[i] for i in sorted(chosen)]
        pool.append(Pattern.of_types(f"P{index + 1}", *elements))

    # Line 13: select private and target patterns.
    indices = list(range(config.n_patterns))
    private_idx = generator.choice(
        config.n_patterns, size=config.n_private, replace=False
    )
    private_patterns = [pool[i] for i in sorted(private_idx)]
    if config.disjoint_roles:
        remaining = [i for i in indices if i not in set(private_idx.tolist())]
        target_pick = generator.choice(
            len(remaining), size=config.n_target, replace=False
        )
        target_patterns = [pool[remaining[i]] for i in sorted(target_pick)]
    else:
        target_idx = generator.choice(
            config.n_patterns, size=config.n_target, replace=False
        )
        target_patterns = [pool[i] for i in sorted(target_idx)]

    return Workload(
        name=name,
        stream=IndicatorStream(alphabet, evaluation),
        history=IndicatorStream(alphabet, history),
        private_patterns=private_patterns,
        target_patterns=target_patterns,
        w=config.w,
    )


def synthesize_many(
    count: int,
    config: SyntheticConfig = SyntheticConfig(),
    *,
    rng: RngLike = None,
) -> Iterator[Workload]:
    """Generate ``count`` independent Algorithm 2 datasets.

    The paper repeats Algorithm 2 independently 1000 times; each dataset
    draws fresh occurrence probabilities, windows and pattern roles from
    a derived child generator, so datasets are independent and the whole
    collection is reproducible from one seed.
    """
    check_positive_int("count", count)
    for index in range(count):
        child = derive_rng(rng, "synthetic-dataset", index)
        yield synthesize_dataset(
            config, rng=child, name=f"synthetic-{index}"
        )
