"""Evaluation datasets (Section VI-A.1).

- :mod:`repro.datasets.taxi` — the T-Drive-substitute grid-city taxi
  simulator (see DESIGN.md "Substitutions");
- :mod:`repro.datasets.synthetic` — Algorithm 2, verbatim;
- :mod:`repro.datasets.workload` — the workload bundle the experiment
  harness consumes;
- :mod:`repro.datasets.io` — CSV/JSON persistence.
"""

from repro.datasets.io import (
    load_indicator_csv,
    load_workload,
    save_indicator_csv,
    save_workload,
)
from repro.datasets.synthetic import (
    SyntheticConfig,
    synthesize_dataset,
    synthesize_many,
)
from repro.datasets.taxi import (
    PRIVATE_PATTERNS,
    TARGET_PATTERNS,
    TAXI_ALPHABET,
    GridCity,
    TaxiConfig,
    build_taxi_workload,
    fleet_data_stream,
    simulate_fleet,
    simulate_trace,
    taxi_event_extractors,
    traces_to_indicator_stream,
)
from repro.datasets.workload import Workload

__all__ = [
    "GridCity",
    "PRIVATE_PATTERNS",
    "SyntheticConfig",
    "TARGET_PATTERNS",
    "TAXI_ALPHABET",
    "TaxiConfig",
    "Workload",
    "build_taxi_workload",
    "fleet_data_stream",
    "load_indicator_csv",
    "load_workload",
    "save_indicator_csv",
    "save_workload",
    "simulate_fleet",
    "simulate_trace",
    "synthesize_dataset",
    "synthesize_many",
    "taxi_event_extractors",
    "traces_to_indicator_stream",
]
