"""Experiment harness regenerating the paper's evaluation (Section VI).

- :mod:`repro.experiments.fig4` — both panels of Fig. 4;
- :mod:`repro.experiments.dual` — the problem statement's second
  optimization mode (minimal ε for a quality requirement);
- :mod:`repro.experiments.ablations` — sweeps over the design knobs
  (α, pattern length, overlap, Algorithm 1 step size, history volume);
- :mod:`repro.experiments.runner` — mechanism construction/calibration
  and quality measurement shared by all of the above.
"""

from repro.experiments.ablations import (
    sweep_alpha,
    sweep_conversion_mode,
    sweep_history_size,
    sweep_overlap,
    sweep_pattern_length,
    sweep_step_size,
)
from repro.experiments.config import (
    ALL_MECHANISMS,
    DEFAULT_EPSILON_GRID,
    FIG4_MECHANISMS,
    ExperimentConfig,
)
from repro.experiments.dual import (
    DualModeResult,
    compare_budget_needs,
    min_epsilon_for_quality,
)
from repro.experiments.fig4 import (
    Fig4Result,
    Fig4Series,
    run_fig4_on_workload,
    run_fig4_synthetic,
    run_fig4_taxi,
)
from repro.experiments.reporting import (
    fig4_ascii_chart,
    fig4_markdown_section,
    fig4_wide_table,
    results_to_table,
    table_to_markdown,
)
from repro.experiments.runner import (
    EvaluationResult,
    build_mechanism,
    evaluate_mechanism,
    measure_quality,
    sweep,
)

__all__ = [
    "ALL_MECHANISMS",
    "DEFAULT_EPSILON_GRID",
    "DualModeResult",
    "EvaluationResult",
    "ExperimentConfig",
    "FIG4_MECHANISMS",
    "Fig4Result",
    "Fig4Series",
    "build_mechanism",
    "compare_budget_needs",
    "evaluate_mechanism",
    "fig4_ascii_chart",
    "fig4_markdown_section",
    "fig4_wide_table",
    "measure_quality",
    "min_epsilon_for_quality",
    "results_to_table",
    "run_fig4_on_workload",
    "run_fig4_synthetic",
    "run_fig4_taxi",
    "sweep",
    "sweep_alpha",
    "sweep_conversion_mode",
    "sweep_history_size",
    "sweep_overlap",
    "sweep_pattern_length",
    "sweep_step_size",
    "table_to_markdown",
]
