"""Mechanism construction and evaluation over workloads.

This module is the bridge between the library pieces: given a
:class:`~repro.datasets.workload.Workload`, a mechanism kind and a
pattern-level budget, :func:`build_mechanism` assembles a calibrated
mechanism (converting baseline budgets per Section VI-A.2), and
:func:`evaluate_mechanism` measures the resulting data quality and
``MRE_Q`` on the evaluation stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.baselines.budget_absorption import BudgetAbsorption
from repro.baselines.budget_distribution import BudgetDistribution
from repro.baselines.conversion import BudgetConverter
from repro.baselines.event_level import EventLevelRR
from repro.baselines.landmark import LandmarkPrivacy
from repro.baselines.user_level import UserLevelRR
from repro.core.adaptive import AdaptivePatternPPM
from repro.core.ppm import MultiPatternPPM
from repro.core.uniform import UniformPatternPPM
from repro.datasets.workload import Workload
from repro.metrics.confusion import ConfusionCounts
from repro.metrics.mre import mean_relative_error
from repro.metrics.quality import DataQuality
from repro.core.quality_model import baseline_quality
from repro.utils.rng import RngLike, derive_rng
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class EvaluationResult:
    """Measured outcome of one (workload, mechanism, ε) cell."""

    workload: str
    mechanism: str
    pattern_epsilon: float
    quality: DataQuality
    mre: float
    mre_std: float
    n_trials: int


def build_mechanism(
    kind: str,
    workload: Workload,
    pattern_epsilon: float,
    *,
    alpha: float = 0.5,
    conversion_mode: str = "worst_case",
    adaptive_step_size: Optional[float] = None,
    adaptive_max_iterations: int = 200,
):
    """Build a mechanism calibrated to a target pattern-level ε.

    The pattern-level PPMs take ε natively (one independent PPM per
    private pattern, Section V-A); the baselines take the converted
    budget from :class:`~repro.baselines.conversion.BudgetConverter`
    using the workload's longest private pattern (worst case over the
    protected types).
    """
    check_positive("pattern_epsilon", pattern_epsilon)
    if kind == "uniform":
        return MultiPatternPPM(
            [
                UniformPatternPPM(pattern, pattern_epsilon)
                for pattern in workload.private_patterns
            ]
        )
    if kind == "adaptive":
        fitted = [
            AdaptivePatternPPM.fit(
                pattern,
                pattern_epsilon,
                workload.history,
                workload.target_patterns,
                alpha=alpha,
                step_size=adaptive_step_size,
                max_iterations=adaptive_max_iterations,
            )
            for pattern in workload.private_patterns
        ]
        return MultiPatternPPM(fitted)

    converter = BudgetConverter(
        workload.max_private_length, mode=conversion_mode
    )
    if kind == "bd":
        native = converter.bd_native(pattern_epsilon, workload.w)
        return BudgetDistribution(native, workload.w)
    if kind == "ba":
        native = converter.ba_native(pattern_epsilon, workload.w)
        return BudgetAbsorption(native, workload.w)
    if kind == "landmark":
        mask = workload.landmark_mask()
        n_landmarks = max(1, int(mask.sum()))
        native = converter.landmark_native(pattern_epsilon, n_landmarks)
        return LandmarkPrivacy(native, landmarks=mask)
    if kind == "event-level":
        native = converter.event_level_native(pattern_epsilon)
        return EventLevelRR(native)
    if kind == "user-level":
        native = converter.user_level_native(
            pattern_epsilon,
            workload.stream.n_windows,
            len(workload.stream.alphabet),
        )
        return UserLevelRR(native)
    raise ValueError(f"unknown mechanism kind {kind!r}")


def measure_quality(
    workload: Workload,
    mechanism,
    *,
    alpha: float = 0.5,
    n_trials: int = 5,
    rng: RngLike = None,
) -> List[DataQuality]:
    """Per-trial measured quality of a mechanism on the workload.

    Each trial perturbs the evaluation stream once and evaluates every
    target query against the ground truth, summing confusion counts
    across targets (micro-average).
    """
    check_positive_int("n_trials", n_trials)
    truths = {
        pattern.name: workload.stream.detect_all(list(pattern.elements))
        for pattern in workload.target_patterns
    }
    qualities: List[DataQuality] = []
    for trial in range(n_trials):
        child = derive_rng(rng, "trial", trial)
        perturbed = mechanism.perturb(workload.stream, rng=child)
        counts = ConfusionCounts()
        for pattern in workload.target_patterns:
            predicted = perturbed.detect_all(list(pattern.elements))
            counts = counts + ConfusionCounts.from_vectors(
                truths[pattern.name], predicted
            )
        qualities.append(DataQuality.from_confusion(counts, alpha=alpha))
    return qualities


def evaluate_mechanism(
    workload: Workload,
    kind: str,
    pattern_epsilon: float,
    *,
    alpha: float = 0.5,
    n_trials: int = 5,
    conversion_mode: str = "worst_case",
    rng: RngLike = None,
) -> EvaluationResult:
    """Build, run and score one mechanism at one pattern-level budget."""
    mechanism = build_mechanism(
        kind,
        workload,
        pattern_epsilon,
        alpha=alpha,
        conversion_mode=conversion_mode,
    )
    qualities = measure_quality(
        workload,
        mechanism,
        alpha=alpha,
        n_trials=n_trials,
        rng=derive_rng(rng, kind, int(pattern_epsilon * 1000)),
    )
    q_ordinary = baseline_quality(
        workload.stream, workload.target_patterns, alpha=alpha
    ).q
    mres = [
        mean_relative_error(q_ordinary, quality.q) for quality in qualities
    ]
    mean_precision = float(np.mean([q.precision for q in qualities]))
    mean_recall = float(np.mean([q.recall for q in qualities]))
    return EvaluationResult(
        workload=workload.name,
        mechanism=kind,
        pattern_epsilon=pattern_epsilon,
        quality=DataQuality(mean_precision, mean_recall, alpha),
        mre=float(np.mean(mres)),
        mre_std=float(np.std(mres)),
        n_trials=n_trials,
    )


def sweep(
    workload: Workload,
    *,
    epsilon_grid,
    mechanisms,
    alpha: float = 0.5,
    n_trials: int = 5,
    conversion_mode: str = "worst_case",
    rng: RngLike = None,
) -> List[EvaluationResult]:
    """Evaluate every (mechanism, ε) cell on one workload."""
    results: List[EvaluationResult] = []
    for kind in mechanisms:
        for epsilon in epsilon_grid:
            results.append(
                evaluate_mechanism(
                    workload,
                    kind,
                    epsilon,
                    alpha=alpha,
                    n_trials=n_trials,
                    conversion_mode=conversion_mode,
                    rng=derive_rng(rng, "sweep", kind, int(epsilon * 1000)),
                )
            )
    return results
