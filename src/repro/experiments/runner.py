"""Mechanism construction and evaluation over workloads.

This module is the bridge between the library pieces: given a
:class:`~repro.datasets.workload.Workload`, a mechanism kind and a
pattern-level budget, :func:`build_mechanism` assembles a calibrated
mechanism (converting baseline budgets per Section VI-A.2), and
:func:`evaluate_mechanism` measures the resulting data quality and
``MRE_Q`` on the evaluation stream.

Evaluation runs on the streaming runtime: a
:class:`WorkloadEvaluation` builds the workload's pipeline *once* —
query matcher, ground-truth detections, ordinary quality, landmark
masks, budget converters and Algorithm 1 quality estimators — and every
(mechanism, ε) cell reuses it.  :meth:`WorkloadEvaluation.sweep` shares
one such context across its whole grid, which is what makes the Fig. 4
regeneration cheap, and can fan the grid out over a thread or process
pool (``workers=``): every cell's child generator is derived *before*
dispatch, in grid order, so the parallel results are bit-identical to
the serial sweep whatever the completion order.  The module-level
helpers remain as thin wrappers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.conversion import BudgetConverter
from repro.cep.queries import ContinuousQuery
from repro.core.quality_model import AnalyticQualityEstimator
from repro.datasets.workload import Workload
from repro.metrics.mre import mean_relative_error
from repro.metrics.quality import DataQuality
from repro.runtime.executors import BatchExecutor
from repro.runtime.pipeline import StreamPipeline
from repro.utils.deprecation import warn_imperative
from repro.utils.rng import RngLike, derive_rng
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class EvaluationResult:
    """Measured outcome of one (workload, mechanism, ε) cell."""

    workload: str
    mechanism: str
    pattern_epsilon: float
    quality: DataQuality
    mre: float
    mre_std: float
    n_trials: int


class WorkloadEvaluation:
    """Shared evaluation state for one workload.

    Builds the runtime pipeline for the workload's target queries once
    and caches everything mechanism-independent: ground-truth
    detections, the ordinary quality ``Q_ord`` per α, the landmark
    mask, budget converters, and the analytic quality estimators
    Algorithm 1 fits against.  Cells differing only in mechanism kind
    or ε then share all of it.
    """

    def __init__(self, workload: Workload):
        self.workload = workload
        self.pipeline = StreamPipeline(
            workload.stream.alphabet,
            queries=[
                ContinuousQuery(pattern.name, pattern)
                for pattern in workload.target_patterns
            ],
        )
        self._executor = BatchExecutor()
        self._truths: Optional[Dict[str, np.ndarray]] = None
        self._q_ordinary: Dict[float, float] = {}
        self._landmark_mask: Optional[np.ndarray] = None
        self._converters: Dict[str, BudgetConverter] = {}
        self._estimators: Dict[tuple, AnalyticQualityEstimator] = {}

    # -- cached, mechanism-independent state ---------------------------

    @property
    def truths(self) -> Dict[str, np.ndarray]:
        """Ground-truth per-target detections on the evaluation stream."""
        if self._truths is None:
            self._truths = self.pipeline.matcher.answer(
                self.workload.stream.matrix_view()
            )
        return self._truths

    def q_ordinary(self, alpha: float) -> float:
        """The ordinary quality ``Q_ord`` (Eq. (4) numerator) under α."""
        if alpha not in self._q_ordinary:
            from repro.core.quality_model import baseline_quality

            self._q_ordinary[alpha] = baseline_quality(
                self.workload.stream,
                self.workload.target_patterns,
                alpha=alpha,
            ).q
        return self._q_ordinary[alpha]

    def landmark_mask(self) -> np.ndarray:
        if self._landmark_mask is None:
            self._landmark_mask = self.workload.landmark_mask()
        return self._landmark_mask

    def converter(self, mode: str) -> BudgetConverter:
        if mode not in self._converters:
            self._converters[mode] = BudgetConverter(
                self.workload.max_private_length, mode=mode
            )
        return self._converters[mode]

    def _estimator_factory(self, history, pattern, targets, *, alpha=0.5):
        """Cache Algorithm 1's analytic estimator per (pattern, α).

        The estimator depends only on the history stream, the private
        pattern and the targets — all fixed per workload — so ε sweeps
        reuse one instance instead of re-extracting columns per cell.
        """
        key = (pattern.name, alpha)
        if key not in self._estimators:
            self._estimators[key] = AnalyticQualityEstimator(
                history, pattern, targets, alpha=alpha
            )
        return self._estimators[key]

    # -- mechanism construction ----------------------------------------

    def build_mechanism(
        self,
        kind: str,
        pattern_epsilon: float,
        *,
        alpha: float = 0.5,
        conversion_mode: str = "worst_case",
        adaptive_step_size: Optional[float] = None,
        adaptive_max_iterations: int = 200,
    ):
        """Build a mechanism calibrated to a target pattern-level ε.

        Dispatches through the service layer's mechanism registry
        (:mod:`repro.service.registry`), so ``kind`` is any registered
        mechanism spec — the built-ins (``"uniform-ppm"``/``"uniform"``,
        ``"adaptive-ppm"``/``"adaptive"``, ``"bd"``, ``"ba"``,
        ``"landmark"``, ``"event-rr"``/``"event-level"``,
        ``"user-rr"``/``"user-level"``) or a plugin's.  The
        pattern-level PPMs take ε natively (one independent PPM per
        private pattern, Section V-A); the baseline factories convert
        the pattern-level budget per Section VI-A.2 using this
        workload's longest private pattern (worst case over the
        protected types) via the shared converter cache.
        """
        from repro.service.registry import (
            MechanismContext,
            build_mechanism_from_spec,
            mechanism_factory_accepts,
        )

        check_positive("pattern_epsilon", pattern_epsilon)
        workload = self.workload
        context = MechanismContext(
            alphabet=workload.stream.alphabet,
            private_patterns=tuple(workload.private_patterns),
            target_patterns=tuple(workload.target_patterns),
            alpha=alpha,
            extras={
                "history": workload.history,
                "w": workload.w,
                "landmark_mask": self.landmark_mask,
                "n_windows": workload.stream.n_windows,
                "converter_factory": self.converter,
                "estimator_factory": self._estimator_factory,
            },
        )
        # Factories that understand pattern-level budgets convert them
        # themselves; a plugin taking only its native epsilon gets the
        # grid value uninterpreted (no conversion the runner could do
        # on its behalf).
        if mechanism_factory_accepts(kind, "pattern_epsilon"):
            options = {"pattern_epsilon": pattern_epsilon}
        elif mechanism_factory_accepts(kind, "epsilon"):
            options = {"epsilon": pattern_epsilon}
        else:
            raise TypeError(
                f"mechanism spec {kind!r} takes neither pattern_epsilon "
                "nor epsilon; its factory cannot participate in a "
                "budget sweep"
            )
        # Tuning knobs only some factories declare; thread them through
        # where supported so unknown *user* options stay hard errors.
        tuning = {
            "conversion_mode": conversion_mode,
            "step_size": adaptive_step_size,
            "max_iterations": adaptive_max_iterations,
        }
        for name, value in tuning.items():
            if mechanism_factory_accepts(kind, name):
                options[name] = value
        return build_mechanism_from_spec(kind, context, **options)

    # -- measurement ---------------------------------------------------

    def measure(
        self,
        mechanism,
        *,
        alpha: float = 0.5,
        n_trials: int = 5,
        rng: RngLike = None,
        executor=None,
    ) -> List[DataQuality]:
        """Per-trial measured quality of a mechanism on the workload.

        Each trial perturbs the evaluation stream once through the
        runtime pipeline and evaluates every target query against the
        ground truth, summing confusion counts across targets
        (micro-average).
        """
        check_positive_int("n_trials", n_trials)
        executor = executor or self._executor
        pipeline = self.pipeline.with_mechanism(mechanism)
        qualities: List[DataQuality] = []
        for trial in range(n_trials):
            child = derive_rng(rng, "trial", trial)
            result = executor.run(pipeline, self.workload.stream, rng=child)
            qualities.append(result.quality(alpha))
        return qualities

    def evaluate(
        self,
        kind: str,
        pattern_epsilon: float,
        *,
        alpha: float = 0.5,
        n_trials: int = 5,
        conversion_mode: str = "worst_case",
        rng: RngLike = None,
        executor=None,
    ) -> EvaluationResult:
        """Build, run and score one mechanism at one budget."""
        mechanism = self.build_mechanism(
            kind,
            pattern_epsilon,
            alpha=alpha,
            conversion_mode=conversion_mode,
        )
        qualities = self.measure(
            mechanism,
            alpha=alpha,
            n_trials=n_trials,
            rng=derive_rng(rng, kind, int(pattern_epsilon * 1000)),
            executor=executor,
        )
        q_ordinary = self.q_ordinary(alpha)
        mres = [
            mean_relative_error(q_ordinary, quality.q)
            for quality in qualities
        ]
        mean_precision = float(np.mean([q.precision for q in qualities]))
        mean_recall = float(np.mean([q.recall for q in qualities]))
        return EvaluationResult(
            workload=self.workload.name,
            mechanism=kind,
            pattern_epsilon=pattern_epsilon,
            quality=DataQuality(mean_precision, mean_recall, alpha),
            mre=float(np.mean(mres)),
            mre_std=float(np.std(mres)),
            n_trials=n_trials,
        )

    def sweep(
        self,
        *,
        epsilon_grid,
        mechanisms,
        alpha: float = 0.5,
        n_trials: int = 5,
        conversion_mode: str = "worst_case",
        rng: RngLike = None,
        workers: Optional[int] = None,
        backend: str = "thread",
        executor=None,
    ) -> List[EvaluationResult]:
        """Evaluate every (mechanism, ε) cell, optionally in parallel.

        ``workers=None`` (or ``1``) keeps the historical serial loop.
        With ``workers > 1`` the grid fans out over a ``"thread"`` or
        ``"process"`` pool.  Each cell's child generator is derived up
        front, in grid order — the same draws the serial loop makes —
        and results are collected back in grid order, so the parallel
        sweep is bit-identical to the serial one.  The thread backend
        shares this context's caches; the process backend rebuilds the
        context once per worker from the pickled workload.

        ``executor`` selects the runtime strategy each cell's trials
        run under (vectorized batch by default).  Passing a
        :class:`~repro.runtime.executors.ShardedExecutor` parallelizes
        *within* each trial as well — including the w-event schedulers
        (BD/BA) and the landmark mechanism, which shard through the
        checkpoint prepass — without changing a single released bit
        (sharded execution is bit-identical to batch under the same
        seed).
        """
        from repro.runtime.sharding import make_pool, validate_backend

        validate_backend(backend)
        cells: List[Tuple[str, float]] = [
            (kind, float(epsilon))
            for kind in mechanisms
            for epsilon in epsilon_grid
        ]
        cell_rngs = [
            derive_rng(rng, "sweep", kind, int(epsilon * 1000))
            for kind, epsilon in cells
        ]
        if workers is None or workers <= 1 or len(cells) <= 1:
            return [
                self.evaluate(
                    kind,
                    epsilon,
                    alpha=alpha,
                    n_trials=n_trials,
                    conversion_mode=conversion_mode,
                    rng=cell_rng,
                    executor=executor,
                )
                for (kind, epsilon), cell_rng in zip(cells, cell_rngs)
            ]
        if backend == "thread":
            # Threads share this context (and its caches) directly.
            pool = make_pool("thread", workers)

            def submit(kind, epsilon, cell_rng):
                return pool.submit(
                    self.evaluate,
                    kind,
                    epsilon,
                    alpha=alpha,
                    n_trials=n_trials,
                    conversion_mode=conversion_mode,
                    rng=cell_rng,
                    executor=executor,
                )

        else:
            # Workers rebuild the context once each from the workload.
            pool = make_pool(
                "process",
                workers,
                initializer=_sweep_worker_init,
                initargs=(self.workload,),
            )

            def submit(kind, epsilon, cell_rng):
                return pool.submit(
                    _sweep_worker,
                    kind,
                    epsilon,
                    alpha,
                    n_trials,
                    conversion_mode,
                    cell_rng,
                    executor,
                )

        try:
            futures = [
                submit(kind, epsilon, cell_rng)
                for (kind, epsilon), cell_rng in zip(cells, cell_rngs)
            ]
            return [future.result() for future in futures]
        finally:
            pool.shutdown(wait=True)


#: Per-process evaluation context of the process-backend sweep.  Built
#: once per worker by the pool initializer — rebuilding the caches per
#: worker beats pickling the whole context per cell.
_WORKER_CONTEXT: Optional[WorkloadEvaluation] = None


def _sweep_worker_init(workload: Workload) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = WorkloadEvaluation(workload)


def _sweep_worker(
    kind: str,
    epsilon: float,
    alpha: float,
    n_trials: int,
    conversion_mode: str,
    rng: RngLike,
    executor=None,
) -> EvaluationResult:
    return _WORKER_CONTEXT.evaluate(
        kind,
        epsilon,
        alpha=alpha,
        n_trials=n_trials,
        conversion_mode=conversion_mode,
        rng=rng,
        executor=executor,
    )


def build_mechanism(
    kind: str,
    workload: Workload,
    pattern_epsilon: float,
    *,
    alpha: float = 0.5,
    conversion_mode: str = "worst_case",
    adaptive_step_size: Optional[float] = None,
    adaptive_max_iterations: int = 200,
):
    """Build a mechanism calibrated to a target pattern-level ε.

    Single-cell wrapper over :meth:`WorkloadEvaluation.build_mechanism`;
    when evaluating many cells on one workload, build the context once
    and reuse it.

    .. deprecated:: build mechanisms through the registry
       (:func:`repro.service.build_mechanism_from_spec`) or declare
       them on a :class:`~repro.service.ServiceSpec`.
    """
    warn_imperative(
        "repro.experiments.build_mechanism()",
        "build mechanisms through the service registry "
        "(repro.service.build_mechanism_from_spec) or declare them on "
        "a ServiceSpec",
    )
    return WorkloadEvaluation(workload).build_mechanism(
        kind,
        pattern_epsilon,
        alpha=alpha,
        conversion_mode=conversion_mode,
        adaptive_step_size=adaptive_step_size,
        adaptive_max_iterations=adaptive_max_iterations,
    )


def measure_quality(
    workload: Workload,
    mechanism,
    *,
    alpha: float = 0.5,
    n_trials: int = 5,
    rng: RngLike = None,
) -> List[DataQuality]:
    """Per-trial measured quality of a mechanism on the workload."""
    return WorkloadEvaluation(workload).measure(
        mechanism, alpha=alpha, n_trials=n_trials, rng=rng
    )


def evaluate_mechanism(
    workload: Workload,
    kind: str,
    pattern_epsilon: float,
    *,
    alpha: float = 0.5,
    n_trials: int = 5,
    conversion_mode: str = "worst_case",
    rng: RngLike = None,
    context: Optional[WorkloadEvaluation] = None,
) -> EvaluationResult:
    """Build, run and score one mechanism at one pattern-level budget.

    Pass ``context`` (a :class:`WorkloadEvaluation` of the same
    workload) to share cached pipeline state across calls.
    """
    if context is None:
        context = WorkloadEvaluation(workload)
    return context.evaluate(
        kind,
        pattern_epsilon,
        alpha=alpha,
        n_trials=n_trials,
        conversion_mode=conversion_mode,
        rng=rng,
    )


def sweep(
    workload: Workload,
    *,
    epsilon_grid,
    mechanisms,
    alpha: float = 0.5,
    n_trials: int = 5,
    conversion_mode: str = "worst_case",
    rng: RngLike = None,
    workers: Optional[int] = None,
    backend: str = "thread",
    executor=None,
) -> List[EvaluationResult]:
    """Evaluate every (mechanism, ε) cell on one workload.

    One :class:`WorkloadEvaluation` is shared by the whole grid, so
    windowing, extraction, ground truth and estimator state are
    computed once rather than per cell.  ``workers``/``backend`` fan
    the grid out over a pool and ``executor`` selects the per-trial
    runtime strategy (see :meth:`WorkloadEvaluation.sweep`); parallel
    results are bit-identical to the serial sweep.
    """
    return WorkloadEvaluation(workload).sweep(
        epsilon_grid=epsilon_grid,
        mechanisms=mechanisms,
        alpha=alpha,
        n_trials=n_trials,
        conversion_mode=conversion_mode,
        rng=rng,
        workers=workers,
        backend=backend,
        executor=executor,
    )
