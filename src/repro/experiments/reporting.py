"""Rendering experiment results for the console and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.fig4 import Fig4Result
from repro.experiments.runner import EvaluationResult
from repro.utils.ascii_plot import line_chart
from repro.utils.tables import ResultTable


def results_to_table(
    results: Sequence[EvaluationResult], *, title: str = "results"
) -> ResultTable:
    """Flatten evaluation results into a printable table."""
    table = ResultTable(
        [
            "workload",
            "mechanism",
            "epsilon",
            "mre",
            "mre_std",
            "precision",
            "recall",
            "q",
        ],
        title=title,
    )
    for result in results:
        table.add_row(
            workload=result.workload,
            mechanism=result.mechanism,
            epsilon=result.pattern_epsilon,
            mre=result.mre,
            mre_std=result.mre_std,
            precision=result.quality.precision,
            recall=result.quality.recall,
            q=result.quality.q,
        )
    return table


def fig4_wide_table(result: Fig4Result) -> ResultTable:
    """Fig. 4 panel as one row per ε with one MRE column per mechanism —
    the layout of the paper's plotted series."""
    mechanisms = sorted(result.series)
    table = ResultTable(
        ["epsilon"] + [f"mre_{m}" for m in mechanisms],
        title=f"Fig. 4 ({result.dataset}) — MRE per mechanism",
    )
    epsilons = sorted(
        {e for series in result.series.values() for e in series.epsilons}
    )
    for epsilon in epsilons:
        row: Dict[str, float] = {"epsilon": epsilon}
        for mechanism in mechanisms:
            try:
                row[f"mre_{mechanism}"] = result.series[mechanism].mre_at(
                    epsilon
                )
            except KeyError:
                row[f"mre_{mechanism}"] = None
        table.add_row(**row)
    return table


def fig4_ascii_chart(result: Fig4Result, *, width: int = 64, height: int = 18) -> str:
    """The Fig. 4 panel as an ASCII line chart (MRE vs ε per mechanism)."""
    series = {
        name: list(zip(entry.epsilons, entry.mres))
        for name, entry in sorted(result.series.items())
    }
    return line_chart(
        series,
        width=width,
        height=height,
        title=f"Fig. 4 ({result.dataset}): MRE vs pattern-level epsilon",
        x_label="epsilon",
        y_label="MRE",
    )


def table_to_markdown(table: ResultTable, *, float_format: str = "{:.4f}") -> str:
    """Render a :class:`ResultTable` as a GitHub-flavoured markdown table."""

    def fmt(value) -> str:
        if value is None:
            return ""
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    lines: List[str] = []
    lines.append("| " + " | ".join(table.columns) + " |")
    lines.append("|" + "|".join("---" for _ in table.columns) + "|")
    for row in table:
        lines.append(
            "| " + " | ".join(fmt(row[col]) for col in table.columns) + " |"
        )
    return "\n".join(lines)


def fig4_markdown_section(result: Fig4Result) -> str:
    """A ready-to-paste EXPERIMENTS.md section for one Fig. 4 panel."""
    wide = fig4_wide_table(result)
    violations = result.check_expected_shape()
    lines = [
        f"### Fig. 4 — {result.dataset} panel",
        "",
        table_to_markdown(wide),
        "",
    ]
    if violations:
        lines.append("Shape violations:")
        lines.extend(f"- {violation}" for violation in violations)
    else:
        lines.append(
            "Shape check: pattern-level PPMs beat all baselines at every ε; "
            "adaptive ≤ uniform; MRE monotone non-increasing in ε."
        )
    return "\n".join(lines)
