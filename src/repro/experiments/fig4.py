"""Reproduction of Fig. 4: MRE versus privacy budget ε.

The paper's single evaluation figure plots the MRE of the quality
metric against the pattern-level budget for five mechanisms (uniform,
adaptive, BD, BA, landmark) on two datasets (Taxi, synthetic).  The
functions here regenerate both panels as result tables and check the
expected *shape* (who wins, monotonicity, where the gaps are) rather
than chasing the authors' absolute numbers — our substrate is a
simulator, not their testbed (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.datasets.synthetic import SyntheticConfig, synthesize_dataset
from repro.datasets.taxi import TaxiConfig, build_taxi_workload
from repro.datasets.workload import Workload
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import EvaluationResult, sweep
from repro.metrics.aggregate import summarize
from repro.utils.rng import derive_rng
from repro.utils.tables import ResultTable

_SHAPE_TOLERANCE = 0.02  # two MRE points of slack for sampling noise


@dataclass
class Fig4Series:
    """One mechanism's MRE curve."""

    mechanism: str
    epsilons: List[float]
    mres: List[float]
    mre_stds: List[float] = field(default_factory=list)

    def mre_at(self, epsilon: float) -> float:
        try:
            index = self.epsilons.index(epsilon)
        except ValueError:
            raise KeyError(
                f"ε={epsilon} not in the sweep grid {self.epsilons}"
            ) from None
        return self.mres[index]


@dataclass
class Fig4Result:
    """One regenerated Fig. 4 panel."""

    dataset: str
    table: ResultTable
    series: Dict[str, Fig4Series]

    def check_expected_shape(
        self, *, tolerance: float = _SHAPE_TOLERANCE
    ) -> List[str]:
        """Check the qualitative claims of Section VI-B.

        Returns a list of human-readable violations (empty = the shape
        holds):

        1. the pattern-level PPMs beat every non-pattern-level baseline
           at every ε;
        2. adaptive is at least as good as uniform;
        3. the pattern-level PPMs' MRE does not increase with ε.
        """
        violations: List[str] = []
        pattern_level = [m for m in ("uniform", "adaptive") if m in self.series]
        baselines = [
            m for m in ("bd", "ba", "landmark") if m in self.series
        ]
        for mechanism in pattern_level:
            ours = self.series[mechanism]
            for baseline in baselines:
                theirs = self.series[baseline]
                for epsilon in ours.epsilons:
                    if ours.mre_at(epsilon) > theirs.mre_at(epsilon) + tolerance:
                        violations.append(
                            f"{self.dataset}: {mechanism} MRE "
                            f"{ours.mre_at(epsilon):.4f} exceeds {baseline} "
                            f"{theirs.mre_at(epsilon):.4f} at ε={epsilon}"
                        )
        if "uniform" in self.series and "adaptive" in self.series:
            uniform = self.series["uniform"]
            adaptive = self.series["adaptive"]
            for epsilon in uniform.epsilons:
                if adaptive.mre_at(epsilon) > uniform.mre_at(epsilon) + tolerance:
                    violations.append(
                        f"{self.dataset}: adaptive MRE "
                        f"{adaptive.mre_at(epsilon):.4f} exceeds uniform "
                        f"{uniform.mre_at(epsilon):.4f} at ε={epsilon}"
                    )
        for mechanism in pattern_level:
            curve = self.series[mechanism]
            for previous, current in zip(curve.mres, curve.mres[1:]):
                if current > previous + tolerance:
                    violations.append(
                        f"{self.dataset}: {mechanism} MRE increases along ε "
                        f"({previous:.4f} -> {current:.4f})"
                    )
        return violations

    def pattern_level_advantage(self, epsilon: float) -> float:
        """Best baseline MRE minus best pattern-level MRE at ε.

        Positive values mean the pattern-level PPMs win; Section VI-B
        expects this gap to be larger on the synthetic panel than on
        Taxi.
        """
        ours = min(
            self.series[m].mre_at(epsilon)
            for m in ("uniform", "adaptive")
            if m in self.series
        )
        theirs = min(
            self.series[m].mre_at(epsilon)
            for m in ("bd", "ba", "landmark")
            if m in self.series
        )
        return theirs - ours


def _results_to_fig4(
    dataset: str,
    results: Sequence[EvaluationResult],
    epsilon_grid: Sequence[float],
) -> Fig4Result:
    table = ResultTable(
        [
            "dataset",
            "mechanism",
            "epsilon",
            "mre",
            "mre_std",
            "precision",
            "recall",
            "q",
        ],
        title=f"Fig. 4 ({dataset}): MRE vs pattern-level epsilon",
    )
    series: Dict[str, Fig4Series] = {}
    for result in results:
        table.add_row(
            dataset=dataset,
            mechanism=result.mechanism,
            epsilon=result.pattern_epsilon,
            mre=result.mre,
            mre_std=result.mre_std,
            precision=result.quality.precision,
            recall=result.quality.recall,
            q=result.quality.q,
        )
        entry = series.setdefault(
            result.mechanism,
            Fig4Series(result.mechanism, [], [], []),
        )
        entry.epsilons.append(result.pattern_epsilon)
        entry.mres.append(result.mre)
        entry.mre_stds.append(result.mre_std)
    # Keep every curve sorted by ε.
    for entry in series.values():
        order = np.argsort(entry.epsilons)
        entry.epsilons = [entry.epsilons[i] for i in order]
        entry.mres = [entry.mres[i] for i in order]
        entry.mre_stds = [entry.mre_stds[i] for i in order]
    return Fig4Result(dataset=dataset, table=table, series=series)


def run_fig4_on_workload(
    workload: Workload,
    config: ExperimentConfig = ExperimentConfig(),
) -> Fig4Result:
    """Run the Fig. 4 sweep on an arbitrary prepared workload."""
    results = sweep(
        workload,
        epsilon_grid=config.epsilon_grid,
        mechanisms=config.mechanisms,
        alpha=config.alpha,
        n_trials=config.n_trials,
        conversion_mode=config.conversion_mode,
        rng=config.seed,
    )
    return _results_to_fig4(workload.name, results, config.epsilon_grid)


def run_fig4_taxi(
    config: ExperimentConfig = ExperimentConfig(),
    taxi_config: TaxiConfig = TaxiConfig(),
) -> Fig4Result:
    """Regenerate the Taxi panel of Fig. 4."""
    workload = build_taxi_workload(
        taxi_config, rng=derive_rng(config.seed, "taxi-workload")
    )
    return run_fig4_on_workload(workload, config)


def run_fig4_synthetic(
    config: ExperimentConfig = ExperimentConfig(),
    synthetic_config: SyntheticConfig = SyntheticConfig(),
    *,
    n_datasets: int = 10,
) -> Fig4Result:
    """Regenerate the synthetic panel of Fig. 4.

    The paper synthesizes 1000 independent Algorithm 2 datasets and
    reports the aggregate; ``n_datasets`` controls how many this run
    averages over (the bench default keeps the runtime laptop-friendly;
    pass 1000 for the paper's scale).
    """
    if n_datasets <= 0:
        raise ValueError(f"n_datasets must be positive, got {n_datasets}")
    per_cell: Dict[tuple, List[float]] = {}
    quality_cells: Dict[tuple, List[EvaluationResult]] = {}
    for index in range(n_datasets):
        workload = synthesize_dataset(
            synthetic_config,
            rng=derive_rng(config.seed, "synthetic-workload", index),
            name="synthetic",
        )
        results = sweep(
            workload,
            epsilon_grid=config.epsilon_grid,
            mechanisms=config.mechanisms,
            alpha=config.alpha,
            n_trials=config.n_trials,
            conversion_mode=config.conversion_mode,
            rng=derive_rng(config.seed, "synthetic-run", index),
        )
        for result in results:
            key = (result.mechanism, result.pattern_epsilon)
            per_cell.setdefault(key, []).append(result.mre)
            quality_cells.setdefault(key, []).append(result)
    aggregated: List[EvaluationResult] = []
    for (mechanism, epsilon), mres in per_cell.items():
        stats = summarize(mres)
        cells = quality_cells[(mechanism, epsilon)]
        precision = float(np.mean([c.quality.precision for c in cells]))
        recall = float(np.mean([c.quality.recall for c in cells]))
        aggregated.append(
            EvaluationResult(
                workload="synthetic",
                mechanism=mechanism,
                pattern_epsilon=epsilon,
                quality=cells[0].quality.__class__(
                    precision, recall, config.alpha
                ),
                mre=stats.mean,
                mre_std=stats.std,
                n_trials=sum(c.n_trials for c in cells),
            )
        )
    return _results_to_fig4("synthetic", aggregated, config.epsilon_grid)
