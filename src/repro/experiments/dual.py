"""The problem statement's dual optimization mode (Section III-B).

The PPMs can "(1) maximize data quality when given a fixed privacy
budget, (2) or maximize privacy protection when given data quality
requirements".  Mode (1) is the ε sweep of Fig. 4; this module solves
mode (2): find the *smallest* pattern-level ε whose measured MRE stays
within the consumer's requirement, by bisection over the (empirically
monotone) MRE-versus-ε curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.datasets.workload import Workload
from repro.experiments.runner import WorkloadEvaluation
from repro.utils.rng import RngLike, derive_rng
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class DualModeResult:
    """Outcome of a minimal-budget search."""

    workload: str
    mechanism: str
    max_mre: float
    epsilon: Optional[float]
    achieved_mre: Optional[float]
    evaluations: int
    feasible: bool


def min_epsilon_for_quality(
    workload: Workload,
    mechanism: str,
    max_mre: float,
    *,
    alpha: float = 0.5,
    epsilon_low: float = 0.05,
    epsilon_high: float = 20.0,
    precision: float = 0.05,
    n_trials: int = 5,
    conversion_mode: str = "worst_case",
    rng: RngLike = None,
) -> DualModeResult:
    """Bisection search for the smallest ε meeting an MRE requirement.

    ``max_mre`` is the data consumer's quality requirement expressed as
    the acceptable quality loss.  When even ``epsilon_high`` cannot meet
    the requirement the search reports infeasible (the consumer must
    relax the requirement or the subject the protection).
    """
    check_non_negative("max_mre", max_mre)
    check_positive("epsilon_low", epsilon_low)
    check_positive("epsilon_high", epsilon_high)
    check_positive("precision", precision)
    if epsilon_high <= epsilon_low:
        raise ValueError(
            f"epsilon_high ({epsilon_high}) must exceed epsilon_low "
            f"({epsilon_low})"
        )

    evaluations = 0
    context = WorkloadEvaluation(workload)

    def mre_at(epsilon: float) -> float:
        nonlocal evaluations
        evaluations += 1
        result = context.evaluate(
            mechanism,
            epsilon,
            alpha=alpha,
            n_trials=n_trials,
            conversion_mode=conversion_mode,
            rng=derive_rng(rng, "dual", evaluations),
        )
        return result.mre

    high_mre = mre_at(epsilon_high)
    if high_mre > max_mre:
        return DualModeResult(
            workload=workload.name,
            mechanism=mechanism,
            max_mre=max_mre,
            epsilon=None,
            achieved_mre=high_mre,
            evaluations=evaluations,
            feasible=False,
        )
    low_mre = mre_at(epsilon_low)
    if low_mre <= max_mre:
        return DualModeResult(
            workload=workload.name,
            mechanism=mechanism,
            max_mre=max_mre,
            epsilon=epsilon_low,
            achieved_mre=low_mre,
            evaluations=evaluations,
            feasible=True,
        )
    low, high = epsilon_low, epsilon_high
    achieved = high_mre
    while high - low > precision:
        middle = (low + high) / 2.0
        middle_mre = mre_at(middle)
        if middle_mre <= max_mre:
            high = middle
            achieved = middle_mre
        else:
            low = middle
    return DualModeResult(
        workload=workload.name,
        mechanism=mechanism,
        max_mre=max_mre,
        epsilon=high,
        achieved_mre=achieved,
        evaluations=evaluations,
        feasible=True,
    )


def compare_budget_needs(
    workload: Workload,
    mechanisms: List[str],
    max_mre: float,
    **kwargs,
) -> List[DualModeResult]:
    """Minimal ε per mechanism for the same quality requirement.

    Pattern-level PPMs should need *less* budget than the baselines to
    deliver the same quality — the dual reading of Fig. 4.
    """
    return [
        min_epsilon_for_quality(workload, mechanism, max_mre, **kwargs)
        for mechanism in mechanisms
    ]
