"""Ablation studies of the design choices DESIGN.md calls out.

Each ablation returns a :class:`~repro.utils.tables.ResultTable` so the
benchmarks can print the same rows every time:

- :func:`sweep_alpha` — sensitivity of the advantage to Eq. (3)'s
  precision weight (the paper fixes α = 0.5);
- :func:`sweep_pattern_length` — the pattern-level advantage as a
  function of private pattern length ``m`` (Theorem 1 splits ε over
  ``m`` elements; Taxi ≈ short patterns, synthetic = length 3);
- :func:`sweep_overlap` — the private/target region overlap that makes
  the evaluation meaningful (Section VI-A.1);
- :func:`sweep_step_size` — Algorithm 1's δε suggestion (line 2);
- :func:`sweep_history_size` — how much historical data Algorithm 1
  needs (Section V-B).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.core.adaptive import AdaptivePatternPPM, default_step_size
from repro.datasets.synthetic import SyntheticConfig, synthesize_dataset
from repro.datasets.taxi import TaxiConfig, build_taxi_workload
from repro.datasets.workload import Workload
from repro.experiments.runner import WorkloadEvaluation
from repro.utils.rng import RngLike, derive_rng
from repro.utils.tables import ResultTable


def sweep_alpha(
    workload: Workload,
    epsilon: float,
    alphas: Sequence[float],
    *,
    mechanisms: Sequence[str] = ("uniform", "adaptive"),
    n_trials: int = 5,
    rng: RngLike = None,
) -> ResultTable:
    """MRE per mechanism as the quality metric's α varies."""
    table = ResultTable(
        ["alpha", "mechanism", "epsilon", "mre", "precision", "recall"],
        title=f"ablation: alpha sweep on {workload.name} (epsilon={epsilon:g})",
    )
    context = WorkloadEvaluation(workload)
    for alpha in alphas:
        for kind in mechanisms:
            result = context.evaluate(
                kind,
                epsilon,
                alpha=alpha,
                n_trials=n_trials,
                rng=derive_rng(rng, "alpha", kind, int(alpha * 1000)),
            )
            table.add_row(
                alpha=alpha,
                mechanism=kind,
                epsilon=epsilon,
                mre=result.mre,
                precision=result.quality.precision,
                recall=result.quality.recall,
            )
    return table


def sweep_pattern_length(
    lengths: Sequence[int],
    epsilon: float,
    *,
    base_config: SyntheticConfig = SyntheticConfig(
        n_windows=400, n_history_windows=300
    ),
    mechanisms: Sequence[str] = ("uniform", "adaptive", "bd"),
    n_trials: int = 3,
    n_datasets: int = 3,
    rng: RngLike = None,
) -> ResultTable:
    """MRE versus private pattern length ``m`` on synthetic data.

    Each length is averaged over ``n_datasets`` independently drawn
    Algorithm 2 datasets: a single draw can place the private patterns
    disjoint from every target, making the pattern-level cost zero by
    luck rather than by structure.
    """
    if n_datasets <= 0:
        raise ValueError(f"n_datasets must be positive, got {n_datasets}")
    table = ResultTable(
        ["pattern_length", "mechanism", "epsilon", "mre"],
        title=f"ablation: pattern length sweep (epsilon={epsilon:g})",
    )
    for length in lengths:
        config = replace(base_config, pattern_length=length)
        per_mechanism = {kind: [] for kind in mechanisms}
        for index in range(n_datasets):
            workload = synthesize_dataset(
                config, rng=derive_rng(rng, "length-data", length, index)
            )
            context = WorkloadEvaluation(workload)
            for kind in mechanisms:
                result = context.evaluate(
                    kind,
                    epsilon,
                    n_trials=n_trials,
                    rng=derive_rng(rng, "length-run", kind, length, index),
                )
                per_mechanism[kind].append(result.mre)
        for kind in mechanisms:
            values = per_mechanism[kind]
            table.add_row(
                pattern_length=length,
                mechanism=kind,
                epsilon=epsilon,
                mre=sum(values) / len(values),
            )
    return table


def sweep_overlap(
    overlaps: Sequence[float],
    epsilon: float,
    *,
    base_config: TaxiConfig = TaxiConfig(n_taxis=40, n_steps=120),
    mechanisms: Sequence[str] = ("uniform", "adaptive"),
    n_trials: int = 3,
    rng: RngLike = None,
) -> ResultTable:
    """MRE versus the private/target area overlap on the taxi workload."""
    table = ResultTable(
        ["overlap", "mechanism", "epsilon", "mre"],
        title=f"ablation: private/target overlap sweep (epsilon={epsilon:g})",
    )
    for overlap in overlaps:
        config = replace(base_config, private_target_overlap=overlap)
        workload = build_taxi_workload(
            config, rng=derive_rng(rng, "overlap-data", int(overlap * 1000))
        )
        context = WorkloadEvaluation(workload)
        for kind in mechanisms:
            result = context.evaluate(
                kind,
                epsilon,
                n_trials=n_trials,
                rng=derive_rng(
                    rng, "overlap-run", kind, int(overlap * 1000)
                ),
            )
            table.add_row(
                overlap=overlap,
                mechanism=kind,
                epsilon=epsilon,
                mre=result.mre,
            )
    return table


def sweep_conversion_mode(
    workload: Workload,
    epsilons: Sequence[float],
    *,
    mechanisms: Sequence[str] = ("bd", "ba", "landmark"),
    n_trials: int = 3,
    rng: RngLike = None,
) -> ResultTable:
    """Baseline MRE under both budget-conversion accountings.

    The Section VI-A.2 conversion is stated loosely in the paper; we
    formalize it with a sound worst-case mode and an optimistic nominal
    mode (see ``repro.baselines.conversion``).  This sweep shows the
    headline conclusion — pattern-level PPMs dominate — survives even
    when the baselines are granted the optimistic conversion.
    """
    table = ResultTable(
        ["mode", "mechanism", "epsilon", "mre"],
        title=f"ablation: budget-conversion mode on {workload.name}",
    )
    context = WorkloadEvaluation(workload)
    for mode in ("worst_case", "nominal"):
        for kind in mechanisms:
            for epsilon in epsilons:
                result = context.evaluate(
                    kind,
                    epsilon,
                    n_trials=n_trials,
                    conversion_mode=mode,
                    rng=derive_rng(
                        rng, "conversion", mode, kind, int(epsilon * 1000)
                    ),
                )
                table.add_row(
                    mode=mode,
                    mechanism=kind,
                    epsilon=epsilon,
                    mre=result.mre,
                )
    # Reference rows: the pattern-level PPMs take ε natively and are not
    # affected by the conversion mode.
    for kind in ("uniform", "adaptive"):
        for epsilon in epsilons:
            result = context.evaluate(
                kind,
                epsilon,
                n_trials=n_trials,
                rng=derive_rng(rng, "conversion-ref", kind, int(epsilon * 1000)),
            )
            table.add_row(
                mode="native", mechanism=kind, epsilon=epsilon, mre=result.mre
            )
    return table


def sweep_step_size(
    workload: Workload,
    epsilon: float,
    multipliers: Sequence[float],
    *,
    max_iterations: int = 400,
    rng: RngLike = None,
) -> ResultTable:
    """Algorithm 1 outcome versus step size δε.

    The paper suggests ``δε = mε/100``; this sweep scales that default
    and records the fitted quality, iteration count and convergence —
    too-large steps overshoot, too-small ones stall at the cap.  The
    fitted pattern is the private pattern overlapping the targets most
    (a disjoint one converges trivially at the uniform start).
    """
    pattern = workload.most_overlapping_private()
    length = len(pattern.elements)
    base_step = default_step_size(epsilon, length)
    table = ResultTable(
        [
            "multiplier",
            "step_size",
            "fitted_q",
            "iterations",
            "converged",
        ],
        title=(
            f"ablation: Algorithm 1 step size on {workload.name} "
            f"(epsilon={epsilon:g}, default step={base_step:g})"
        ),
    )
    for multiplier in multipliers:
        ppm = AdaptivePatternPPM.fit(
            pattern,
            epsilon,
            workload.history,
            workload.target_patterns,
            step_size=base_step * multiplier,
            max_iterations=max_iterations,
        )
        fit = ppm.fit_result
        table.add_row(
            multiplier=multiplier,
            step_size=base_step * multiplier,
            fitted_q=fit.quality_trace[-1],
            iterations=fit.iterations,
            converged=fit.converged,
        )
    return table


def sweep_history_size(
    workload: Workload,
    epsilon: float,
    sizes: Sequence[int],
    *,
    n_trials: int = 5,
    rng: RngLike = None,
) -> ResultTable:
    """Adaptive PPM quality versus the amount of historical data.

    Algorithm 1 trains on subject-provided history (Section V-B); this
    sweep truncates the history to ``size`` windows, fits, and measures
    the deployed MRE on the full evaluation stream.
    """
    from repro.core.ppm import MultiPatternPPM
    from repro.experiments.runner import measure_quality
    from repro.core.quality_model import baseline_quality
    from repro.metrics.mre import mean_relative_error
    import numpy as np

    table = ResultTable(
        ["history_windows", "epsilon", "mre", "fitted_q"],
        title=(
            f"ablation: history volume for Algorithm 1 on {workload.name} "
            f"(epsilon={epsilon:g})"
        ),
    )
    q_ordinary = baseline_quality(
        workload.stream, workload.target_patterns
    ).q
    for size in sizes:
        if size <= 0:
            raise ValueError(f"history size must be positive, got {size}")
        truncated = workload.history.slice_windows(
            0, min(size, workload.history.n_windows)
        )
        fitted = [
            AdaptivePatternPPM.fit(
                pattern,
                epsilon,
                truncated,
                workload.target_patterns,
            )
            for pattern in workload.private_patterns
        ]
        mechanism = MultiPatternPPM(fitted)
        qualities = measure_quality(
            workload,
            mechanism,
            n_trials=n_trials,
            rng=derive_rng(rng, "history", size),
        )
        mre = float(
            np.mean(
                [
                    mean_relative_error(q_ordinary, quality.q)
                    for quality in qualities
                ]
            )
        )
        table.add_row(
            history_windows=truncated.n_windows,
            epsilon=epsilon,
            mre=mre,
            fitted_q=fitted[0].fit_result.quality_trace[-1],
        )
    return table
