"""Experiment configuration objects."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.utils.validation import (
    check_positive,
    check_positive_int,
    check_probability,
)

#: The mechanisms compared in the paper's Fig. 4, in plotting order.
FIG4_MECHANISMS: Tuple[str, ...] = (
    "uniform",
    "adaptive",
    "bd",
    "ba",
    "landmark",
)

#: All mechanism kinds the runner can build (Fig. 4 set + the extra
#: protection-level reference points).
ALL_MECHANISMS: Tuple[str, ...] = FIG4_MECHANISMS + (
    "event-level",
    "user-level",
)

#: Default pattern-level budget grid for the ε sweeps.
DEFAULT_EPSILON_GRID: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0)


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs of the evaluation runs.

    Attributes
    ----------
    epsilon_grid:
        Pattern-level budgets to sweep (the x-axis of Fig. 4).
    mechanisms:
        Mechanism kinds to compare (see :data:`ALL_MECHANISMS`).
    alpha:
        Quality-metric precision weight; the paper sets 0.5.
    n_trials:
        Perturbation repetitions per (workload, mechanism, ε) cell; the
        reported quality is the mean over trials.
    conversion_mode:
        Budget-conversion accounting for the baselines
        (``"worst_case"`` — sound, the default — or ``"nominal"``).
    seed:
        Root seed; every cell derives independent child generators.
    """

    epsilon_grid: Tuple[float, ...] = DEFAULT_EPSILON_GRID
    mechanisms: Tuple[str, ...] = FIG4_MECHANISMS
    alpha: float = 0.5
    n_trials: int = 5
    conversion_mode: str = "worst_case"
    seed: int = 2023

    def __post_init__(self):
        if not self.epsilon_grid:
            raise ValueError("epsilon_grid must not be empty")
        for value in self.epsilon_grid:
            check_positive("epsilon", value)
        if not self.mechanisms:
            raise ValueError("mechanisms must not be empty")
        unknown = set(self.mechanisms) - set(ALL_MECHANISMS)
        if unknown:
            raise ValueError(
                f"unknown mechanism(s) {sorted(unknown)}; "
                f"available: {list(ALL_MECHANISMS)}"
            )
        check_probability("alpha", self.alpha)
        check_positive_int("n_trials", self.n_trials)
        if self.conversion_mode not in ("worst_case", "nominal"):
            raise ValueError(
                "conversion_mode must be 'worst_case' or 'nominal', got "
                f"{self.conversion_mode!r}"
            )
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")
