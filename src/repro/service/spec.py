"""The declarative service description: one frozen, serializable spec.

The paper's service phase (Section III-A, Fig. 2) is a single
configurable pipeline — events, windows, indicators, PPM perturbation,
matching, metrics.  A :class:`ServiceSpec` describes one such pipeline
*as data*: the alphabet, the data subjects' private patterns, the data
consumers' queries and quality requirement, plus registered string
specs choosing the mechanism and the executor.  Specs round-trip
through JSON (``spec.to_json()`` / ``ServiceSpec.from_json()``), so a
run is reproducible from a JSON blob plus a seed — bit-identical to the
imperative ``CEPEngine`` path under the same seed.

>>> spec = ServiceSpec(
...     alphabet=("e1", "e2", "e3", "e4"),
...     patterns=[("private", ("e1", "e2"))],
...     queries=[("q", ("e2", "e3"))],
...     mechanism="uniform-ppm",
...     mechanism_options={"epsilon": 2.0},
...     executor="sharded:thread:4",
...     seed=7,
... )
>>> service = spec.build()          # a StreamService
>>> report = service.run(events)    # the full service phase
"""

from __future__ import annotations

import json

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.cep.engine import QualityRequirement
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery
from repro.streams.indicator import EventAlphabet
from repro.utils.validation import check_positive

__all__ = [
    "PatternSpec",
    "QuerySpec",
    "QualitySpec",
    "ServiceSpec",
    "TenantSpec",
]

#: Declarative window-assigner kinds accepted by ``ServiceSpec.window``
#: and their positional parameters (see :mod:`repro.streams.windows`).
_WINDOW_KINDS = {
    "tumbling": ("width",),
    "sliding": ("width", "slide"),
    "count": ("size",),
    "session": ("gap",),
}


@dataclass(frozen=True)
class PatternSpec:
    """A sequential pattern ``P = seq(e_1, ..., e_m)`` as plain data."""

    name: str
    elements: Tuple[str, ...]

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("pattern name must be a non-empty string")
        elements = tuple(self.elements)
        if not elements or not all(
            isinstance(element, str) and element for element in elements
        ):
            raise ValueError(
                f"pattern {self.name!r} needs a non-empty tuple of "
                "event-type strings"
            )
        object.__setattr__(self, "elements", elements)

    def to_pattern(self) -> Pattern:
        """The equivalent :class:`~repro.cep.patterns.Pattern`."""
        return Pattern.of_types(self.name, *self.elements)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "elements": list(self.elements)}


@dataclass(frozen=True)
class QuerySpec:
    """A continuous target-pattern query as plain data."""

    name: str
    pattern: PatternSpec
    within: Optional[float] = None

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("query name must be a non-empty string")
        if not isinstance(self.pattern, PatternSpec):
            raise TypeError(
                f"query pattern must be a PatternSpec, got "
                f"{type(self.pattern).__name__}"
            )
        if self.within is not None and self.within <= 0:
            raise ValueError(f"within must be positive, got {self.within}")

    def to_query(self) -> ContinuousQuery:
        """The equivalent :class:`~repro.cep.queries.ContinuousQuery`."""
        return ContinuousQuery(
            self.name, self.pattern.to_pattern(), within=self.within
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "pattern": self.pattern.to_dict(),
            "within": self.within,
        }


@dataclass(frozen=True)
class QualitySpec:
    """The consumers' quality requirement (Section III-B) as data."""

    alpha: float = 0.5
    max_mre: Optional[float] = None

    def __post_init__(self):
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.max_mre is not None and self.max_mre < 0:
            raise ValueError(f"max_mre must be >= 0, got {self.max_mre}")

    def to_requirement(self) -> QualityRequirement:
        return QualityRequirement(alpha=self.alpha, max_mre=self.max_mre)

    def to_dict(self) -> Dict[str, Any]:
        return {"alpha": self.alpha, "max_mre": self.max_mre}


def _as_pattern_spec(value) -> PatternSpec:
    if isinstance(value, PatternSpec):
        return value
    if isinstance(value, Pattern):
        if value.elements is None:
            raise ValueError(
                f"pattern {value.name!r} has no element list; the "
                "declarative spec takes seq-of-types patterns "
                "(Pattern.of_types) or explicit (name, elements) pairs"
            )
        return PatternSpec(value.name, tuple(value.elements))
    if isinstance(value, Mapping):
        return PatternSpec(value["name"], tuple(value["elements"]))
    if isinstance(value, (tuple, list)) and len(value) == 2:
        name, elements = value
        if isinstance(elements, str):
            elements = (elements,)
        return PatternSpec(name, tuple(elements))
    raise TypeError(
        "patterns take Pattern objects, PatternSpec, (name, elements) "
        f"pairs or dicts; got {type(value).__name__}"
    )


def _as_query_spec(value) -> QuerySpec:
    if isinstance(value, QuerySpec):
        return value
    if isinstance(value, ContinuousQuery):
        return QuerySpec(
            value.name, _as_pattern_spec(value.pattern), within=value.within
        )
    if isinstance(value, Mapping):
        return QuerySpec(
            value["name"],
            _as_pattern_spec(value["pattern"]),
            within=value.get("within"),
        )
    if isinstance(value, (tuple, list)) and len(value) in (2, 3):
        name, elements = value[0], value[1]
        within = value[2] if len(value) == 3 else None
        if isinstance(elements, (Pattern, PatternSpec, Mapping)):
            pattern = _as_pattern_spec(elements)
        else:
            if isinstance(elements, str):
                elements = (elements,)
            pattern = PatternSpec(name, tuple(elements))
        return QuerySpec(name, pattern, within=within)
    raise TypeError(
        "queries take ContinuousQuery objects, QuerySpec, "
        "(name, elements[, within]) tuples or dicts; got "
        f"{type(value).__name__}"
    )


def _as_quality_spec(value) -> QualitySpec:
    if value is None:
        return QualitySpec()
    if isinstance(value, QualitySpec):
        return value
    if isinstance(value, QualityRequirement):
        return QualitySpec(alpha=value.alpha, max_mre=value.max_mre)
    if isinstance(value, Mapping):
        return QualitySpec(
            alpha=value.get("alpha", 0.5), max_mre=value.get("max_mre")
        )
    if isinstance(value, (int, float)):
        return QualitySpec(alpha=float(value))
    if isinstance(value, (tuple, list)) and len(value) == 2:
        return QualitySpec(alpha=value[0], max_mre=value[1])
    raise TypeError(
        "quality takes a QualitySpec, QualityRequirement, alpha float, "
        f"(alpha, max_mre) pair or dict; got {type(value).__name__}"
    )


def _jsonish(value, *, where: str):
    """Normalize option values to their JSON-stable form.

    Tuples become lists and numpy scalars/arrays become plain Python, so
    a spec equals its own JSON round-trip; values JSON cannot carry are
    rejected up front with a pointed error.
    """
    import numpy as np

    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_jsonish(item, where=where) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_jsonish(item, where=where) for item in value]
    if isinstance(value, Mapping):
        return {
            str(key): _jsonish(item, where=where)
            for key, item in value.items()
        }
    raise TypeError(
        f"{where} must be JSON-serializable (str/number/bool/None/"
        f"list/dict); got {type(value).__name__}"
    )


@dataclass(frozen=True)
class ServiceSpec:
    """A complete, validated description of one private stream service.

    The one declarative entry point of the library: everything the
    imperative setup phase mutates into a
    :class:`~repro.cep.engine.CEPEngine` — private patterns, queries,
    mechanism, accounting, quality requirement — plus the executor
    choice, expressed as data.  Instances are frozen and validated at
    construction; mechanisms and executors are named by registered
    string specs (see :mod:`repro.service.registry`), so unknown names
    fail fast with the registered alternatives listed.

    Attributes
    ----------
    alphabet:
        The event-type universe (accepts an
        :class:`~repro.streams.indicator.EventAlphabet` or strings).
    patterns:
        Private patterns (accepts :class:`~repro.cep.patterns.Pattern`
        objects, ``(name, elements)`` pairs, or dicts).
    queries:
        Continuous target queries (accepts
        :class:`~repro.cep.queries.ContinuousQuery`,
        ``(name, elements[, within])`` tuples, or dicts).
    mechanism:
        Registered mechanism spec (``"uniform-ppm"``, ``"adaptive-ppm"``,
        ``"bd"``, ``"ba"``, ``"landmark"``, ``"event-rr"``,
        ``"user-rr"``, or a plugin's name); ``None`` runs unprotected.
    mechanism_options:
        Keyword options for the mechanism factory (e.g.
        ``{"epsilon": 2.0}``).
    executor:
        Registered executor spec (``"batch"``, ``"chunked:512"``,
        ``"sharded:process:8"``, ...).
    executor_options:
        Keyword options for the executor factory.
    source:
        Registered source connector spec naming where windows come
        from (``"csv:<path>"``, ``"jsonl:<path>"``,
        ``"synthetic:<generator>:<n>:<seed>"``,
        ``"replay:<path>:<rate>"``, ``"queue"``, ``"memory"``; see
        :mod:`repro.io`).  ``None`` (the default) keeps today's
        behavior: data is passed to ``run()``/sessions directly.
    source_options:
        Keyword options for the source factory.
    sink:
        Registered sink connector spec naming where the released
        stream and answers go (``"csv:<path>"``, ``"jsonl:<path>"``,
        ``"metrics"``, ``"memory"``, ``"callback"``).  ``None`` (the
        default) egresses nothing beyond the returned report.
    sink_options:
        Keyword options for the sink factory.
    accounting:
        Total service budget; when set, the built engine refuses runs
        whose cumulative spend would exceed it.
    quality:
        The consumers' quality requirement (``alpha`` /``max_mre``).
    window:
        Declarative window assigner for raw event streams:
        ``"tumbling:10"``, ``"sliding:10:5"``, ``"count:25"``,
        ``"session:3"`` (``None`` when the service is fed indicators).
    seed:
        Default randomness seed; the same spec JSON plus the same seed
        reproduces a run bit for bit.
    """

    alphabet: Tuple[str, ...] = ()
    patterns: Tuple[PatternSpec, ...] = ()
    queries: Tuple[QuerySpec, ...] = ()
    mechanism: Optional[str] = None
    mechanism_options: Mapping = field(default_factory=dict)
    executor: str = "batch"
    executor_options: Mapping = field(default_factory=dict)
    source: Optional[str] = None
    source_options: Mapping = field(default_factory=dict)
    sink: Optional[str] = None
    sink_options: Mapping = field(default_factory=dict)
    accounting: Optional[float] = None
    quality: QualitySpec = field(default_factory=QualitySpec)
    window: Optional[str] = None
    seed: Optional[int] = None

    def __post_init__(self):
        from repro.service.registry import (
            validate_executor_spec,
            validate_mechanism_spec,
        )

        alphabet = self.alphabet
        if isinstance(alphabet, EventAlphabet):
            alphabet = alphabet.types
        if isinstance(alphabet, str):
            alphabet = (alphabet,)
        object.__setattr__(self, "alphabet", tuple(alphabet))
        # EventAlphabet validates non-emptiness, types and uniqueness.
        compiled_alphabet = EventAlphabet(self.alphabet)

        object.__setattr__(
            self,
            "patterns",
            tuple(_as_pattern_spec(pattern) for pattern in self.patterns),
        )
        object.__setattr__(
            self,
            "queries",
            tuple(_as_query_spec(query) for query in self.queries),
        )
        names = [pattern.name for pattern in self.patterns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate private pattern names: {names}")
        names = [query.name for query in self.queries]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate query names: {names}")
        for pattern in self.patterns + tuple(
            query.pattern for query in self.queries
        ):
            missing = [
                element
                for element in pattern.elements
                if element not in compiled_alphabet
            ]
            if missing:
                raise ValueError(
                    f"pattern {pattern.name!r} uses event types {missing} "
                    "absent from the spec alphabet"
                )

        if self.mechanism is not None:
            validate_mechanism_spec(self.mechanism)
        object.__setattr__(
            self,
            "mechanism_options",
            _jsonish(dict(self.mechanism_options), where="mechanism_options"),
        )
        validate_executor_spec(self.executor)
        object.__setattr__(
            self,
            "executor_options",
            _jsonish(dict(self.executor_options), where="executor_options"),
        )

        from repro.io.registry import (
            validate_sink_spec,
            validate_source_spec,
        )

        if self.source is not None:
            validate_source_spec(self.source)
        object.__setattr__(
            self,
            "source_options",
            _jsonish(dict(self.source_options), where="source_options"),
        )
        if self.sink is not None:
            validate_sink_spec(self.sink)
        object.__setattr__(
            self,
            "sink_options",
            _jsonish(dict(self.sink_options), where="sink_options"),
        )

        if self.accounting is not None:
            check_positive("accounting", self.accounting, allow_inf=True)
        object.__setattr__(self, "quality", _as_quality_spec(self.quality))
        if self.window is not None:
            self._parse_window(self.window)
        if self.seed is not None:
            import numpy as np

            if isinstance(self.seed, np.integer):
                object.__setattr__(self, "seed", int(self.seed))
            if isinstance(self.seed, bool) or not isinstance(
                self.seed, int
            ):
                raise TypeError(
                    f"seed must be an int or None, got "
                    f"{type(self.seed).__name__}"
                )

    # -- window grammar ------------------------------------------------

    @staticmethod
    def _parse_window(spec: str):
        from repro.service.registry import parse_spec

        kind, args = parse_spec(spec)
        if kind not in _WINDOW_KINDS:
            raise ValueError(
                f"unknown window spec {kind!r}; known window kinds: "
                f"{', '.join(sorted(_WINDOW_KINDS))}"
            )
        expected = _WINDOW_KINDS[kind]
        if len(args) != len(expected) or not all(
            isinstance(argument, (int, float)) for argument in args
        ):
            raise ValueError(
                f"window spec {spec!r} must be "
                f"{kind}:{':'.join('<%s>' % name for name in expected)}"
            )
        return kind, args

    def window_assigner(self):
        """The window assigner the ``window`` spec describes.

        ``None`` when no windowing is declared (indicator input only).
        """
        if self.window is None:
            return None
        kind, args = self._parse_window(self.window)
        from repro.streams import windows

        if kind == "tumbling":
            return windows.TumblingWindows(float(args[0]), emit_empty=True)
        if kind == "sliding":
            return windows.SlidingWindows(float(args[0]), float(args[1]))
        if kind == "count":
            return windows.CountWindows(int(args[0]))
        return windows.SessionWindows(float(args[0]))

    # -- compiled views ------------------------------------------------

    def event_alphabet(self) -> EventAlphabet:
        """The compiled :class:`~repro.streams.indicator.EventAlphabet`."""
        return EventAlphabet(self.alphabet)

    def pattern_objects(self) -> Tuple[Pattern, ...]:
        """The private patterns as :class:`Pattern` objects."""
        return tuple(pattern.to_pattern() for pattern in self.patterns)

    def query_objects(self) -> Tuple[ContinuousQuery, ...]:
        """The queries as :class:`ContinuousQuery` objects."""
        return tuple(query.to_query() for query in self.queries)

    def build(self, *, history=None):
        """Compile this spec into a :class:`~repro.service.StreamService`.

        ``history`` supplies the historical indicator windows data-driven
        mechanisms fit on (``"adaptive-ppm"``); purely configured
        mechanisms ignore it.
        """
        from repro.service.service import StreamService

        return StreamService(self, history=history)

    def with_(self, **changes) -> "ServiceSpec":
        """A copy of this spec with the given fields replaced."""
        return replace(self, **changes)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict fully describing this spec."""
        return {
            "format": 1,
            "alphabet": list(self.alphabet),
            "patterns": [pattern.to_dict() for pattern in self.patterns],
            "queries": [query.to_dict() for query in self.queries],
            "mechanism": self.mechanism,
            "mechanism_options": dict(self.mechanism_options),
            "executor": self.executor,
            "executor_options": dict(self.executor_options),
            "source": self.source,
            "source_options": dict(self.source_options),
            "sink": self.sink,
            "sink_options": dict(self.sink_options),
            "accounting": self.accounting,
            "quality": self.quality.to_dict(),
            "window": self.window,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ServiceSpec":
        """Rebuild a spec from :meth:`to_dict` output (validates anew)."""
        if not isinstance(data, Mapping):
            raise TypeError(
                f"spec dict must be a mapping, got {type(data).__name__}"
            )
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(data) - known - {"format"})
        if unknown:
            raise ValueError(
                f"spec dict has unknown fields {unknown}; known fields: "
                f"{', '.join(sorted(known))}"
            )
        kwargs = {key: value for key, value in data.items() if key in known}
        return cls(**kwargs)

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """This spec as a JSON document (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "ServiceSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(document))


@dataclass(frozen=True)
class TenantSpec:
    """One gateway tenant as data: a named, budgeted, rate-limited spec.

    A :class:`~repro.service.gateway.StreamGateway` fleet is a list of
    these — each names a :class:`ServiceSpec` pipeline and the tenancy
    knobs the gateway applies around it: the tenant's own ``seed`` and
    privacy ``budget`` (overriding the service spec's ``seed`` /
    ``accounting`` fields, so one shared pipeline spec can serve many
    isolated tenants), plus an ingress ``rate_limit`` (windows per
    second, token bucket with optional ``burst`` capacity) beyond which
    windows are *shed* — dropped before perturbation, counted, and
    surfaced in the tenant's metrics rather than silently lost.

    Like :class:`ServiceSpec`, a tenant spec is frozen and round-trips
    through JSON, so a whole fleet is constructible from one JSON
    document (:meth:`StreamGateway.from_json`).
    """

    name: str
    service: ServiceSpec
    seed: Optional[int] = None
    budget: Optional[float] = None
    rate_limit: Optional[float] = None
    burst: Optional[float] = None

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("tenant name must be a non-empty string")
        service = self.service
        if isinstance(service, str):
            service = ServiceSpec.from_json(service)
        elif isinstance(service, Mapping):
            service = ServiceSpec.from_dict(service)
        if not isinstance(service, ServiceSpec):
            raise TypeError(
                f"tenant {self.name!r} service must be a ServiceSpec "
                f"(or its dict/JSON form), got {type(service).__name__}"
            )
        object.__setattr__(self, "service", service)
        if self.seed is not None:
            import numpy as np

            if isinstance(self.seed, np.integer):
                object.__setattr__(self, "seed", int(self.seed))
            if isinstance(self.seed, bool) or not isinstance(
                self.seed, int
            ):
                raise TypeError(
                    f"seed must be an int or None, got "
                    f"{type(self.seed).__name__}"
                )
        if self.budget is not None:
            check_positive("budget", self.budget, allow_inf=True)
            object.__setattr__(self, "budget", float(self.budget))
        if self.rate_limit is not None:
            check_positive("rate_limit", self.rate_limit)
            object.__setattr__(self, "rate_limit", float(self.rate_limit))
        if self.burst is not None:
            if self.rate_limit is None:
                raise ValueError(
                    f"tenant {self.name!r} sets burst without "
                    "rate_limit; burst is the token-bucket capacity of "
                    "a rate limit"
                )
            check_positive("burst", self.burst)
            object.__setattr__(self, "burst", float(self.burst))

    def resolved_spec(self) -> ServiceSpec:
        """The service spec with this tenant's seed/budget applied."""
        spec = self.service
        changes = {}
        if self.seed is not None:
            changes["seed"] = self.seed
        if self.budget is not None:
            changes["accounting"] = self.budget
        return spec.with_(**changes) if changes else spec

    def with_(self, **changes) -> "TenantSpec":
        """A copy of this tenant spec with the given fields replaced."""
        return replace(self, **changes)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict fully describing this tenant."""
        return {
            "format": 1,
            "name": self.name,
            "service": self.service.to_dict(),
            "seed": self.seed,
            "budget": self.budget,
            "rate_limit": self.rate_limit,
            "burst": self.burst,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TenantSpec":
        """Rebuild a tenant spec from :meth:`to_dict` output."""
        if not isinstance(data, Mapping):
            raise TypeError(
                f"tenant dict must be a mapping, got "
                f"{type(data).__name__}"
            )
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(data) - known - {"format"})
        if unknown:
            raise ValueError(
                f"tenant dict has unknown fields {unknown}; known "
                f"fields: {', '.join(sorted(known))}"
            )
        kwargs = {key: value for key, value in data.items() if key in known}
        return cls(**kwargs)

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """This tenant spec as a JSON document (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "TenantSpec":
        """Rebuild a tenant spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(document))
