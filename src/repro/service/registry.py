"""Plugin registries resolving string specs to mechanisms and executors.

The declarative service API names its components by *spec strings*:
``mechanism="uniform-ppm"``,
``executor="sharded:backend=process,workers=8"``.  A spec string is a
registered name optionally followed by ``key=value`` arguments (the
shared grammar in :mod:`repro.service.specgrammar`, also used by the
source/sink registry); keyword options ride along separately
(:attr:`~repro.service.spec.ServiceSpec.mechanism_options` /
``executor_options``).  The legacy positional grammar
(``"sharded:process:8"``, colon-separated arguments coerced to
``int``/``float``) still resolves to identical objects behind exactly
one ``DeprecationWarning`` per callsite.

Third-party backends extend the service without touching core:

>>> from repro.service import register_executor
>>> @register_executor("my-accelerator")
... def _build(device="gpu0"):
...     '''Executor offloading perturbation to an accelerator.'''
...     return MyAcceleratorExecutor(device)

and ``ServiceSpec(executor="my-accelerator:device=gpu1", ...)`` just
works (valid keys default to the factory's keyword parameters) — this
is the hook the ROADMAP's distributed-shard and accelerator executors
plug into.

Mechanism factories receive a :class:`MechanismContext` (the spec's
alphabet, private patterns, target queries and quality weight, plus
run-time extras like the adaptive PPM's history stream) and take the
budget either natively (``epsilon=``, the mechanism's own parameter) or
as a pattern-level budget (``pattern_epsilon=``, converted per
Section VI-A.2 exactly as the experiment harness converts it — the
conversion now lives *with* each mechanism's factory instead of in the
runner's kind-dispatch).
"""

from __future__ import annotations

import inspect

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cep.patterns import Pattern
from repro.service.specgrammar import (
    SpecKey,
    format_value,
    is_kv_tail,
    kv_kwargs,
    suggest_kv_spec,
    warn_legacy_spec,
)
from repro.streams.indicator import EventAlphabet
from repro.utils.validation import check_positive

__all__ = [
    "MechanismContext",
    "UnknownSpecError",
    "build_executor_from_spec",
    "build_mechanism_from_spec",
    "mechanism_factory_accepts",
    "parse_spec",
    "register_executor",
    "register_mechanism",
    "registered_executors",
    "registered_mechanisms",
]


class UnknownSpecError(ValueError):
    """A spec string names no registered mechanism/executor."""


def parse_spec(spec: str) -> Tuple[str, Tuple[object, ...]]:
    """Split ``"name:arg1:arg2"`` into the name and coerced arguments.

    Arguments parse to ``int`` then ``float`` when possible and stay
    strings otherwise: ``"sharded:process:8"`` →
    ``("sharded", ("process", 8))``.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"spec must be a non-empty string, got {spec!r}")
    head, *raw_args = spec.strip().split(":")
    return head, tuple(_coerce(argument) for argument in raw_args)


def _coerce(argument: str) -> object:
    for kind in (int, float):
        try:
            return kind(argument)
        except ValueError:
            continue
    return argument


def _derive_keys(factory: Callable) -> Tuple[SpecKey, ...]:
    """Default key schema: the factory's named keyword parameters."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - C callables
        return ()
    return tuple(
        SpecKey(parameter.name)
        for parameter in signature.parameters.values()
        if parameter.kind
        in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
    )


class _Registry:
    """One name → factory table with alias and key-schema support.

    ``warn_positional=False`` keeps a registry's legacy positional
    tails first-class (no deprecation warning) while still speaking the
    key=value grammar — the mechanism registry uses this: ``"bd:0.5"``
    stays the documented short form, ``"bd:scan=off,margin=1e-9"``
    parses as key=value with unknown keys failing at parse time.
    ``skip_parameters`` drops that many leading factory parameters from
    the derived key schema (mechanism factories take the build context
    first, which is not a spec key).
    """

    def __init__(
        self,
        kind: str,
        *,
        keyed: bool = True,
        warn_positional: bool = True,
        skip_parameters: int = 0,
    ):
        self._kind = kind
        self._keyed = keyed
        self._warn_positional = warn_positional
        self._skip_parameters = skip_parameters
        self._factories: Dict[str, Callable] = {}
        self._canonical: Dict[str, str] = {}
        self._raw_tail: Dict[str, bool] = {}
        self._keys: Dict[str, Tuple[SpecKey, ...]] = {}
        self._suggest: Dict[str, Optional[Callable]] = {}

    def register(
        self,
        name: str,
        *,
        aliases: Sequence[str] = (),
        raw_tail: bool = False,
        keys: Optional[Sequence[SpecKey]] = None,
        suggest: Optional[Callable] = None,
    ):
        """``raw_tail=True`` hands the factory everything after the
        first colon as one uncoerced string — for connectors whose
        argument is a path (paths may contain colons, and a numeric
        filename must stay a string).  ``keys`` declares the name's
        valid key=value keys (default: the factory's keyword
        parameters); ``suggest`` optionally maps legacy positional
        arguments to ``(key, value)`` pairs for the deprecation
        warning's suggested rewrite."""

        def decorator(factory: Callable) -> Callable:
            spec_names = (name, *aliases)
            # Check every key before inserting any, so a collision
            # leaves no partial registration behind.
            taken = [key for key in spec_names if key in self._factories]
            if taken:
                raise ValueError(
                    f"{self._kind} spec(s) {taken} already registered"
                )
            spec_keys = (
                tuple(keys)
                if keys is not None
                else _derive_keys(factory)[self._skip_parameters :]
            )
            for key in spec_names:
                self._factories[key] = factory
                self._canonical[key] = name
                self._raw_tail[key] = raw_tail
                self._keys[key] = spec_keys
                self._suggest[key] = suggest
            return factory

        return decorator

    def names(self) -> Tuple[str, ...]:
        """All registered spec names (canonical names and aliases)."""
        return tuple(sorted(self._factories))

    def keys_for(self, spec: str) -> Tuple[SpecKey, ...]:
        """The key=value keys a spec's registered name accepts."""
        name, _tail = self._lookup(spec)
        return self._keys[name]

    def _lookup(self, spec: str) -> Tuple[str, Optional[str]]:
        """Split off the registered name; ``None`` tail means no colon."""
        if not isinstance(spec, str) or not spec.strip():
            raise ValueError(
                f"spec must be a non-empty string, got {spec!r}"
            )
        name, sep, tail = spec.strip().partition(":")
        if name not in self._factories:
            raise UnknownSpecError(
                f"unknown {self._kind} spec {name!r}; registered "
                f"{self._kind} specs: {', '.join(self.names())}"
            )
        return name, (tail if sep else None)

    def _is_kv(self, name: str, tail: Optional[str]) -> bool:
        if not self._keyed or not tail:
            return False
        # Raw-tail connectors stay in address mode unless the first
        # segment names a *declared* key, so "csv:data=1.csv" is a
        # path while "csv:path=data.csv" is key=value.
        schema = self._keys[name] if self._raw_tail[name] else ()
        return is_kv_tail(tail, keys=schema)

    def _warn_legacy(self, name: str, spec: str, args: Tuple) -> None:
        suggest = self._suggest.get(name)
        try:
            if suggest is not None:
                pairs = suggest(args)
                suggestion = f"{name}:" + ",".join(
                    f"{key}={format_value(value)}" for key, value in pairs
                )
            else:
                suggestion = suggest_kv_spec(name, args, self._keys[name])
        except Exception:
            # A suggestion is best-effort decoration; classification
            # errors must never mask the factory's own validation.
            suggestion = None
        warn_legacy_spec(self._kind, spec, suggestion)

    def resolve(
        self, spec: str
    ) -> Tuple[Callable, Tuple[object, ...], Dict[str, object]]:
        name, tail = self._lookup(spec)
        factory = self._factories[name]
        if self._is_kv(name, tail):
            kwargs = kv_kwargs(
                tail,
                self._keys[name],
                where=f"{self._kind} spec {name!r}",
            )
            return factory, (), kwargs
        if self._raw_tail[name]:
            # Even an empty tail is passed through, so the connector's
            # own pointed needs-a-path error fires instead of a bare
            # arity TypeError.  Address tails never deprecate: the
            # silent "csv:<path>" form is first-class.
            return factory, (tail or "",), {}
        _name, args = parse_spec(spec)
        if args and self._keyed and self._warn_positional:
            self._warn_legacy(name, spec, args)
        return factory, args, {}

    def canonical(self, spec: str) -> str:
        name, tail = self._lookup(spec)
        if self._is_kv(name, tail):
            # Validate the keys at parse time so an unknown key fails
            # inside ServiceSpec construction, not at build time.
            kv_kwargs(
                tail,
                self._keys[name],
                where=f"{self._kind} spec {name!r}",
            )
            return self._canonical[name]
        if self._raw_tail[name]:
            if not tail:
                raise ValueError(
                    f"{self._kind} spec {name!r} needs an argument: "
                    f"'{name}:<path>'"
                )
            return self._canonical[name]
        _name, args = parse_spec(spec)
        if args and self._keyed and self._warn_positional:
            self._warn_legacy(name, spec, args)
        return self._canonical[name]


# Mechanism specs keep the short positional grammar first-class and
# warning-free (a mechanism takes at most a budget argument and
# tests/papers spell them bare: "bd:0.5"), but also speak key=value for
# named tunables ("bd:scan=off,margin=1e-9") — unknown keys fail at
# parse time listing the factory's valid keys.
_MECHANISMS = _Registry("mechanism", warn_positional=False, skip_parameters=1)
_EXECUTORS = _Registry("executor")


def register_mechanism(
    name: str,
    *,
    aliases: Sequence[str] = (),
    keys: Optional[Sequence[SpecKey]] = None,
):
    """Register a mechanism factory under a spec name (plus aliases).

    The factory is called as ``factory(context, *spec_args, **options)``
    with a :class:`MechanismContext` and must return an object exposing
    ``perturb(IndicatorStream, rng=...)``.  ``keys`` declares the
    spec's key=value keys; by default they derive from the factory's
    keyword parameters (the leading ``context`` parameter excepted).
    """
    return _MECHANISMS.register(name, aliases=aliases, keys=keys)


def register_executor(
    name: str,
    *,
    aliases: Sequence[str] = (),
    keys: Optional[Sequence[SpecKey]] = None,
    suggest: Optional[Callable] = None,
):
    """Register an executor factory under a spec name (plus aliases).

    The factory is called as
    ``factory(*legacy_args, **spec_kwargs, **options)`` and must
    return an executor exposing
    ``run(pipeline, indicators, rng=...) -> PipelineResult``.
    ``keys`` declares the spec's key=value keys (default: the
    factory's keyword parameters).
    """
    return _EXECUTORS.register(
        name, aliases=aliases, keys=keys, suggest=suggest
    )


def registered_mechanisms() -> Tuple[str, ...]:
    """The mechanism spec names the service API currently accepts."""
    return _MECHANISMS.names()


def registered_executors() -> Tuple[str, ...]:
    """The executor spec names the service API currently accepts."""
    return _EXECUTORS.names()


def validate_mechanism_spec(spec: str) -> str:
    """Check the spec's head names a registered mechanism; return it."""
    return _MECHANISMS.canonical(spec)


def validate_executor_spec(spec: str) -> str:
    """Check the spec's head names a registered executor; return it."""
    return _EXECUTORS.canonical(spec)


def mechanism_factory_accepts(spec: str, parameter: str) -> bool:
    """Whether the spec's factory takes ``parameter`` as a keyword.

    The experiment runner uses this to thread optional tuning knobs
    (``conversion_mode``, ``step_size``, ...) only to factories that
    declare them, keeping unknown *user* options a hard error.
    """
    factory, _args, _kwargs = _MECHANISMS.resolve(spec)
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - C callables
        return True
    if any(
        param.kind is inspect.Parameter.VAR_KEYWORD
        for param in signature.parameters.values()
    ):
        return True
    return parameter in signature.parameters


def build_mechanism_from_spec(
    spec: str, context: "MechanismContext", **options
):
    """Instantiate the mechanism a spec string names.

    ``options`` merge keyword options over the spec string's positional
    arguments; unknown names raise :class:`UnknownSpecError` listing
    every registered spec.
    """
    factory, args, kwargs = _MECHANISMS.resolve(spec)
    return factory(context, *args, **{**kwargs, **options})


def build_executor_from_spec(spec: str, **options):
    """Instantiate the executor a spec string names.

    Spec-string key=value arguments and ``options`` merge (explicit
    keyword options win).
    """
    factory, args, kwargs = _EXECUTORS.resolve(spec)
    return factory(*args, **{**kwargs, **options})


# ---------------------------------------------------------------------------
# The mechanism build context
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MechanismContext:
    """Everything a mechanism factory may draw on while building.

    Attributes
    ----------
    alphabet:
        The service alphabet (fixes indicator columns).
    private_patterns:
        The data subjects' protected patterns.
    target_patterns:
        The data consumers' queried patterns.
    alpha:
        Precision weight of the quality requirement (Eq. (3)).
    extras:
        Run-time inputs that are data rather than configuration: the
        adaptive PPM's ``history`` stream, a precomputed
        ``landmark_mask``, the evaluation stream's ``n_windows`` (for
        the user-level budget split), ``w`` (the w-event parameter),
        and optionally a ``converter_factory`` /
        ``estimator_factory`` so harness callers can share caches.
    """

    alphabet: EventAlphabet
    private_patterns: Tuple[Pattern, ...] = ()
    target_patterns: Tuple[Pattern, ...] = ()
    alpha: float = 0.5
    extras: Mapping = field(default_factory=dict)

    def extra(self, name: str, default=None):
        """One run-time extra (``default`` when absent or ``None``)."""
        value = self.extras.get(name, default)
        return default if value is None else value

    def require_extra(self, name: str, *, hint: str):
        value = self.extras.get(name)
        if value is None:
            raise ValueError(
                f"building this mechanism needs {name!r}: {hint}"
            )
        return value

    @property
    def max_private_length(self) -> int:
        """The longest private pattern's ``m`` (conversion worst case)."""
        lengths = [
            len(pattern.elements)
            for pattern in self.private_patterns
            if pattern.elements is not None
        ]
        if not lengths:
            raise ValueError(
                "budget conversion needs at least one private pattern "
                "with an element list"
            )
        return max(lengths)

    def converter(self, mode: str = "worst_case"):
        """A budget converter for this context (Section VI-A.2).

        Uses the caller-provided ``converter_factory`` extra when
        present (the experiment harness shares its per-mode cache this
        way) and builds a fresh
        :class:`~repro.baselines.conversion.BudgetConverter` otherwise.
        """
        factory = self.extras.get("converter_factory")
        if factory is not None:
            return factory(mode)
        from repro.baselines.conversion import BudgetConverter

        return BudgetConverter(self.max_private_length, mode=mode)


def _native_budget(
    spec_name: str,
    epsilon: Optional[float],
    pattern_epsilon: Optional[float],
    convert: Callable[[float], float],
) -> float:
    """Resolve the mechanism's native budget from exactly one source."""
    if (epsilon is None) == (pattern_epsilon is None):
        raise ValueError(
            f"mechanism {spec_name!r} takes exactly one of epsilon= "
            "(the mechanism's native budget) or pattern_epsilon= (a "
            "pattern-level budget converted per Section VI-A.2)"
        )
    if epsilon is not None:
        return check_positive("epsilon", epsilon)
    check_positive("pattern_epsilon", pattern_epsilon)
    return convert(pattern_epsilon)


def _require_private(context: MechanismContext, spec_name: str):
    if not context.private_patterns:
        raise ValueError(
            f"mechanism {spec_name!r} protects private patterns; the "
            "spec declares none (patterns=)"
        )
    return context.private_patterns


# ---------------------------------------------------------------------------
# Built-in mechanism specs
# ---------------------------------------------------------------------------


@register_mechanism("uniform-ppm", aliases=("uniform",))
def _build_uniform_ppm(
    context: MechanismContext,
    epsilon: Optional[float] = None,
    *,
    pattern_epsilon: Optional[float] = None,
):
    """One uniform pattern-level PPM per private pattern (Section V-A)."""
    from repro.core.ppm import MultiPatternPPM
    from repro.core.uniform import UniformPatternPPM

    budget = _native_budget(
        "uniform-ppm", epsilon, pattern_epsilon, lambda value: value
    )
    return MultiPatternPPM(
        [
            UniformPatternPPM(pattern, budget)
            for pattern in _require_private(context, "uniform-ppm")
        ]
    )


@register_mechanism("adaptive-ppm", aliases=("adaptive",))
def _build_adaptive_ppm(
    context: MechanismContext,
    epsilon: Optional[float] = None,
    *,
    pattern_epsilon: Optional[float] = None,
    step_size: Optional[float] = None,
    max_iterations: int = 200,
):
    """Adaptive PPMs fitted on history by Algorithm 1 (Section V-B)."""
    from repro.core.adaptive import AdaptivePatternPPM
    from repro.core.ppm import MultiPatternPPM

    budget = _native_budget(
        "adaptive-ppm", epsilon, pattern_epsilon, lambda value: value
    )
    history = context.require_extra(
        "history",
        hint="the adaptive PPM fits its allocation on historical "
        "windows; pass history= to ServiceSpec.build() / StreamService",
    )
    return MultiPatternPPM(
        [
            AdaptivePatternPPM.fit(
                pattern,
                budget,
                history,
                list(context.target_patterns),
                alpha=context.alpha,
                step_size=step_size,
                max_iterations=max_iterations,
                estimator_factory=context.extras.get("estimator_factory"),
            )
            for pattern in _require_private(context, "adaptive-ppm")
        ]
    )


@register_mechanism("bd", aliases=("budget-distribution",))
def _build_bd(
    context: MechanismContext,
    epsilon: Optional[float] = None,
    w: Optional[int] = None,
    *,
    pattern_epsilon: Optional[float] = None,
    conversion_mode: str = "worst_case",
    sensitivity: float = 1.0,
    scan: Optional[str] = None,
    margin: Optional[float] = None,
    prefetch: Optional[int] = None,
):
    """The w-event budget-distribution scheduler baseline.

    ``scan=`` / ``margin=`` / ``prefetch=`` tune the decision kernel's
    U-space scan (``"bd:scan=off"``, ``"bd:scan=exact,margin=1e-9"``);
    see :class:`repro.runtime.decisions.ScanConfig`.
    """
    from repro.baselines.budget_distribution import BudgetDistribution
    from repro.runtime.decisions import ScanConfig

    w = w if w is not None else context.extra("w")
    if w is None:
        raise ValueError(
            "mechanism 'bd' needs the w-event window parameter; pass "
            "w= in the mechanism options"
        )
    native = _native_budget(
        "bd",
        epsilon,
        pattern_epsilon,
        lambda value: context.converter(conversion_mode).bd_native(value, w),
    )
    return BudgetDistribution(
        native,
        w,
        sensitivity=sensitivity,
        scan=ScanConfig.from_options(scan, margin, prefetch),
    )


@register_mechanism("ba", aliases=("budget-absorption",))
def _build_ba(
    context: MechanismContext,
    epsilon: Optional[float] = None,
    w: Optional[int] = None,
    *,
    pattern_epsilon: Optional[float] = None,
    conversion_mode: str = "worst_case",
    sensitivity: float = 1.0,
    scan: Optional[str] = None,
    margin: Optional[float] = None,
    prefetch: Optional[int] = None,
):
    """The w-event budget-absorption scheduler baseline.

    ``scan=`` / ``margin=`` / ``prefetch=`` tune the decision kernel's
    U-space scan, exactly as for ``bd``.
    """
    from repro.baselines.budget_absorption import BudgetAbsorption
    from repro.runtime.decisions import ScanConfig

    w = w if w is not None else context.extra("w")
    if w is None:
        raise ValueError(
            "mechanism 'ba' needs the w-event window parameter; pass "
            "w= in the mechanism options"
        )
    native = _native_budget(
        "ba",
        epsilon,
        pattern_epsilon,
        lambda value: context.converter(conversion_mode).ba_native(value, w),
    )
    return BudgetAbsorption(
        native,
        w,
        sensitivity=sensitivity,
        scan=ScanConfig.from_options(scan, margin, prefetch),
    )


@register_mechanism("landmark")
def _build_landmark(
    context: MechanismContext,
    epsilon: Optional[float] = None,
    *,
    pattern_epsilon: Optional[float] = None,
    landmarks: Optional[Sequence[bool]] = None,
    conversion_mode: str = "worst_case",
    rho: float = 0.5,
    sensitivity: float = 1.0,
    scan: Optional[str] = None,
    margin: Optional[float] = None,
    prefetch: Optional[int] = None,
):
    """Landmark privacy over the private patterns' sensitive windows.

    ``scan=`` / ``margin=`` / ``prefetch=`` tune the decision kernel's
    U-space scan, exactly as for ``bd``/``ba``.
    """
    from repro.baselines.landmark import LandmarkPrivacy
    from repro.runtime.decisions import ScanConfig

    if landmarks is None:
        landmarks = context.extras.get("landmark_mask")
        if callable(landmarks):
            landmarks = landmarks()
    mask = (
        None if landmarks is None else np.asarray(landmarks, dtype=bool)
    )

    def convert(value: float) -> float:
        if mask is None:
            raise ValueError(
                "converting a pattern-level budget for 'landmark' needs "
                "the landmark mask; pass landmarks= in the mechanism "
                "options (or epsilon= for the native budget)"
            )
        n_landmarks = max(1, int(mask.sum()))
        return context.converter(conversion_mode).landmark_native(
            value, n_landmarks
        )

    native = _native_budget("landmark", epsilon, pattern_epsilon, convert)
    return LandmarkPrivacy(
        native,
        landmarks=mask,
        rho=rho,
        sensitivity=sensitivity,
        scan=ScanConfig.from_options(scan, margin, prefetch),
    )


@register_mechanism("event-rr", aliases=("event-level",))
def _build_event_rr(
    context: MechanismContext,
    epsilon: Optional[float] = None,
    *,
    pattern_epsilon: Optional[float] = None,
    conversion_mode: str = "worst_case",
):
    """Event-level randomized response (per-indicator ε)."""
    from repro.baselines.event_level import EventLevelRR

    native = _native_budget(
        "event-rr",
        epsilon,
        pattern_epsilon,
        lambda value: context.converter(conversion_mode).event_level_native(
            value
        ),
    )
    return EventLevelRR(native)


@register_mechanism("user-rr", aliases=("user-level",))
def _build_user_rr(
    context: MechanismContext,
    epsilon: Optional[float] = None,
    *,
    pattern_epsilon: Optional[float] = None,
    n_windows: Optional[int] = None,
    conversion_mode: str = "worst_case",
):
    """User-level randomized response (budget split over the stream)."""
    from repro.baselines.user_level import UserLevelRR

    def convert(value: float) -> float:
        horizon = (
            n_windows if n_windows is not None else context.extra("n_windows")
        )
        if horizon is None:
            raise ValueError(
                "converting a pattern-level budget for 'user-rr' needs "
                "the stream horizon; pass n_windows= in the mechanism "
                "options (or epsilon= for the native budget)"
            )
        return context.converter(conversion_mode).user_level_native(
            value, horizon, len(context.alphabet)
        )

    native = _native_budget("user-rr", epsilon, pattern_epsilon, convert)
    return UserLevelRR(native)


# ---------------------------------------------------------------------------
# Built-in executor specs
# ---------------------------------------------------------------------------


@register_executor("batch", keys=())
def _build_batch_executor():
    """The vectorized whole-stream executor (the default)."""
    from repro.runtime.executors import BatchExecutor

    return BatchExecutor()


@register_executor(
    "chunked",
    keys=(SpecKey("size", dest="chunk_size"), SpecKey("materialize")),
)
def _build_chunked_executor(
    chunk_size: int = 256, *, materialize: bool = True
):
    """Bounded-memory chunked execution: ``"chunked:size=512"``."""
    from repro.runtime.executors import ChunkedExecutor

    return ChunkedExecutor(chunk_size, materialize=materialize)


#: Transport-mode flags a sharded executor spec may carry: ``copy``
#: opts the process backend out of shared-memory shard transport (a
#: debugging escape hatch), ``zerocopy`` spells the default out loud.
SHARDED_TRANSPORT_FLAGS = {"copy": False, "zerocopy": True}


def _sharded_transport(value: str) -> bool:
    """Map a ``transport=`` flag to ``zero_copy``; pointed on typos."""
    if value not in SHARDED_TRANSPORT_FLAGS:
        raise ValueError(
            f"unknown transport flag {value!r}; valid transport "
            f"flags: {', '.join(sorted(SHARDED_TRANSPORT_FLAGS))}"
        )
    return SHARDED_TRANSPORT_FLAGS[value]


def _suggest_sharded(args: Sequence[object]):
    """Classify legacy positional sharded arguments onto their keys."""
    pairs = []
    for argument in args:
        if isinstance(argument, int):
            pairs.append(("workers", argument))
        elif argument in SHARDED_TRANSPORT_FLAGS:
            pairs.append(("transport", argument))
        else:
            pairs.append(("backend", argument))
    return pairs


@register_executor(
    "sharded",
    keys=(
        SpecKey("backend"),
        SpecKey("workers", dest="n_workers"),
        SpecKey("transport", dest="zero_copy", convert=_sharded_transport),
    ),
    suggest=_suggest_sharded,
)
def _build_sharded_executor(*args, **options):
    """Parallel sharded execution:
    ``"sharded:backend=process,workers=8,transport=zerocopy"``.

    Keys: ``backend=`` (``thread`` / ``process``), ``workers=``, and
    ``transport=`` (``copy`` pickles shard slices, for debugging the
    default zero-copy shared-memory plane).  The legacy positional
    grammar (``"sharded:process:8:copy"`` — backend, worker count
    and/or transport flag in any order) still resolves behind one
    deprecation warning.  Keyword options pass through to
    :class:`~repro.runtime.executors.ShardedExecutor`.
    """
    from repro.runtime.executors import ShardedExecutor
    from repro.runtime.sharding import BACKENDS

    backend = options.pop("backend", None)
    n_workers = options.pop("n_workers", None)
    zero_copy = options.pop("zero_copy", None)
    for argument in args:
        if isinstance(argument, int):
            if n_workers is not None:
                raise ValueError(
                    f"sharded executor spec gives two worker counts: "
                    f"{n_workers} and {argument}"
                )
            n_workers = argument
        elif argument in SHARDED_TRANSPORT_FLAGS:
            if zero_copy is not None:
                raise ValueError(
                    f"sharded executor spec gives two transport flags: "
                    f"zero_copy={zero_copy} and {argument!r}"
                )
            zero_copy = SHARDED_TRANSPORT_FLAGS[argument]
        elif argument in BACKENDS:
            if backend is not None:
                raise ValueError(
                    f"sharded executor spec gives two backends: "
                    f"{backend!r} and {argument!r}"
                )
            backend = argument
        else:
            raise ValueError(
                f"unknown token {argument!r} in sharded executor "
                f"spec; expected a backend ({', '.join(BACKENDS)}), "
                f"a worker count, or a transport flag "
                f"({', '.join(sorted(SHARDED_TRANSPORT_FLAGS))})"
            )
    return ShardedExecutor(
        n_workers,
        backend=backend or "thread",
        zero_copy=zero_copy,
        **options,
    )


@register_executor(
    "cluster",
    keys=(SpecKey("workers", dest="n_workers"), SpecKey("transport")),
)
def _build_cluster_executor(n_workers=None, *, transport="shm", **options):
    """Cluster worker-fleet execution:
    ``"cluster:workers=8,transport=shm"``.

    ``transport=shm`` attaches workers to the shared-memory data plane
    (local fleet); ``transport=framed`` ships shard slices as framed
    bytes (the remote-style fallback).  Keyword options pass through
    to :class:`~repro.runtime.cluster.ClusterExecutor`.
    """
    from repro.runtime.cluster import ClusterExecutor

    return ClusterExecutor(n_workers, transport=transport, **options)
