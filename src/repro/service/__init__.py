"""The declarative service API: ``ServiceSpec`` → ``StreamService``.

One way to stand up the paper's service phase (Section III-A, Fig. 2):
describe the run as data — alphabet, private patterns, queries, a
mechanism spec, an executor spec, accounting, quality, seed — in a
frozen, JSON-serializable :class:`ServiceSpec`, then compile it with
``spec.build()`` (or ``StreamService(spec)``) and drive the full
lifecycle from the resulting :class:`StreamService`: batch runs,
push-based and async sessions, checkpoint/resume, and evaluation
sweeps.

Mechanisms and executors are chosen by *registered string specs*
(``"uniform-ppm"``, ``"sharded:process:8"``, ...); third-party backends
hook in through :func:`register_mechanism` / :func:`register_executor`
without touching core.  Runs are reproducible from a JSON blob plus a
seed, bit-identical to the imperative ``CEPEngine`` path under the same
seed.

Ingestion and egress are declarative too: ``source=``/``sink=`` fields
name registered I/O connectors (:mod:`repro.io` — streamed files,
synthetic generators, replays, live queues; file/metrics/callback
sinks), and :class:`StreamGateway` serves many named specs over one
asyncio loop with per-tenant isolation and fleet-wide
checkpoint/resume of sessions *and* in-flight source offsets.
"""

from repro.service.registry import (
    MechanismContext,
    UnknownSpecError,
    build_executor_from_spec,
    build_mechanism_from_spec,
    parse_spec,
    register_executor,
    register_mechanism,
    registered_executors,
    registered_mechanisms,
)
from repro.service.spec import (
    PatternSpec,
    QualitySpec,
    QuerySpec,
    ServiceSpec,
    TenantSpec,
)
from repro.service.service import StreamService
from repro.service.gateway import StreamGateway

__all__ = [
    "MechanismContext",
    "PatternSpec",
    "QualitySpec",
    "QuerySpec",
    "ServiceSpec",
    "StreamGateway",
    "StreamService",
    "TenantSpec",
    "UnknownSpecError",
    "build_executor_from_spec",
    "build_mechanism_from_spec",
    "parse_spec",
    "register_executor",
    "register_mechanism",
    "registered_executors",
    "registered_mechanisms",
]
