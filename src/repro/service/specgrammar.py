"""The shared ``name:key=value,...`` spec grammar.

Every registry that resolves spec strings — executors and mechanisms in
:mod:`repro.service.registry`, sources and sinks in
:mod:`repro.io.registry` — historically used a *positional* grammar
(``"sharded:process:8:zerocopy"``) whose argument meaning depended on
order and type sniffing.  This module implements the replacement
grammar once, so both registries parse identically:

``name:key=value[,key=value...]``
    ``"sharded:backend=process,workers=8,transport=zerocopy"``,
    ``"cluster:workers=8,transport=shm"``,
    ``"synthetic:generator=bernoulli,windows=500,seed=3"``.

Each registered name declares its valid keys as a tuple of
:class:`SpecKey` (name, destination keyword, optional converter).
Unknown keys fail **at parse time** listing the valid keys for that
name — misspellings never fall through to a factory ``TypeError``.

Values coerce like positional arguments always did (``int`` then
``float``), plus ``true``/``false`` for booleans; ``raw`` keys (paths)
skip coercion so a numeric filename stays a string.  Values may contain
``:`` freely (the spec splits on the *first* colon only); a value may
not contain ``,`` — connectors whose path needs a comma keep the
silent address form (``"csv:<path>"``), which remains first-class.

Legacy positional tails keep resolving to identical objects behind
exactly one :func:`repro.utils.deprecation.warn_superseded` warning per
callsite; the warning spells out the equivalent key=value spec.
"""

from __future__ import annotations

import re

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.utils.deprecation import warn_superseded

__all__ = [
    "SpecKey",
    "coerce_scalar",
    "format_spec",
    "format_value",
    "is_kv_tail",
    "kv_kwargs",
    "parse_kv_tail",
    "suggest_kv_spec",
    "warn_legacy_spec",
]

#: A key=value segment's key: an identifier (letters, digits, ``_``,
#: ``-``; no leading digit).  The first comma-segment of a spec tail
#: matching ``<key>=`` switches the tail into key=value mode.
_KV_KEY = re.compile(r"^[A-Za-z_][A-Za-z0-9_-]*$")


@dataclass(frozen=True)
class SpecKey:
    """One valid key of a registered spec name.

    Attributes
    ----------
    name:
        The key as written in the spec string (``"workers"``).
    dest:
        The factory keyword it maps to (``"n_workers"``); defaults to
        ``name``.
    convert:
        Optional converter applied to the raw string value (e.g. a
        transport-flag lookup that raises a pointed error on unknown
        flags).  Defaults to :func:`coerce_scalar`.
    raw:
        ``True`` passes the value through uncoerced (paths).
    """

    name: str
    dest: Optional[str] = None
    convert: Optional[Callable[[str], object]] = None
    raw: bool = False

    @property
    def destination(self) -> str:
        return self.dest or self.name

    def value(self, text: str) -> object:
        if self.raw:
            return text
        if self.convert is not None:
            return self.convert(text)
        return coerce_scalar(text)


def coerce_scalar(text: str) -> object:
    """Coerce one spec value: ``int``, ``float``, ``true``/``false``,
    else the string itself (the positional grammar's coercion plus
    spelled-out booleans)."""
    for kind in (int, float):
        try:
            return kind(text)
        except ValueError:
            continue
    if text == "true":
        return True
    if text == "false":
        return False
    return text


def format_value(value: object) -> str:
    """Render one value back into spec-string form."""
    if value is True:
        return "true"
    if value is False:
        return "false"
    return str(value)


def is_kv_tail(tail: str, *, keys: Sequence[SpecKey] = ()) -> bool:
    """Whether a spec tail is in key=value form.

    The first comma-segment decides: ``<identifier>=...`` means
    key=value.  When ``keys`` is given (raw-tail connectors, whose tail
    is normally an opaque path), the identifier must additionally name
    a declared key — ``"csv:path=data.csv"`` is key=value while
    ``"csv:data=1.csv"`` stays a path.
    """
    head = tail.split(",", 1)[0]
    name, sep, _value = head.partition("=")
    if not sep or not _KV_KEY.match(name):
        return False
    if keys:
        return name in {key.name for key in keys}
    return True


def parse_kv_tail(tail: str, *, where: str) -> List[Tuple[str, str]]:
    """Split a key=value tail into ordered ``(key, raw_value)`` pairs.

    Duplicate keys and segments that are not ``key=value`` are parse
    errors; ``where`` names the offending spec in the message.
    """
    pairs: List[Tuple[str, str]] = []
    seen = set()
    for segment in tail.split(","):
        key, sep, value = segment.partition("=")
        if not sep or not _KV_KEY.match(key):
            raise ValueError(
                f"{where}: segment {segment!r} is not 'key=value'; "
                f"expected 'name:key=value[,key=value...]'"
            )
        if key in seen:
            raise ValueError(f"{where}: duplicate key {key!r}")
        seen.add(key)
        pairs.append((key, value))
    return pairs


def kv_kwargs(
    tail: str,
    keys: Sequence[SpecKey],
    *,
    where: str,
) -> dict:
    """Parse a key=value tail against a spec name's declared keys.

    Returns factory keyword arguments (keys mapped through their
    ``dest``, values converted).  Unknown keys raise listing every
    valid key for the name, mirroring the registries' unknown-name
    error style.
    """
    by_name = {key.name: key for key in keys}
    kwargs = {}
    for name, value in parse_kv_tail(tail, where=where):
        spec_key = by_name.get(name)
        if spec_key is None:
            valid = ", ".join(sorted(by_name)) or "(none)"
            raise ValueError(
                f"unknown key {name!r} for {where}; valid keys: {valid}"
            )
        try:
            kwargs[spec_key.destination] = spec_key.value(value)
        except ValueError as error:
            raise ValueError(f"{where}: key {name!r}: {error}") from None
    return kwargs


def format_spec(name: str, pairs: Sequence[Tuple[str, object]]) -> str:
    """Render ``(name, pairs)`` into canonical key=value spec form.

    Keys are sorted, so ``parse → format → parse`` is a fixed point.
    """
    if not pairs:
        return name
    rendered = ",".join(
        f"{key}={format_value(value)}"
        for key, value in sorted(pairs, key=lambda pair: pair[0])
    )
    return f"{name}:{rendered}"


def suggest_kv_spec(
    name: str,
    args: Sequence[object],
    keys: Sequence[SpecKey],
) -> Optional[str]:
    """The key=value spelling of a legacy positional spec.

    Positional arguments zip onto the declared keys in order; when the
    shapes do not line up (more arguments than keys), there is no
    faithful suggestion and the caller warns without one.
    """
    if len(args) > len(keys):
        return None
    pairs = [
        (key.name, argument)
        for key, argument in zip(keys, args)
    ]
    return f"{name}:" + ",".join(
        f"{key}={format_value(value)}" for key, value in pairs
    )


def warn_legacy_spec(
    kind: str,
    spec: str,
    suggestion: Optional[str],
    *,
    stacklevel: int = 5,
) -> None:
    """One pointed warning for a positional spec tail.

    Emitted at most once per callsite (standard ``warnings`` registry
    semantics), silent inside the service layer's
    :func:`~repro.utils.deprecation.suppress_imperative_warnings`
    block so spec-built services never double-warn.
    """
    hint = (
        f": use {suggestion!r} instead"
        if suggestion is not None
        else ""
    )
    warn_superseded(
        f"positional {kind} spec {spec!r} is superseded by the "
        f"key=value spec grammar{hint} (see repro.service.ServiceSpec "
        "spec grammar).",
        stacklevel=stacklevel,
    )
