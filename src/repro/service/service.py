"""The compiled service: one coherent lifecycle over the runtime.

:class:`StreamService` compiles a :class:`~repro.service.spec.ServiceSpec`
into the existing runtime — the engine, pipeline, executors and
sessions from PRs 1–3 — and exposes the full lifecycle behind one
surface:

- :meth:`run` / :meth:`run_indicators` — the batch service phase under
  the spec's executor;
- :meth:`open_session` / :meth:`open_async_session` — push-based
  ingestion, resumable through :meth:`checkpoint` /
  :meth:`StreamService.resume` (the PR-3 ``snapshot()``/``restore()``
  protocol);
- :meth:`sweep` — the (mechanism × ε) evaluation grid, bridging into
  :class:`~repro.experiments.runner.WorkloadEvaluation`.

Everything is driven by the spec's seed, so a service rebuilt from the
same JSON blob reproduces its runs bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Union

from repro.cep.engine import CEPEngine, EngineReport
from repro.service.registry import (
    MechanismContext,
    build_executor_from_spec,
    build_mechanism_from_spec,
)
from repro.service.spec import ServiceSpec
from repro.streams.indicator import IndicatorStream
from repro.streams.stream import EventStream
from repro.utils.deprecation import suppress_imperative_warnings
from repro.utils.rng import RngLike

__all__ = ["StreamService"]


class StreamService:
    """A private stream service stood up from one declarative spec.

    Construction compiles the spec: the alphabet, patterns, queries,
    quality requirement and accounting budget configure a
    :class:`~repro.cep.engine.CEPEngine`; the mechanism and executor
    spec strings resolve through the plugin registries.  ``history``
    supplies historical windows for data-driven mechanisms (the
    adaptive PPM's Algorithm 1 fit).
    """

    def __init__(
        self,
        spec: Union[ServiceSpec, Mapping, str],
        *,
        history: Optional[IndicatorStream] = None,
    ):
        if isinstance(spec, str):
            spec = ServiceSpec.from_json(spec)
        elif isinstance(spec, Mapping):
            spec = ServiceSpec.from_dict(spec)
        if not isinstance(spec, ServiceSpec):
            raise TypeError(
                "StreamService takes a ServiceSpec (or its dict/JSON "
                f"form), got {type(spec).__name__}"
            )
        self._spec = spec
        self._history = history
        self._session = None
        self._session_kind: Optional[str] = None
        self._session_options: Dict = {}
        alphabet = spec.event_alphabet()
        with suppress_imperative_warnings():
            engine = CEPEngine(alphabet)
            for pattern in spec.pattern_objects():
                engine.register_private_pattern(pattern)
            for query in spec.query_objects():
                engine.register_query(query)
            engine.set_quality_requirement(spec.quality.to_requirement())
            if spec.mechanism is not None:
                engine.attach_mechanism(
                    build_mechanism_from_spec(
                        spec.mechanism,
                        self._mechanism_context(),
                        **spec.mechanism_options,
                    )
                )
            if spec.accounting is not None:
                engine.enable_accounting(spec.accounting)
        self._engine = engine
        self._executor = build_executor_from_spec(
            spec.executor, **spec.executor_options
        )

    def _mechanism_context(self) -> MechanismContext:
        spec = self._spec
        extras = {}
        if self._history is not None:
            # Deliberately NOT exported as "n_windows": that extra is the
            # *evaluation* horizon (the user-level budget split), and the
            # history length is unrelated to it — user-rr specs must name
            # their horizon explicitly (n_windows= in the options).
            extras["history"] = self._history
        return MechanismContext(
            alphabet=spec.event_alphabet(),
            private_patterns=spec.pattern_objects(),
            target_patterns=tuple(
                query.pattern for query in spec.query_objects()
            ),
            alpha=spec.quality.alpha,
            extras=extras,
        )

    # -- introspection -------------------------------------------------

    @property
    def spec(self) -> ServiceSpec:
        """The declarative spec this service was compiled from."""
        return self._spec

    @property
    def engine(self) -> CEPEngine:
        """The compiled engine (the spec's runtime artifact)."""
        return self._engine

    @property
    def mechanism(self):
        """The instantiated privacy mechanism (``None`` unprotected)."""
        return self._engine.mechanism

    @property
    def executor(self):
        """The instantiated runtime executor."""
        return self._executor

    @property
    def accountant(self):
        """The budget ledger (``None`` without ``accounting=``)."""
        return self._engine.accountant

    @property
    def session(self):
        """The most recently opened (or resumed) session, if any."""
        return self._session

    def _seeded(self, rng: RngLike) -> RngLike:
        return self._spec.seed if rng is None else rng

    # -- batch service phase -------------------------------------------

    def run(
        self,
        source,
        *,
        rng: RngLike = None,
        window=None,
    ) -> EngineReport:
        """The full service phase over ``source``.

        ``source`` may be raw events (an
        :class:`~repro.streams.stream.EventStream`, windowed by the
        spec's ``window`` grammar or an explicit ``window=`` assigner),
        an :class:`~repro.streams.indicator.IndicatorStream`, or
        per-window event-type collections.  Runs under the spec's
        executor and seed (``rng=`` overrides the seed for one run) and
        answers every declared query; accounting is charged when
        enabled.
        """
        if isinstance(source, EventStream):
            assigner = (
                window if window is not None else self._spec.window_assigner()
            )
            if assigner is None:
                raise ValueError(
                    "running from raw events needs a window: declare "
                    "window= on the spec (e.g. 'tumbling:10') or pass "
                    "window= here"
                )
            return self._engine.process_events(
                source,
                assigner,
                rng=self._seeded(rng),
                executor=self._executor,
            )
        if not isinstance(source, IndicatorStream):
            source = self._engine.service_pipeline().indicators_from(source)
        return self.run_indicators(source, rng=rng)

    def run_indicators(
        self, stream: IndicatorStream, *, rng: RngLike = None
    ) -> EngineReport:
        """The service phase over an already-extracted indicator stream."""
        return self._engine.process_indicators(
            stream, rng=self._seeded(rng), executor=self._executor
        )

    # -- push-based sessions -------------------------------------------

    def open_session(self, *, rng: RngLike = None):
        """Open a synchronous push-based session (window in, answers out).

        Uses the spec seed unless overridden; the session is retained on
        :attr:`session` and is what :meth:`checkpoint` snapshots.
        """
        from repro.cep.online import OnlineSession

        with suppress_imperative_warnings():
            session = OnlineSession(self._engine, rng=self._seeded(rng))
        self._session = session
        self._session_kind = "online"
        return session

    def open_async_session(
        self,
        *,
        rng: RngLike = None,
        max_pending: int = 256,
        max_batch: int = 64,
        record: bool = False,
    ):
        """Open a backpressured asyncio ingestion session."""
        from repro.cep.async_session import AsyncSession

        with suppress_imperative_warnings():
            session = AsyncSession(
                self._engine,
                rng=self._seeded(rng),
                max_pending=max_pending,
                max_batch=max_batch,
                record=record,
            )
        self._session = session
        self._session_kind = "async"
        # Remembered so checkpoints can rebuild an equivalent session
        # (a resumed async session must keep recording, queue bounds...).
        self._session_options = {
            "max_pending": max_pending,
            "max_batch": max_batch,
            "record": record,
        }
        return session

    # -- checkpoint / resume -------------------------------------------

    def checkpoint(self) -> Dict:
        """A picklable checkpoint of the open session plus its spec.

        Captures the spec (as a dict) and the session's full release
        state — window counter, scheduler state, accounting trace and
        rng position (see the PR-3 ``snapshot()`` protocol).  Restoring
        it via :meth:`resume` continues mid-stream with exactly the
        randomness and budget state an uninterrupted run would have
        had.  Async sessions must be quiescent (all submitted windows
        answered).
        """
        if self._session is None:
            raise RuntimeError(
                "no open session to checkpoint; call open_session() or "
                "open_async_session() first"
            )
        checkpoint = {
            "format": 1,
            "kind": self._session_kind,
            "spec": self._spec.to_dict(),
            "session": self._session.snapshot(),
        }
        if self._session_kind == "async":
            checkpoint["session_options"] = dict(self._session_options)
        return checkpoint

    @classmethod
    def resume(
        cls,
        spec: Union[ServiceSpec, Mapping, str],
        checkpoint: Mapping,
        *,
        history: Optional[IndicatorStream] = None,
    ) -> "StreamService":
        """Rebuild a service and continue from a :meth:`checkpoint`.

        ``spec`` must equal the checkpointed spec (the checkpoint's
        release state is only meaningful under the same configuration
        and seed).  Returns the rebuilt service with the restored
        session available on :attr:`session`.
        """
        if isinstance(spec, str):
            spec = ServiceSpec.from_json(spec)
        elif isinstance(spec, Mapping):
            spec = ServiceSpec.from_dict(spec)
        recorded = checkpoint.get("spec")
        if recorded is not None and ServiceSpec.from_dict(recorded) != spec:
            raise ValueError(
                "checkpoint was taken under a different spec; resume "
                "with the spec recorded in the checkpoint"
            )
        service = cls(spec, history=history)
        kind = checkpoint.get("kind", "online")
        if kind == "async":
            session = service.open_async_session(
                **checkpoint.get("session_options", {})
            )
        else:
            session = service.open_session()
        session.restore(checkpoint["session"])
        return service

    # -- evaluation ----------------------------------------------------

    def sweep(
        self,
        epsilon_grid,
        *,
        stream: IndicatorStream,
        mechanisms=("uniform-ppm", "bd", "ba", "landmark", "event-rr",
                    "user-rr"),
        history: Optional[IndicatorStream] = None,
        w: int = 10,
        n_trials: int = 5,
        conversion_mode: str = "worst_case",
        rng: RngLike = None,
        workers: Optional[int] = None,
        backend: str = "thread",
        executor=None,
    ) -> List:
        """Evaluate mechanism specs over an ε grid on this service's
        patterns and queries.

        Bridges into the experiment harness: the spec's patterns and
        queries plus the given evaluation ``stream`` form a
        :class:`~repro.datasets.workload.Workload`, and every
        (mechanism, ε) cell is built through the mechanism registry and
        measured by
        :meth:`~repro.experiments.runner.WorkloadEvaluation.sweep`
        (``workers=`` fans the grid out; parallel results are
        bit-identical to serial).  ``history`` (or the service's build
        history) enables ``"adaptive-ppm"`` cells; ``executor`` may be
        an executor object or a registered executor spec string and
        defaults to this service's executor.
        """
        from repro.datasets.workload import Workload
        from repro.experiments.runner import WorkloadEvaluation
        from repro.service.registry import validate_mechanism_spec

        history = history if history is not None else self._history
        if history is None:
            data_driven = [
                mechanism
                for mechanism in mechanisms
                if validate_mechanism_spec(mechanism) == "adaptive-ppm"
            ]
            if data_driven:
                raise ValueError(
                    f"sweeping {data_driven} needs historical windows "
                    "disjoint from the evaluation stream (fitting on "
                    "the stream under evaluation would leak); pass "
                    "history= here or at build time"
                )
        workload = Workload(
            name="service",
            stream=stream,
            # Non-adaptive cells never read the history; reusing the
            # evaluation stream keeps the workload constructible.
            history=history if history is not None else stream,
            private_patterns=list(self._spec.pattern_objects()),
            target_patterns=[
                query.pattern for query in self._spec.query_objects()
            ],
            w=w,
        )
        if isinstance(executor, str):
            executor = build_executor_from_spec(executor)
        elif executor is None:
            executor = self._executor
        return WorkloadEvaluation(workload).sweep(
            epsilon_grid=epsilon_grid,
            mechanisms=list(mechanisms),
            alpha=self._spec.quality.alpha,
            n_trials=n_trials,
            conversion_mode=conversion_mode,
            rng=self._seeded(rng),
            workers=workers,
            backend=backend,
            executor=executor,
        )
