"""The compiled service: one coherent lifecycle over the runtime.

:class:`StreamService` compiles a :class:`~repro.service.spec.ServiceSpec`
into the existing runtime — the engine, pipeline, executors and
sessions from PRs 1–3 — and exposes the full lifecycle behind one
surface:

- :meth:`run` / :meth:`run_indicators` — the batch service phase under
  the spec's executor;
- :meth:`open_session` / :meth:`open_async_session` — push-based
  ingestion, resumable through :meth:`checkpoint` /
  :meth:`StreamService.resume` (the PR-3 ``snapshot()``/``restore()``
  protocol);
- :meth:`pump` — continuous ingestion from a declarative *source
  connector* into a declarative *sink connector* (:mod:`repro.io`),
  with the async session's bounded queue as the backpressure
  boundary; checkpoints additionally capture the in-flight source
  offset;
- :meth:`sweep` — the (mechanism × ε) evaluation grid, bridging into
  :class:`~repro.experiments.runner.WorkloadEvaluation`.

Everything is driven by the spec's seed, so a service rebuilt from the
same JSON blob reproduces its runs bit for bit.
"""

from __future__ import annotations

import asyncio
import time

from typing import Dict, List, Mapping, Optional, Union

from repro.cep.engine import CEPEngine, EngineReport
from repro.obs.metrics import default_registry
from repro.obs.tracing import current_recorder
from repro.service.registry import (
    MechanismContext,
    build_executor_from_spec,
    build_mechanism_from_spec,
)
from repro.service.spec import ServiceSpec
from repro.streams.indicator import IndicatorStream
from repro.streams.stream import EventStream
from repro.utils.deprecation import suppress_imperative_warnings
from repro.utils.rng import RngLike

__all__ = ["StreamService"]


class StreamService:
    """A private stream service stood up from one declarative spec.

    Construction compiles the spec: the alphabet, patterns, queries,
    quality requirement and accounting budget configure a
    :class:`~repro.cep.engine.CEPEngine`; the mechanism and executor
    spec strings resolve through the plugin registries.  ``history``
    supplies historical windows for data-driven mechanisms (the
    adaptive PPM's Algorithm 1 fit).
    """

    def __init__(
        self,
        spec: Union[ServiceSpec, Mapping, str],
        *,
        history: Optional[IndicatorStream] = None,
    ):
        if isinstance(spec, str):
            spec = ServiceSpec.from_json(spec)
        elif isinstance(spec, Mapping):
            spec = ServiceSpec.from_dict(spec)
        if not isinstance(spec, ServiceSpec):
            raise TypeError(
                "StreamService takes a ServiceSpec (or its dict/JSON "
                f"form), got {type(spec).__name__}"
            )
        self._spec = spec
        self._history = history
        self._session = None
        self._session_kind: Optional[str] = None
        self._session_options: Dict = {}
        self._source = None
        self._sink = None
        #: Set by resume(): the pre-crash run already egressed output,
        #: so the next pump must append to (not truncate) file sinks.
        self._sink_append = False
        alphabet = spec.event_alphabet()
        with suppress_imperative_warnings():
            engine = CEPEngine(alphabet)
            for pattern in spec.pattern_objects():
                engine.register_private_pattern(pattern)
            for query in spec.query_objects():
                engine.register_query(query)
            engine.set_quality_requirement(spec.quality.to_requirement())
            if spec.mechanism is not None:
                engine.attach_mechanism(
                    build_mechanism_from_spec(
                        spec.mechanism,
                        self._mechanism_context(),
                        **spec.mechanism_options,
                    )
                )
            if spec.accounting is not None:
                engine.enable_accounting(spec.accounting)
            # Inside the suppression block: the spec already warned
            # about a legacy positional executor spec when it was
            # validated, so re-resolving it here must stay silent.
            self._executor = build_executor_from_spec(
                spec.executor, **spec.executor_options
            )
        self._engine = engine

    def _mechanism_context(self) -> MechanismContext:
        spec = self._spec
        extras = {}
        if self._history is not None:
            # Deliberately NOT exported as "n_windows": that extra is the
            # *evaluation* horizon (the user-level budget split), and the
            # history length is unrelated to it — user-rr specs must name
            # their horizon explicitly (n_windows= in the options).
            extras["history"] = self._history
        return MechanismContext(
            alphabet=spec.event_alphabet(),
            private_patterns=spec.pattern_objects(),
            target_patterns=tuple(
                query.pattern for query in spec.query_objects()
            ),
            alpha=spec.quality.alpha,
            extras=extras,
        )

    # -- introspection -------------------------------------------------

    @property
    def spec(self) -> ServiceSpec:
        """The declarative spec this service was compiled from."""
        return self._spec

    @property
    def engine(self) -> CEPEngine:
        """The compiled engine (the spec's runtime artifact)."""
        return self._engine

    @property
    def mechanism(self):
        """The instantiated privacy mechanism (``None`` unprotected)."""
        return self._engine.mechanism

    @property
    def executor(self):
        """The instantiated runtime executor."""
        return self._executor

    @property
    def accountant(self):
        """The budget ledger (``None`` without ``accounting=``)."""
        return self._engine.accountant

    @property
    def session(self):
        """The most recently opened (or resumed) session, if any."""
        return self._session

    def _seeded(self, rng: RngLike) -> RngLike:
        return self._spec.seed if rng is None else rng

    # -- connector compilation -----------------------------------------

    @property
    def last_source(self):
        """The active *streaming* source (pump/resume), if any.

        Batch :meth:`run` passes are independent and never appear
        here; this is the source whose offset :meth:`checkpoint`
        records.
        """
        return self._source

    @property
    def last_sink(self):
        """The most recently compiled sink connector, if any.

        After a :meth:`run`/:meth:`pump` with a ``sink=`` (spec field
        or argument), ``service.last_sink.result()`` holds whatever
        the sink accumulated (the memory sink's collected stream, the
        metrics sink's quality aggregate, ...).
        """
        return self._sink

    def _compile_source(
        self, source, *, reuse: bool = False, track: bool = True
    ):
        """Resolve a source argument/spec into a bound StreamSource.

        ``reuse=True`` continues the service's active source when no
        argument is given (a resumed/partially pumped stream picks up
        exactly where it left off instead of starting over).
        ``track=False`` keeps the compiled source off
        :attr:`last_source` — batch runs are independent full passes,
        and must not masquerade as the session's streaming position
        when a checkpoint records its source offset.
        """
        from repro.io.registry import resolve_source
        from repro.io.sources import MemorySource, StreamSource

        spec = self._spec
        if source is None:
            if reuse and self._source is not None:
                return self._source
            if spec.source is None:
                raise ValueError(
                    "no data to serve: pass a stream/source here or "
                    "declare source= on the spec (e.g. 'csv:<path>')"
                )
            # Spec-declared sources were validated (and warned, if
            # positional) at ServiceSpec construction: stay silent.
            with suppress_imperative_warnings():
                source = resolve_source(spec.source, **spec.source_options)
        elif isinstance(source, str):
            source = resolve_source(source)
        elif not isinstance(source, StreamSource):
            source = MemorySource(source)
        source = source.bind(self._engine.alphabet)
        if track:
            self._source = source
        return source

    def _compile_sink(self, sink, *, append: bool = False):
        """Resolve a sink argument/spec and open it (``None`` passes)."""
        from repro.io.registry import resolve_sink
        from repro.io.sinks import StreamSink

        spec = self._spec
        if sink is None:
            if spec.sink is None:
                return None
            # Spec-declared sinks were validated (and warned, if
            # positional) at ServiceSpec construction: stay silent.
            with suppress_imperative_warnings():
                sink = resolve_sink(spec.sink, **spec.sink_options)
        elif isinstance(sink, str):
            sink = resolve_sink(sink)
        elif not isinstance(sink, StreamSink):
            raise TypeError(
                "sink must be a registered sink spec string or a "
                f"StreamSink, got {type(sink).__name__}"
            )
        sink.open(
            alphabet=self._engine.alphabet,
            query_names=tuple(
                query.name for query in self._spec.query_objects()
            ),
            append=append,
        )
        self._sink = sink
        return sink

    def _egress_report(self, report: EngineReport, sink) -> None:
        """Write a batch report through a sink, window by window."""
        matrix = report.perturbed.matrix_view()
        names = list(report.answers)
        try:
            for index in range(matrix.shape[0]):
                answers = {
                    name: bool(report.answers[name].detections[index])
                    for name in names
                }
                truth = None
                if sink.wants_truth:
                    truth = {
                        name: bool(report.true_answers[name].detections[index])
                        for name in names
                    }
                sink.write(index, matrix[index], answers, truth)
        finally:
            sink.close()

    # -- batch service phase -------------------------------------------

    def run(
        self,
        source=None,
        *,
        rng: RngLike = None,
        window=None,
        sink=None,
    ) -> EngineReport:
        """The full service phase over ``source``.

        ``source`` may be raw events (an
        :class:`~repro.streams.stream.EventStream`, windowed by the
        spec's ``window`` grammar or an explicit ``window=`` assigner),
        an :class:`~repro.streams.indicator.IndicatorStream`, per-window
        event-type collections, a :class:`~repro.io.StreamSource`, or a
        registered source spec string; omitted, the spec's own
        ``source=`` connector supplies the windows.  Runs under the
        spec's executor and seed (``rng=`` overrides the seed for one
        run) and answers every declared query; accounting is charged
        when enabled.  The released stream and answers are additionally
        egressed through ``sink`` (or the spec's ``sink=``) when one is
        declared; the opened connector stays on :attr:`last_sink`.
        """
        from repro.io.sources import StreamSource

        if isinstance(source, EventStream):
            assigner = (
                window if window is not None else self._spec.window_assigner()
            )
            if assigner is None:
                raise ValueError(
                    "running from raw events needs a window: declare "
                    "window= on the spec (e.g. 'tumbling:10') or pass "
                    "window= here"
                )
            report = self._engine.process_events(
                source,
                assigner,
                rng=self._seeded(rng),
                executor=self._executor,
            )
            return self._after_run(report, sink)
        if source is None or isinstance(source, (str, StreamSource)):
            # A batch run is an independent full pass over the data; it
            # does not advance (or pose as) the session's streaming
            # position — only pump() moves the checkpointed offset.
            source = self._compile_source(
                source, track=False
            ).indicator_stream()
        elif not isinstance(source, IndicatorStream):
            source = self._engine.service_pipeline().indicators_from(source)
        return self._after_run(self.run_indicators(source, rng=rng), sink)

    def _after_run(self, report: EngineReport, sink) -> EngineReport:
        if sink is None and self._sink is not None:
            # Continue the service's active egress (a resumed or
            # already-pumping service must append, not truncate).
            compiled = self._compile_sink(self._sink, append=True)
        else:
            compiled = self._compile_sink(sink, append=self._sink_append)
        if compiled is not None:
            self._egress_report(report, compiled)
        return report

    def run_indicators(
        self, stream: IndicatorStream, *, rng: RngLike = None
    ) -> EngineReport:
        """The service phase over an already-extracted indicator stream."""
        return self._engine.process_indicators(
            stream, rng=self._seeded(rng), executor=self._executor
        )

    # -- push-based sessions -------------------------------------------

    def open_session(self, *, rng: RngLike = None):
        """Open a synchronous push-based session (window in, answers out).

        Uses the spec seed unless overridden; the session is retained on
        :attr:`session` and is what :meth:`checkpoint` snapshots.
        """
        from repro.cep.online import OnlineSession

        with suppress_imperative_warnings():
            session = OnlineSession(self._engine, rng=self._seeded(rng))
        self._session = session
        self._session_kind = "online"
        return session

    def open_async_session(
        self,
        *,
        rng: RngLike = None,
        max_pending: int = 256,
        max_batch: int = 64,
        record: bool = False,
    ):
        """Open a backpressured asyncio ingestion session."""
        from repro.cep.async_session import AsyncSession

        with suppress_imperative_warnings():
            session = AsyncSession(
                self._engine,
                rng=self._seeded(rng),
                max_pending=max_pending,
                max_batch=max_batch,
                record=record,
            )
        self._session = session
        self._session_kind = "async"
        # Remembered so checkpoints can rebuild an equivalent session
        # (a resumed async session must keep recording, queue bounds...).
        self._session_options = {
            "max_pending": max_pending,
            "max_batch": max_batch,
            "record": record,
        }
        return session

    # -- continuous ingestion (source → session → sink) ----------------

    async def pump(
        self,
        source=None,
        *,
        sink=None,
        rng: RngLike = None,
        max_pending: int = 256,
        max_batch: int = 64,
        max_windows: Optional[int] = None,
        append_sink: bool = False,
        collect: bool = True,
    ) -> Optional[Dict[str, List[bool]]]:
        """Drive a source connector through an async session into a sink.

        The end-to-end streaming pipeline: windows are drawn from
        ``source`` (a :class:`~repro.io.StreamSource`, a registered
        spec string, in-memory data, or — omitted — the spec's own
        ``source=``), submitted to a backpressured
        :class:`~repro.cep.async_session.AsyncSession` (reusing the
        open/restored one when present, else opening a fresh one with
        ``max_pending``/``max_batch``), and every answered window is
        egressed through ``sink`` (or the spec's ``sink=``) in
        submission order.  The session's bounded queue is the
        flow-control boundary: when the mechanism falls behind,
        ``submit`` suspends the pump, which stops drawing from the
        source — a ``queue:`` source then stops taking from its live
        queue and the producer blocks on its own ``put``.

        ``max_windows`` stops after that many windows, leaving the
        source mid-stream (the gateway serves in slices this way);
        ``append_sink`` continues a previous run's sink output instead
        of starting fresh.  Returns the per-query answer lists in
        submission order, or ``None`` with ``collect=False`` (unbounded
        feeds should not accumulate answers in memory).
        """
        source = self._compile_source(source, reuse=True)
        if sink is None and self._sink is not None:
            # Continue the service's active sink (a sliced/cancelled
            # pump keeps appending to the same egress, like the source
            # keeps emitting the same stream).
            compiled_sink = self._compile_sink(self._sink, append=True)
        else:
            compiled_sink = self._compile_sink(
                sink, append=append_sink or self._sink_append
            )
        session = None
        if (
            self._session is not None
            and self._session_kind == "async"
            and not self._session._closed
        ):
            session = self._session
            if session._queue is not None and (
                session._drainer is None or session._drainer.done()
            ):
                # The session was started under a previous event loop
                # whose teardown killed its drainer (each asyncio.run
                # cancels pending tasks).  Between pumps the session is
                # quiescent, so rebuilding it from its snapshot is
                # exact — sliced serving can span asyncio.run calls.
                # The rebuild continues the SAME logical session, so
                # the construction-time accountant charge must not
                # land a second time: restore the ledger afterwards.
                snapshot = session.snapshot()
                accountant = self._engine.accountant
                ledger = None
                if accountant is not None:
                    # Park the ledger while the replacement session is
                    # constructed (construction charges — and with the
                    # session's own spend already recorded, would raise
                    # or double-count), then put it back verbatim.
                    ledger = accountant.spends
                    accountant.reset()
                try:
                    session = self.open_async_session(
                        **self._session_options
                    )
                finally:
                    if accountant is not None:
                        accountant._spends = ledger
                session.restore(snapshot)
        if session is None:
            session = self.open_async_session(
                rng=rng, max_pending=max_pending, max_batch=max_batch
            )
        matcher = self._engine.service_pipeline().matcher
        wants_truth = compiled_sink is not None and compiled_sink.wants_truth
        truths: Dict[int, Dict[str, bool]] = {}
        if compiled_sink is not None:
            # Egress happens inside the drainer, window by window in
            # submission order, on the *released* rows — the sink never
            # sees original data and nothing is buffered beyond the
            # bounded queue.
            def egress(index, released_row, window_answers):
                compiled_sink.write(
                    index, released_row, window_answers, truths.pop(index, None)
                )

            session._on_release = egress
        pending: List = []
        answers: Optional[Dict[str, List[bool]]] = (
            {name: [] for name in matcher.query_names} if collect else None
        )

        async def settle(future) -> None:
            window_answers = await future
            if answers is not None:
                for name, value in window_answers.items():
                    answers[name].append(value)

        pumped = 0
        pump_started = time.perf_counter()
        rows = source.arows()
        try:
            async for row in rows:
                block = row.reshape(1, -1)
                if wants_truth:
                    truths[session.windows_submitted] = {
                        name: bool(vector[0])
                        for name, vector in matcher.answer(block).items()
                    }
                try:
                    future = await session._submit_row(block)
                except BaseException:
                    # Cancelled/failed inside submit: the drawn row was
                    # never accepted — push it back so neither a later
                    # pump on this source nor a checkpointed fresh one
                    # skips a window no run released.
                    source.unemit(row)
                    truths.pop(session.windows_submitted, None)
                    raise
                pending.append(future)
                while pending and (
                    pending[0].done() or len(pending) > session._max_pending
                ):
                    await settle(pending.pop(0))
                pumped += 1
                if max_windows is not None and pumped >= max_windows:
                    break
            for future in pending:
                await settle(future)
        finally:
            # Close the generator *here*, not at garbage collection: a
            # max_windows break leaves it suspended mid-yield, and a
            # source with an overlapped fetch in flight (broker) must
            # settle it before checkpoint_mark() or a fresh generator
            # reuses the connection.
            try:
                await rows.aclose()
            except Exception:
                pass
            # Windows the session already accepted will be released by
            # the drainer regardless; wait for quiescence so a
            # cancelled pump leaves the session checkpointable and
            # every released window egressed before the sink closes
            # (sink, session counters and offsets stay consistent).
            drainer = session._drainer
            while (
                session.windows_processed < session.windows_submitted
                and drainer is not None
                and not drainer.done()
            ):
                await asyncio.sleep(0)
            if compiled_sink is not None:
                session._on_release = None
                compiled_sink.close()
            # Timed manually (not via trace_span) so the cleanup above
            # stays inside the measured window and an exception in it
            # cannot leave a live span on the recorder's parent stack.
            recorder = current_recorder()
            if recorder is not None:
                recorder.record_span(
                    "service.pump",
                    pump_started,
                    time.perf_counter(),
                    windows=pumped,
                    source=type(source).__name__,
                )
            default_registry().counter(
                "repro_pump_windows_total",
                "Windows drawn from sources by StreamService.pump.",
            ).inc(pumped)
        return answers

    # -- checkpoint / resume -------------------------------------------

    def checkpoint(self) -> Dict:
        """A picklable checkpoint of the open session plus its spec.

        Captures the spec (as a dict) and the session's full release
        state — window counter, scheduler state, accounting trace and
        rng position (see the PR-3 ``snapshot()`` protocol).  Restoring
        it via :meth:`resume` continues mid-stream with exactly the
        randomness and budget state an uninterrupted run would have
        had.  Async sessions must be quiescent (all submitted windows
        answered).
        """
        if self._session is None:
            raise RuntimeError(
                "no open session to checkpoint; call open_session() or "
                "open_async_session() first"
            )
        checkpoint = {
            "format": 1,
            "kind": self._session_kind,
            "spec": self._spec.to_dict(),
            "session": self._session.snapshot(),
        }
        if self._session_kind == "async":
            checkpoint["session_options"] = dict(self._session_options)
        if self._source is not None:
            # At-least-once sources commit at exactly this boundary:
            # the broker source acks everything emitted so far, so an
            # entry is acked iff a checkpoint captures its window.  A
            # failed commit raises here and no checkpoint is produced.
            self._source.checkpoint_mark()
            # The in-flight ingestion position: a resumed service skips
            # a fresh source here and continues with exactly the
            # windows an uninterrupted run would have seen next.
            checkpoint["source_offset"] = self._source.offset
        # Whether output was already egressed (a resumed pump must then
        # append to file sinks instead of truncating them).
        checkpoint["sink_opened"] = self._sink is not None
        return checkpoint

    @classmethod
    def resume(
        cls,
        spec: Union[ServiceSpec, Mapping, str],
        checkpoint: Mapping,
        *,
        history: Optional[IndicatorStream] = None,
        source=None,
    ) -> "StreamService":
        """Rebuild a service and continue from a :meth:`checkpoint`.

        ``spec`` must equal the checkpointed spec (the checkpoint's
        release state is only meaningful under the same configuration
        and seed).  Returns the rebuilt service with the restored
        session available on :attr:`session`.

        When the checkpoint carries an in-flight source offset (taken
        mid-:meth:`pump`), the source — ``source=`` here, or the
        spec's own ``source=`` connector — is rebuilt and skipped to
        that offset, so the next :meth:`pump` continues with exactly
        the windows an uninterrupted run would have seen (live
        ``queue:`` feeds cannot seek; bind a fresh queue instead).
        """
        if isinstance(spec, str):
            spec = ServiceSpec.from_json(spec)
        elif isinstance(spec, Mapping):
            spec = ServiceSpec.from_dict(spec)
        recorded = checkpoint.get("spec")
        if recorded is not None and ServiceSpec.from_dict(recorded) != spec:
            raise ValueError(
                "checkpoint was taken under a different spec; resume "
                "with the spec recorded in the checkpoint"
            )
        service = cls(spec, history=history)
        kind = checkpoint.get("kind", "online")
        if kind == "async":
            session = service.open_async_session(
                **checkpoint.get("session_options", {})
            )
        else:
            session = service.open_session()
        session.restore(checkpoint["session"])
        offset = checkpoint.get("source_offset")
        if source is not None or (
            offset is not None and spec.source is not None
        ):
            compiled = service._compile_source(source)
            if offset:
                if compiled.seekable:
                    compiled.skip(int(offset))
                else:
                    # A live feed supplies the remainder itself, but the
                    # count must continue where the pre-crash run left
                    # off, or later checkpoints would under-report it.
                    compiled._offset = int(offset)
        service._sink_append = bool(checkpoint.get("sink_opened"))
        return service

    # -- evaluation ----------------------------------------------------

    def sweep(
        self,
        epsilon_grid,
        *,
        stream: IndicatorStream,
        mechanisms=("uniform-ppm", "bd", "ba", "landmark", "event-rr",
                    "user-rr"),
        history: Optional[IndicatorStream] = None,
        w: int = 10,
        n_trials: int = 5,
        conversion_mode: str = "worst_case",
        rng: RngLike = None,
        workers: Optional[int] = None,
        backend: str = "thread",
        executor=None,
    ) -> List:
        """Evaluate mechanism specs over an ε grid on this service's
        patterns and queries.

        Bridges into the experiment harness: the spec's patterns and
        queries plus the given evaluation ``stream`` form a
        :class:`~repro.datasets.workload.Workload`, and every
        (mechanism, ε) cell is built through the mechanism registry and
        measured by
        :meth:`~repro.experiments.runner.WorkloadEvaluation.sweep`
        (``workers=`` fans the grid out; parallel results are
        bit-identical to serial).  ``history`` (or the service's build
        history) enables ``"adaptive-ppm"`` cells; ``executor`` may be
        an executor object or a registered executor spec string and
        defaults to this service's executor.
        """
        from repro.datasets.workload import Workload
        from repro.experiments.runner import WorkloadEvaluation
        from repro.service.registry import validate_mechanism_spec

        history = history if history is not None else self._history
        if history is None:
            data_driven = [
                mechanism
                for mechanism in mechanisms
                if validate_mechanism_spec(mechanism) == "adaptive-ppm"
            ]
            if data_driven:
                raise ValueError(
                    f"sweeping {data_driven} needs historical windows "
                    "disjoint from the evaluation stream (fitting on "
                    "the stream under evaluation would leak); pass "
                    "history= here or at build time"
                )
        workload = Workload(
            name="service",
            stream=stream,
            # Non-adaptive cells never read the history; reusing the
            # evaluation stream keeps the workload constructible.
            history=history if history is not None else stream,
            private_patterns=list(self._spec.pattern_objects()),
            target_patterns=[
                query.pattern for query in self._spec.query_objects()
            ],
            w=w,
        )
        if isinstance(executor, str):
            executor = build_executor_from_spec(executor)
        elif executor is None:
            executor = self._executor
        return WorkloadEvaluation(workload).sweep(
            epsilon_grid=epsilon_grid,
            mechanisms=list(mechanisms),
            alpha=self._spec.quality.alpha,
            n_trials=n_trials,
            conversion_mode=conversion_mode,
            rng=self._seeded(rng),
            workers=workers,
            backend=backend,
            executor=executor,
        )
