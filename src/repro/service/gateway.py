"""The multi-tenant gateway: many declarative services, one loop.

A :class:`StreamGateway` multiplexes several *named*
:class:`~repro.service.ServiceSpec` pipelines — each with its own
source connector, sink connector, seed, mechanism and budget — over a
single asyncio event loop.  Tenants are fully isolated:

- **randomness** — every tenant's session draws from its own spec
  seed, so concurrent serving is bit-identical to running each spec
  alone;
- **budgets** — every tenant's accountant is its own ledger; one
  tenant exhausting its ε cannot spend another's;
- **flow control** — each tenant pumps through its own bounded
  :class:`~repro.cep.async_session.AsyncSession` queue, so one slow
  mechanism backpressures only its own source;
- **ingress rate** — a tenant registered with a ``rate_limit``
  (windows per second, :class:`TokenBucket`) has excess windows
  *shed* at ingress: dropped before perturbation, counted on the
  tenant and in its sink's metrics (never silently), and consumed
  from the source so a resume never replays them.

Beyond the single loop, :meth:`StreamGateway.serve_scattered` spreads
the fleet across forked worker processes: a :class:`TenantScheduler`
round-robins tenants over slots, each slot serves its group on a
private loop, and the parent absorbs the returned checkpoints — after
the call the gateway is in exactly the state a local serve would have
produced.  A whole fleet is constructible from one JSON document of
:class:`~repro.service.spec.TenantSpec` entries
(:meth:`StreamGateway.from_json`).

The gateway checkpoints as a unit: :meth:`checkpoint` captures every
tenant's session snapshot (the PR-3 protocol) *plus its in-flight
source offset* and rate-limit configuration, and
:meth:`StreamGateway.resume` rebuilds the fleet — sources skipped to
their offsets, sessions restored, rate limiters re-armed — so a
crashed gateway continues exactly where an uninterrupted one would be.

>>> gateway = StreamGateway()
>>> gateway.add_tenant("fleet", taxi_spec)
>>> gateway.add_tenant("grid", grid_spec, rate_limit=500.0)
>>> gateway.run()                      # serve both on one loop
>>> gateway.results()["fleet"]["q"]    # per-tenant answers
>>> gateway.shed_windows()["grid"]     # rate-limited drops, surfaced
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import time

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.tracing import trace_span
from repro.service.service import StreamService
from repro.service.spec import ServiceSpec, TenantSpec
from repro.utils.validation import check_positive

__all__ = ["StreamGateway", "TenantScheduler", "TokenBucket"]


class TokenBucket:
    """A windows-per-second token bucket (the tenant rate limiter).

    Tokens accrue at ``rate`` per second up to ``burst`` capacity
    (default ``max(1, rate)``); each admitted window spends one.
    ``try_acquire`` never blocks — the gateway sheds, it does not
    stall, so one tenant's overload cannot delay another's stream.
    ``clock`` is injectable for deterministic tests.
    """

    def __init__(self, rate: float, burst: Optional[float] = None, *,
                 clock=time.monotonic):
        check_positive("rate", rate)
        self.rate = float(rate)
        if burst is None:
            burst = max(1.0, self.rate)
        check_positive("burst", burst)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    @property
    def tokens(self) -> float:
        """Tokens currently available (diagnostic)."""
        return self._tokens

    def try_acquire(self) -> bool:
        """Spend one token if available; never blocks."""
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class TenantScheduler:
    """Deterministic round-robin spread of tenants over worker slots.

    ``assign(names)`` stripes the tenant names across ``n_slots``
    groups (``names[i::n_slots]``) and drops empty groups — the same
    fleet always lands on the same slots, so scattered serving is as
    reproducible as local serving.
    """

    def __init__(self, n_slots: int):
        if (
            not isinstance(n_slots, int)
            or isinstance(n_slots, bool)
            or n_slots <= 0
        ):
            raise ValueError(
                f"n_slots must be a positive int, got {n_slots!r}"
            )
        self.n_slots = n_slots

    def assign(self, names: Sequence[str]) -> List[List[str]]:
        """Group ``names`` into at most ``n_slots`` non-empty slots."""
        names = list(names)
        slots = [
            list(names[index::self.n_slots])
            for index in range(self.n_slots)
        ]
        return [slot for slot in slots if slot]


class _Tenant:
    """One named pipeline: a compiled service plus its connectors."""

    def __init__(
        self,
        name: str,
        service: StreamService,
        *,
        registry: MetricsRegistry,
        source=None,
        sink=None,
        max_pending: int,
        max_batch: int,
        rate_limit: Optional[float] = None,
        burst: Optional[float] = None,
        clock=None,
    ):
        self.name = name
        self.service = service
        self.source = source
        self.sink = sink
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.rate_limit = rate_limit
        self.burst = burst
        self.clock = clock
        self.answers: Dict[str, List[bool]] = {}
        # The gateway registry is the single source of truth for
        # per-tenant telemetry; `shed` below is a view over its
        # counter (so checkpoint merge carries it across resumes).
        self._shed_counter = registry.counter(
            "repro_tenant_shed_windows_total",
            "Windows shed at ingress by a tenant's rate limiter.",
        ).labels(tenant=name)
        self._served_gauge = registry.gauge(
            "repro_tenant_windows_served",
            "Windows answered by a tenant's session so far.",
        ).labels(tenant=name)
        self._budget_gauge = registry.gauge(
            "repro_tenant_budget_spent_epsilon",
            "Privacy budget (epsilon) a tenant's accountant has spent.",
        ).labels(tenant=name)
        self._sink_opened = False
        self._bucket: Optional[TokenBucket] = None
        self._scattered_sink_result = None
        #: Whether this tenant can cross a process boundary: all its
        #: connectors are spec-declared, none are runtime objects.
        self.declarative = source is None and sink is None

    @property
    def shed(self) -> int:
        """Windows shed at this tenant's ingress (an obs counter view)."""
        return int(self._shed_counter.value)

    async def serve(self, max_windows: Optional[int]) -> None:
        # Live feeds must be connected before the pump starts: a bare
        # 'queue'/'broker' spec with nothing bound would otherwise
        # fail on its first emit, deep inside the pump, with no hint
        # of which tenant or spec is at fault.
        compiled = self.service._compile_source(self.source, reuse=True)
        if not compiled.live_feed_bound:
            raise RuntimeError(
                f"tenant {self.name!r}: live source "
                f"{self.service.spec.source!r} has no feed bound; pass "
                "a connected source object (QueueSource(queue) / "
                "BrokerSource(url)) when building the tenant, or via "
                "sources={name: ...} on StreamGateway.resume()"
            )
        source = self.source
        if self.rate_limit is not None:
            source = self._throttled()
        with trace_span("gateway.serve", tenant=self.name):
            answers = await self.service.pump(
                source,
                sink=self.sink,
                max_pending=self.max_pending,
                max_batch=self.max_batch,
                max_windows=max_windows,
                append_sink=self._sink_opened,
            )
        # Later slices keep appending to the same sink file/aggregate.
        self._sink_opened = self._sink_opened or (
            self.service.last_sink is not None
        )
        self.sink = self.service.last_sink or self.sink
        self.source = self.service.last_source
        for name, values in answers.items():
            self.answers.setdefault(name, []).extend(values)
        self.update_gauges()

    def update_gauges(self) -> None:
        """Refresh the windows-served / budget-spent gauges."""
        session = self.service.session
        if session is not None:
            self._served_gauge.set(session.windows_processed)
        accountant = self.service.accountant
        if accountant is not None:
            self._budget_gauge.set(accountant.spent())

    def _throttled(self):
        """This tenant's source behind its token bucket (idempotent)."""
        from repro.io.sources import _ThrottledSource

        inner = self.service._compile_source(self.source, reuse=True)
        if isinstance(inner, _ThrottledSource):
            return inner
        if self._bucket is None:
            self._bucket = TokenBucket(
                self.rate_limit,
                self.burst,
                clock=self.clock or time.monotonic,
            )
        return _ThrottledSource(
            inner, self._bucket, on_shed=self._record_shed
        )

    def _record_shed(self, index: int, row) -> None:
        """One window shed at ingress: count it, surface it."""
        self._shed_counter.inc()
        from repro.io.sinks import StreamSink

        sink = self.service.last_sink
        if isinstance(sink, StreamSink):
            sink.shed(index, row)


def _serve_slot(
    payloads: List[Dict], max_windows: Optional[int]
) -> Dict[str, Dict]:
    """Worker-side scattered serving: one sub-gateway per slot.

    Runs in a forked worker process.  Builds (or checkpoint-resumes)
    each assigned tenant from its shipped payload, serves one slice on
    a private event loop, and returns per-tenant state — checkpoint,
    accumulated answers, shed count, sink result — for the parent
    gateway to absorb.
    """
    gateway = StreamGateway()
    for payload in payloads:
        spec = ServiceSpec.from_dict(payload["spec"])
        if payload["checkpoint"] is not None:
            service = StreamService.resume(spec, payload["checkpoint"])
        else:
            service = StreamService(spec)
        gateway.add_tenant(
            payload["name"],
            service,
            max_pending=payload["max_pending"],
            max_batch=payload["max_batch"],
            rate_limit=payload["rate_limit"],
            burst=payload["burst"],
        )
        if payload["checkpoint"] is not None:
            tenant = gateway._tenants[payload["name"]]
            tenant.source = service.last_source
            tenant._sink_opened = True
    asyncio.run(gateway.serve(max_windows=max_windows))
    state = {}
    for name in gateway.tenant_names:
        tenant = gateway._tenants[name]
        state[name] = {
            "checkpoint": tenant.service.checkpoint(),
            "answers": tenant.answers,
            "shed": tenant.shed,
            "sink_result": gateway.sink_result(name),
        }
    return state


class StreamGateway:
    """Serve many named ``ServiceSpec`` pipelines on one asyncio loop."""

    def __init__(self, *, registry: Optional[MetricsRegistry] = None):
        self._tenants: Dict[str, _Tenant] = {}
        # Each gateway owns its registry by default so two fleets (or
        # two tests) never mix per-tenant series; pass a shared
        # registry — e.g. the process default — to aggregate instead.
        self._registry = (
            registry if registry is not None else MetricsRegistry()
        )

    @property
    def registry(self) -> MetricsRegistry:
        """The fleet's metrics registry (per-tenant series live here)."""
        return self._registry

    # -- tenancy -------------------------------------------------------

    def add_tenant(
        self,
        name: Union[str, TenantSpec],
        spec: Union[ServiceSpec, TenantSpec, Mapping, str, None] = None,
        *,
        source=None,
        sink=None,
        history=None,
        max_pending: int = 256,
        max_batch: int = 64,
        rate_limit: Optional[float] = None,
        burst: Optional[float] = None,
        clock=None,
    ) -> StreamService:
        """Register one named pipeline; returns its compiled service.

        ``spec`` may be a :class:`ServiceSpec` (or its dict/JSON
        form), a live :class:`StreamService`, or a
        :class:`~repro.service.spec.TenantSpec` carrying the tenancy
        knobs (name, seed, budget, rate limit) as data — a bare
        ``add_tenant(tenant_spec)`` works too.  ``source``/``sink``
        override the spec's own connector fields (that is how live
        queues and callbacks — payloads JSON cannot carry — ride in).
        ``rate_limit`` (windows/second) arms a :class:`TokenBucket`
        with ``burst`` capacity at this tenant's ingress; excess
        windows are shed, counted, and surfaced — see
        :meth:`shed_windows`.  ``clock`` injects a deterministic
        clock for the bucket (tests).  Each tenant's spec needs its
        own ``seed``; isolation is only meaningful when tenants do
        not share randomness by accident.
        """
        if isinstance(name, TenantSpec):
            if spec is not None:
                raise TypeError(
                    "add_tenant(TenantSpec) carries its own name and "
                    "spec; drop the second argument"
                )
            name, spec = name.name, name
        if isinstance(spec, TenantSpec):
            if name != spec.name:
                raise ValueError(
                    f"tenant name {name!r} does not match "
                    f"TenantSpec.name {spec.name!r}"
                )
            if rate_limit is None:
                rate_limit = spec.rate_limit
                if burst is None:
                    burst = spec.burst
            spec = spec.resolved_spec()
        if not isinstance(name, str) or not name:
            raise ValueError("tenant name must be a non-empty string")
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} already registered")
        if rate_limit is not None:
            check_positive("rate_limit", rate_limit)
        if burst is not None:
            if rate_limit is None:
                raise ValueError(
                    f"tenant {name!r} sets burst without rate_limit; "
                    "burst is the token-bucket capacity of a rate "
                    "limit"
                )
            check_positive("burst", burst)
        service = (
            spec if isinstance(spec, StreamService)
            else StreamService(spec, history=history)
        )
        if source is None and service.spec.source is None:
            raise ValueError(
                f"tenant {name!r} has no source: declare source= on "
                "the spec or pass source= here"
            )
        self._tenants[name] = _Tenant(
            name,
            service,
            registry=self._registry,
            source=source,
            sink=sink,
            max_pending=max_pending,
            max_batch=max_batch,
            rate_limit=rate_limit,
            burst=burst,
            clock=clock,
        )
        return service

    @classmethod
    def from_json(cls, document: Union[str, Mapping]) -> "StreamGateway":
        """Build a whole fleet from one JSON document.

        ``document`` is a JSON string (or pre-parsed mapping) of the
        form ``{"format": 1, "tenants": [<TenantSpec.to_dict()>,
        ...]}`` — every tenant fully declarative, so the document plus
        the seeds inside it reproduces the fleet bit-identically.
        """
        data = json.loads(document) if isinstance(document, str) else document
        if not isinstance(data, Mapping):
            raise TypeError(
                f"gateway document must be a JSON object, got "
                f"{type(data).__name__}"
            )
        version = data.get("format", 1)
        if version != 1:
            raise ValueError(
                f"unsupported gateway document format {version!r}"
            )
        unknown = sorted(set(data) - {"format", "tenants"})
        if unknown:
            raise ValueError(
                f"gateway document has unknown fields {unknown}; "
                "known fields: format, tenants"
            )
        tenants = data.get("tenants")
        if not isinstance(tenants, Sequence) or isinstance(
            tenants, (str, bytes)
        ):
            raise TypeError(
                "gateway document needs a 'tenants' list of tenant "
                "specs"
            )
        gateway = cls()
        for item in tenants:
            tenant = (
                item
                if isinstance(item, TenantSpec)
                else TenantSpec.from_dict(item)
            )
            gateway.add_tenant(tenant)
        return gateway

    @property
    def tenant_names(self) -> List[str]:
        """Registered tenant names, in registration order."""
        return list(self._tenants)

    def service(self, name: str) -> StreamService:
        """The compiled service of one tenant."""
        return self._tenant(name).service

    def sink_result(self, name: str):
        """What one tenant's sink accumulated so far (``None`` without
        a sink).  After :meth:`serve_scattered`, the sink lived in the
        worker process; its shipped-back result is returned here."""
        tenant = self._tenant(name)
        from repro.io.sinks import StreamSink

        if isinstance(tenant.sink, StreamSink):
            return tenant.sink.result()
        if tenant._scattered_sink_result is not None:
            return tenant._scattered_sink_result
        return None

    def _tenant(self, name: str) -> _Tenant:
        try:
            return self._tenants[name]
        except KeyError:
            raise KeyError(
                f"unknown tenant {name!r}; registered: "
                f"{list(self._tenants)}"
            ) from None

    # -- serving -------------------------------------------------------

    async def serve(self, *, max_windows: Optional[int] = None) -> None:
        """Pump every tenant concurrently on the running loop.

        Each tenant draws from its own source through its own bounded
        session into its own sink; ``max_windows`` caps the windows
        served *per tenant* this call (leaving sources mid-stream for
        a later :meth:`serve` or :meth:`checkpoint`).  A tenant
        failure cancels the others' current slice and re-raises.
        """
        if not self._tenants:
            raise RuntimeError("no tenants registered; add_tenant() first")
        # Sessions bind their metrics to the default registry when they
        # are (re)built inside pump; scoping the slice routes every
        # tenant's telemetry into this gateway's checkpointable
        # registry instead of the process-global one.
        with use_registry(self._registry):
            tasks = [
                asyncio.ensure_future(tenant.serve(max_windows))
                for tenant in self._tenants.values()
            ]
            try:
                await asyncio.gather(*tasks)
            finally:
                for task in tasks:
                    if not task.done():
                        task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)

    def run(self, *, max_windows: Optional[int] = None) -> Dict:
        """Serve every tenant to completion on a fresh event loop."""
        asyncio.run(self.serve(max_windows=max_windows))
        return self.results()

    def serve_scattered(
        self, *, slots: int = 2, max_windows: Optional[int] = None
    ) -> Dict:
        """Serve the fleet spread across forked worker processes.

        A :class:`TenantScheduler` round-robins the tenants over at
        most ``slots`` worker processes; each worker rebuilds its
        group from shipped specs/checkpoints, serves one slice on its
        own event loop, and returns per-tenant checkpoints, answers
        and shed counts.  The parent absorbs them — resuming each
        tenant's service from the returned checkpoint — so after this
        call the gateway is in exactly the state a local
        :meth:`serve` slice would have left it in, and may continue
        serving locally or scattered.  Per-tenant randomness makes
        the answers bit-identical to local serving.

        Requires fully declarative tenants (connectors on the spec,
        no runtime source/sink/clock objects) so the work can cross
        the process boundary.  In-memory sink aggregates are returned
        per scattered call (see :meth:`sink_result`); file sinks
        append in the workers as usual.
        """
        if not self._tenants:
            raise RuntimeError("no tenants registered; add_tenant() first")
        payloads = {}
        for name, tenant in self._tenants.items():
            if not tenant.declarative or tenant.clock is not None:
                raise ValueError(
                    f"tenant {name!r} carries runtime connector "
                    "objects; scattered serving needs fully "
                    "declarative tenants (declare source=/sink= on "
                    "the spec)"
                )
            payloads[name] = {
                "name": name,
                "spec": tenant.service.spec.to_dict(),
                "checkpoint": (
                    tenant.service.checkpoint()
                    if tenant.service.session is not None
                    else None
                ),
                "rate_limit": tenant.rate_limit,
                "burst": tenant.burst,
                "max_pending": tenant.max_pending,
                "max_batch": tenant.max_batch,
            }
        groups = TenantScheduler(slots).assign(list(self._tenants))
        # Fork keeps worker startup cheap and inherits the registries;
        # spawn-only platforms fall back to their default context.
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        context = multiprocessing.get_context(method)
        with ProcessPoolExecutor(
            max_workers=len(groups), mp_context=context
        ) as pool:
            futures = [
                pool.submit(
                    _serve_slot,
                    [payloads[name] for name in group],
                    max_windows,
                )
                for group in groups
            ]
            slot_states = [future.result() for future in futures]
        for states in slot_states:
            for name, state in states.items():
                tenant = self._tenants[name]
                spec = ServiceSpec.from_dict(state["checkpoint"]["spec"])
                with use_registry(self._registry):
                    tenant.service = StreamService.resume(
                        spec, state["checkpoint"]
                    )
                tenant.source = tenant.service.last_source
                tenant._sink_opened = True
                tenant._shed_counter.inc(state["shed"])
                tenant._scattered_sink_result = state["sink_result"]
                for query, values in state["answers"].items():
                    tenant.answers.setdefault(query, []).extend(values)
                tenant.update_gauges()
        return self.results()

    def results(self) -> Dict[str, Dict[str, List[bool]]]:
        """Per-tenant, per-query answers accumulated so far."""
        return {
            name: {
                query: list(values)
                for query, values in tenant.answers.items()
            }
            for name, tenant in self._tenants.items()
        }

    def windows_served(self) -> Dict[str, int]:
        """Per-tenant windows answered so far."""
        return {
            name: tenant.service.session.windows_processed
            if tenant.service.session is not None
            else 0
            for name, tenant in self._tenants.items()
        }

    def shed_windows(self) -> Dict[str, int]:
        """Per-tenant windows shed by rate limiting so far.

        A shed window was consumed from the tenant's source but never
        perturbed or answered — its loss is deliberate load-shedding,
        surfaced here and in the tenant's metrics sink, never silent.
        """
        return {
            name: tenant.shed for name, tenant in self._tenants.items()
        }

    # -- checkpoint / resume -------------------------------------------

    def checkpoint(self) -> Dict:
        """One picklable checkpoint of the whole fleet.

        Per tenant: the spec, the session's full release state and the
        in-flight source offset (see
        :meth:`StreamService.checkpoint`), plus any rate-limit
        configuration (bucket *configuration*, not its transient
        token level).  Sessions must be quiescent — between
        :meth:`serve` slices they always are.
        """
        tenants = {}
        for name, tenant in self._tenants.items():
            if tenant.service.session is None:
                raise RuntimeError(
                    f"tenant {name!r} has no open session to "
                    "checkpoint; serve() at least one slice first"
                )
            tenant.update_gauges()
            tenants[name] = tenant.service.checkpoint()
        self._registry.counter(
            "repro_gateway_checkpoints_total",
            "Fleet checkpoints taken by this gateway lineage.",
        ).inc()
        checkpoint = {
            "format": 1,
            "tenants": tenants,
            # The fleet's counters ride along so a resumed gateway
            # continues them monotonically instead of starting at zero.
            "metrics": self._registry.snapshot(),
        }
        limits = {
            name: {
                "rate_limit": tenant.rate_limit,
                "burst": tenant.burst,
            }
            for name, tenant in self._tenants.items()
            if tenant.rate_limit is not None
        }
        if limits:
            checkpoint["rate_limits"] = limits
        return checkpoint

    @classmethod
    def resume(
        cls,
        checkpoint: Mapping,
        *,
        sources: Optional[Mapping] = None,
        sinks: Optional[Mapping] = None,
        histories: Optional[Mapping] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> "StreamGateway":
        """Rebuild a gateway mid-stream from a :meth:`checkpoint`.

        Every tenant's service is rebuilt from its recorded spec, its
        session restored, its source re-resolved and skipped to the
        checkpointed offset, and its rate limiter re-armed from the
        recorded configuration.  ``sources``/``sinks`` map tenant
        names to replacement connector objects for payloads JSON
        cannot carry (live queues, callbacks); file sinks are reopened
        in append mode by the next :meth:`serve`.
        """
        sources = dict(sources or {})
        sinks = dict(sinks or {})
        histories = dict(histories or {})
        rate_limits = checkpoint.get("rate_limits", {})
        gateway = cls(registry=registry)
        # Fold the pre-crash fleet's counters in first, so the tenant
        # counter views created below continue where the checkpointed
        # run left off (pre-obs checkpoints simply carry no section).
        gateway._registry.merge_snapshot(checkpoint.get("metrics"))
        gateway._registry.counter(
            "repro_gateway_resumes_total",
            "Times this gateway lineage was resumed from a checkpoint.",
        ).inc()
        for name, tenant_checkpoint in checkpoint["tenants"].items():
            spec = ServiceSpec.from_dict(tenant_checkpoint["spec"])
            # Session restore rebuilds the session eagerly, which binds
            # its latency histogram to the default registry — scope it
            # to this gateway's registry so the series resumed from the
            # checkpoint keeps growing in the same ledger.
            with use_registry(gateway._registry):
                service = StreamService.resume(
                    spec,
                    tenant_checkpoint,
                    history=histories.get(name),
                    source=sources.get(name),
                )
            limits = rate_limits.get(name) or {}
            tenant = _Tenant(
                name,
                service,
                registry=gateway._registry,
                source=service.last_source,
                sink=sinks.get(name),
                max_pending=tenant_checkpoint.get(
                    "session_options", {}
                ).get("max_pending", 256),
                max_batch=tenant_checkpoint.get(
                    "session_options", {}
                ).get("max_batch", 64),
                rate_limit=limits.get("rate_limit"),
                burst=limits.get("burst"),
            )
            # A resumed file sink must append, not truncate, what the
            # pre-crash run already egressed.
            tenant._sink_opened = True
            # Connector objects passed here are runtime payloads: the
            # tenant can no longer cross a process boundary.
            tenant.declarative = (
                name not in sources and name not in sinks
            )
            # Fail the resume itself — not the first serve — when a
            # live source came back without a feed: the fix (pass
            # sources={name: ...}) belongs to this call.
            resumed_source = service.last_source
            if resumed_source is not None and not (
                resumed_source.live_feed_bound
            ):
                raise RuntimeError(
                    f"cannot resume tenant {name!r}: its live source "
                    f"{spec.source!r} has no feed bound — a live feed "
                    "does not survive a checkpoint; pass a connected "
                    "source via sources={" + repr(name) + ": ...}"
                )
            gateway._tenants[name] = tenant
        return gateway
