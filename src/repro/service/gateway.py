"""The multi-tenant gateway: many declarative services, one loop.

A :class:`StreamGateway` multiplexes several *named*
:class:`~repro.service.ServiceSpec` pipelines — each with its own
source connector, sink connector, seed, mechanism and budget — over a
single asyncio event loop.  Tenants are fully isolated:

- **randomness** — every tenant's session draws from its own spec
  seed, so concurrent serving is bit-identical to running each spec
  alone;
- **budgets** — every tenant's accountant is its own ledger; one
  tenant exhausting its ε cannot spend another's;
- **flow control** — each tenant pumps through its own bounded
  :class:`~repro.cep.async_session.AsyncSession` queue, so one slow
  mechanism backpressures only its own source.

The gateway checkpoints as a unit: :meth:`checkpoint` captures every
tenant's session snapshot (the PR-3 protocol) *plus its in-flight
source offset*, and :meth:`StreamGateway.resume` rebuilds the fleet —
sources skipped to their offsets, sessions restored — so a crashed
gateway continues exactly where an uninterrupted one would be.

>>> gateway = StreamGateway()
>>> gateway.add_tenant("fleet", taxi_spec)
>>> gateway.add_tenant("grid", grid_spec)
>>> gateway.run()                      # serve both on one loop
>>> gateway.results()["fleet"]["q"]    # per-tenant answers
"""

from __future__ import annotations

import asyncio

from typing import Dict, List, Mapping, Optional, Union

from repro.service.service import StreamService
from repro.service.spec import ServiceSpec

__all__ = ["StreamGateway"]


class _Tenant:
    """One named pipeline: a compiled service plus its connectors."""

    def __init__(
        self,
        name: str,
        service: StreamService,
        *,
        source=None,
        sink=None,
        max_pending: int,
        max_batch: int,
    ):
        self.name = name
        self.service = service
        self.source = source
        self.sink = sink
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.answers: Dict[str, List[bool]] = {}
        self._sink_opened = False

    async def serve(self, max_windows: Optional[int]) -> None:
        answers = await self.service.pump(
            self.source,
            sink=self.sink,
            max_pending=self.max_pending,
            max_batch=self.max_batch,
            max_windows=max_windows,
            append_sink=self._sink_opened,
        )
        # Later slices keep appending to the same sink file/aggregate.
        self._sink_opened = self._sink_opened or (
            self.service.last_sink is not None
        )
        self.sink = self.service.last_sink or self.sink
        self.source = self.service.last_source
        for name, values in answers.items():
            self.answers.setdefault(name, []).extend(values)


class StreamGateway:
    """Serve many named ``ServiceSpec`` pipelines on one asyncio loop."""

    def __init__(self):
        self._tenants: Dict[str, _Tenant] = {}

    # -- tenancy -------------------------------------------------------

    def add_tenant(
        self,
        name: str,
        spec: Union[ServiceSpec, Mapping, str],
        *,
        source=None,
        sink=None,
        history=None,
        max_pending: int = 256,
        max_batch: int = 64,
    ) -> StreamService:
        """Register one named pipeline; returns its compiled service.

        ``source``/``sink`` override the spec's own connector fields
        (that is how live queues and callbacks — payloads JSON cannot
        carry — ride in).  Each tenant's spec needs its own ``seed``;
        isolation is only meaningful when tenants do not share
        randomness by accident.
        """
        if not isinstance(name, str) or not name:
            raise ValueError("tenant name must be a non-empty string")
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} already registered")
        service = (
            spec if isinstance(spec, StreamService)
            else StreamService(spec, history=history)
        )
        if source is None and service.spec.source is None:
            raise ValueError(
                f"tenant {name!r} has no source: declare source= on "
                "the spec or pass source= here"
            )
        self._tenants[name] = _Tenant(
            name,
            service,
            source=source,
            sink=sink,
            max_pending=max_pending,
            max_batch=max_batch,
        )
        return service

    @property
    def tenant_names(self) -> List[str]:
        """Registered tenant names, in registration order."""
        return list(self._tenants)

    def service(self, name: str) -> StreamService:
        """The compiled service of one tenant."""
        return self._tenant(name).service

    def sink_result(self, name: str):
        """What one tenant's sink accumulated so far (``None`` without
        a sink)."""
        sink = self._tenant(name).sink
        from repro.io.sinks import StreamSink

        if isinstance(sink, StreamSink):
            return sink.result()
        return None

    def _tenant(self, name: str) -> _Tenant:
        try:
            return self._tenants[name]
        except KeyError:
            raise KeyError(
                f"unknown tenant {name!r}; registered: "
                f"{list(self._tenants)}"
            ) from None

    # -- serving -------------------------------------------------------

    async def serve(self, *, max_windows: Optional[int] = None) -> None:
        """Pump every tenant concurrently on the running loop.

        Each tenant draws from its own source through its own bounded
        session into its own sink; ``max_windows`` caps the windows
        served *per tenant* this call (leaving sources mid-stream for
        a later :meth:`serve` or :meth:`checkpoint`).  A tenant
        failure cancels the others' current slice and re-raises.
        """
        if not self._tenants:
            raise RuntimeError("no tenants registered; add_tenant() first")
        tasks = [
            asyncio.ensure_future(tenant.serve(max_windows))
            for tenant in self._tenants.values()
        ]
        try:
            await asyncio.gather(*tasks)
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    def run(self, *, max_windows: Optional[int] = None) -> Dict:
        """Serve every tenant to completion on a fresh event loop."""
        asyncio.run(self.serve(max_windows=max_windows))
        return self.results()

    def results(self) -> Dict[str, Dict[str, List[bool]]]:
        """Per-tenant, per-query answers accumulated so far."""
        return {
            name: {
                query: list(values)
                for query, values in tenant.answers.items()
            }
            for name, tenant in self._tenants.items()
        }

    def windows_served(self) -> Dict[str, int]:
        """Per-tenant windows answered so far."""
        return {
            name: tenant.service.session.windows_processed
            if tenant.service.session is not None
            else 0
            for name, tenant in self._tenants.items()
        }

    # -- checkpoint / resume -------------------------------------------

    def checkpoint(self) -> Dict:
        """One picklable checkpoint of the whole fleet.

        Per tenant: the spec, the session's full release state and the
        in-flight source offset (see
        :meth:`StreamService.checkpoint`).  Sessions must be quiescent
        — between :meth:`serve` slices they always are.
        """
        tenants = {}
        for name, tenant in self._tenants.items():
            if tenant.service.session is None:
                raise RuntimeError(
                    f"tenant {name!r} has no open session to "
                    "checkpoint; serve() at least one slice first"
                )
            tenants[name] = tenant.service.checkpoint()
        return {"format": 1, "tenants": tenants}

    @classmethod
    def resume(
        cls,
        checkpoint: Mapping,
        *,
        sources: Optional[Mapping] = None,
        sinks: Optional[Mapping] = None,
        histories: Optional[Mapping] = None,
    ) -> "StreamGateway":
        """Rebuild a gateway mid-stream from a :meth:`checkpoint`.

        Every tenant's service is rebuilt from its recorded spec, its
        session restored, and its source re-resolved and skipped to
        the checkpointed offset.  ``sources``/``sinks`` map tenant
        names to replacement connector objects for payloads JSON
        cannot carry (live queues, callbacks); file sinks are reopened
        in append mode by the next :meth:`serve`.
        """
        sources = dict(sources or {})
        sinks = dict(sinks or {})
        histories = dict(histories or {})
        gateway = cls()
        for name, tenant_checkpoint in checkpoint["tenants"].items():
            spec = ServiceSpec.from_dict(tenant_checkpoint["spec"])
            service = StreamService.resume(
                spec,
                tenant_checkpoint,
                history=histories.get(name),
                source=sources.get(name),
            )
            tenant = _Tenant(
                name,
                service,
                source=service.last_source,
                sink=sinks.get(name),
                max_pending=tenant_checkpoint.get(
                    "session_options", {}
                ).get("max_pending", 256),
                max_batch=tenant_checkpoint.get(
                    "session_options", {}
                ).get("max_batch", 64),
            )
            # A resumed file sink must append, not truncate, what the
            # pre-crash run already egressed.
            tenant._sink_opened = True
            gateway._tenants[name] = tenant
        return gateway
