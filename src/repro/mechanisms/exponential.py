"""The exponential mechanism (McSherry & Talwar; Dwork & Roth §3.4).

Selects a candidate with probability proportional to
``exp(epsilon * score / (2 * sensitivity))``.  Used by the adaptive
tooling when a private selection among budget allocations is wanted
(an optional hardening of Algorithm 1; the paper's algorithm itself
trusts the engine with historical data).
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from repro.mechanisms.base import Mechanism
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive

T = TypeVar("T")


class ExponentialMechanism(Mechanism):
    """ε-DP selection of a high-score candidate."""

    def __init__(self, epsilon: float, *, sensitivity: float = 1.0):
        super().__init__(epsilon)
        self._sensitivity = check_positive("sensitivity", sensitivity)

    @property
    def sensitivity(self) -> float:
        return self._sensitivity

    def selection_probabilities(self, scores: Sequence[float]) -> np.ndarray:
        """The selection distribution over candidates given their scores."""
        scores = np.asarray(scores, dtype=float)
        if scores.size == 0:
            raise ValueError("at least one candidate is required")
        logits = self.epsilon * scores / (2.0 * self._sensitivity)
        logits -= logits.max()  # numerical stability
        weights = np.exp(logits)
        return weights / weights.sum()

    def select(
        self,
        candidates: Sequence[T],
        scores: Sequence[float],
        *,
        rng: RngLike = None,
    ) -> T:
        """Draw one candidate from the exponential-mechanism distribution."""
        candidates = list(candidates)
        if len(candidates) != len(scores):
            raise ValueError(
                f"{len(candidates)} candidates but {len(scores)} scores"
            )
        probabilities = self.selection_probabilities(scores)
        generator = ensure_rng(rng)
        index = int(generator.choice(len(candidates), p=probabilities))
        return candidates[index]
