"""Privacy budget accounting.

:class:`PrivacyAccountant` is a ledger of budget spends with a hard cap:
exceeding the total raises :class:`BudgetExceededError` *before* any
randomness is consumed, so a buggy caller cannot silently overspend.
Composition follows the classical rules: sequential spends add; spends
on disjoint data (parallel composition) count their maximum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.utils.validation import check_non_negative, check_positive

_EPS_TOLERANCE = 1e-9


class BudgetExceededError(RuntimeError):
    """Raised when a spend would push the ledger past its total budget."""


@dataclass(frozen=True)
class Spend:
    """One recorded budget expenditure."""

    label: str
    epsilon: float


def composed_epsilon(spends: Iterable[float], *, mode: str = "sequential") -> float:
    """Total ε of a list of spends under a composition rule.

    ``"sequential"`` — the mechanisms saw the same data: budgets add.
    ``"parallel"`` — the mechanisms saw disjoint slices of the data:
    the composed guarantee is the maximum single spend.
    """
    values = [check_non_negative("epsilon", value) for value in spends]
    if mode == "sequential":
        return float(sum(values))
    if mode == "parallel":
        return float(max(values)) if values else 0.0
    raise ValueError(f"mode must be 'sequential' or 'parallel', got {mode!r}")


class PrivacyAccountant:
    """A ledger enforcing a total ε budget under sequential composition."""

    def __init__(self, total_epsilon: float):
        self._total = check_positive("total_epsilon", total_epsilon, allow_inf=True)
        self._spends: List[Spend] = []

    @property
    def total_epsilon(self) -> float:
        """The hard budget cap."""
        return self._total

    @property
    def spends(self) -> List[Spend]:
        """All recorded spends, in order (copy)."""
        return list(self._spends)

    def spent(self) -> float:
        """Budget consumed so far (sequential composition)."""
        return composed_epsilon(
            (spend.epsilon for spend in self._spends), mode="sequential"
        )

    def remaining(self) -> float:
        """Budget still available."""
        return max(0.0, self._total - self.spent())

    def can_spend(self, epsilon: float) -> bool:
        """Whether a further spend of ``epsilon`` fits the cap."""
        epsilon = check_non_negative("epsilon", epsilon)
        return self.spent() + epsilon <= self._total + _EPS_TOLERANCE

    def spend(self, label: str, epsilon: float) -> Spend:
        """Record a spend; raises :class:`BudgetExceededError` if over cap."""
        epsilon = check_non_negative("epsilon", epsilon)
        if not self.can_spend(epsilon):
            raise BudgetExceededError(
                f"spend {label!r} of ε={epsilon:g} exceeds the remaining "
                f"budget {self.remaining():g} (total {self._total:g})"
            )
        spend = Spend(label=label, epsilon=epsilon)
        self._spends.append(spend)
        return spend

    def by_label(self) -> Dict[str, float]:
        """Total ε per label."""
        totals: Dict[str, float] = {}
        for spend in self._spends:
            totals[spend.label] = totals.get(spend.label, 0.0) + spend.epsilon
        return totals

    def reset(self) -> None:
        """Clear the ledger (new accounting period)."""
        self._spends = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PrivacyAccountant(spent={self.spent():g}, total={self._total:g}, "
            f"entries={len(self._spends)})"
        )
