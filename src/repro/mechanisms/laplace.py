"""The Laplace mechanism (Dwork & Roth, 2014, §3.3).

Adds noise ``Lap(sensitivity / epsilon)`` to numeric query answers.  The
stream baselines (BD, BA, landmark) release per-window indicator/count
vectors through this mechanism.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.mechanisms.base import Mechanism
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


def laplace_noise(
    rng: RngLike, scale: float, size: Union[int, tuple, None] = None
) -> np.ndarray:
    """Draw Laplace(0, scale) noise with an explicit generator."""
    check_positive("scale", scale)
    return ensure_rng(rng).laplace(loc=0.0, scale=scale, size=size)


class LaplaceMechanism(Mechanism):
    """ε-DP release of numeric values with the given L1 sensitivity.

    Parameters
    ----------
    epsilon:
        Privacy budget per release.
    sensitivity:
        L1 distance between the answers on neighbouring inputs.  The
        stream baselines use sensitivity 1: neighbouring streams differ
        in the existence of a single event, which moves a single
        indicator/count by one.
    """

    def __init__(self, epsilon: float, *, sensitivity: float = 1.0):
        super().__init__(epsilon)
        self._sensitivity = check_positive("sensitivity", sensitivity)

    @property
    def sensitivity(self) -> float:
        return self._sensitivity

    @property
    def scale(self) -> float:
        """The Laplace noise scale ``b = sensitivity / epsilon``."""
        return self._sensitivity / self.epsilon

    def release(self, value: float, *, rng: RngLike = None) -> float:
        """Release one noisy value."""
        return float(value) + float(laplace_noise(rng, self.scale))

    def release_vector(
        self, values: Sequence[float], *, rng: RngLike = None
    ) -> np.ndarray:
        """Release a vector of noisy values.

        Note: the stated ``epsilon`` covers the whole vector only when
        ``sensitivity`` is its L1 sensitivity (for indicator vectors
        under single-event change this is 1).
        """
        values = np.asarray(values, dtype=float)
        return values + laplace_noise(rng, self.scale, size=values.shape)

    def release_binary(
        self, indicators: Sequence[float], *, rng: RngLike = None
    ) -> np.ndarray:
        """Release an indicator vector and threshold back to binary.

        This is how the count-stream baselines answer the paper's binary
        pattern queries: the noisy 0/1 value is rounded at 1/2.
        """
        noisy = self.release_vector(indicators, rng=rng)
        return noisy >= 0.5
