"""The (two-sided) geometric mechanism.

The discrete analogue of the Laplace mechanism for integer counts:
noise ``k`` has mass proportional to ``exp(-epsilon * |k| / sensitivity)``.
Provided for integer count streams; the evaluation's baselines default
to Laplace to match the cited algorithms.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.mechanisms.base import Mechanism
from repro.utils.rng import RngLike, ensure_rng


class GeometricMechanism(Mechanism):
    """ε-DP release of integer counts via two-sided geometric noise."""

    def __init__(self, epsilon: float, *, sensitivity: int = 1):
        super().__init__(epsilon)
        if not isinstance(sensitivity, int) or sensitivity <= 0:
            raise ValueError(
                f"sensitivity must be a positive int, got {sensitivity}"
            )
        self._sensitivity = sensitivity
        # Success parameter of the one-sided geometric components.
        self._alpha = math.exp(-self.epsilon / self._sensitivity)

    @property
    def sensitivity(self) -> int:
        return self._sensitivity

    @property
    def alpha(self) -> float:
        """``exp(-epsilon / sensitivity)``: the geometric decay factor."""
        return self._alpha

    def _noise(self, rng: np.random.Generator, size=None) -> np.ndarray:
        # Difference of two iid geometric variables is two-sided geometric.
        p = 1.0 - self._alpha
        first = rng.geometric(p, size=size) - 1
        second = rng.geometric(p, size=size) - 1
        return first - second

    def release(self, value: int, *, rng: RngLike = None) -> int:
        """Release one noisy integer count."""
        generator = ensure_rng(rng)
        return int(value) + int(self._noise(generator))

    def release_vector(
        self, values: Sequence[int], *, rng: RngLike = None
    ) -> np.ndarray:
        """Release a vector of noisy integer counts."""
        generator = ensure_rng(rng)
        values = np.asarray(values, dtype=int)
        return values + self._noise(generator, size=values.shape)

    def release_binary(
        self, indicators: Sequence[int], *, rng: RngLike = None
    ) -> np.ndarray:
        """Release indicators and threshold back to binary at 1/2."""
        noisy = self.release_vector(indicators, rng=rng)
        return noisy >= 0.5
