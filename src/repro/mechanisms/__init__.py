"""Differential-privacy primitive mechanisms.

The building blocks used by the pattern-level PPMs (randomized response,
Definition 5) and by the stream baselines (Laplace releases under
w-event / landmark scheduling), plus a privacy accountant implementing
sequential and parallel composition.
"""

from repro.mechanisms.accountant import (
    BudgetExceededError,
    PrivacyAccountant,
    Spend,
    composed_epsilon,
)
from repro.mechanisms.base import Mechanism
from repro.mechanisms.exponential import ExponentialMechanism
from repro.mechanisms.geometric import GeometricMechanism
from repro.mechanisms.laplace import LaplaceMechanism, laplace_noise
from repro.mechanisms.randomized_response import RandomizedResponse

__all__ = [
    "BudgetExceededError",
    "ExponentialMechanism",
    "GeometricMechanism",
    "LaplaceMechanism",
    "Mechanism",
    "PrivacyAccountant",
    "RandomizedResponse",
    "Spend",
    "composed_epsilon",
    "laplace_noise",
]
