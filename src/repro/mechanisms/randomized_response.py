"""Randomized response over existence indicators (Definition 5).

Given the existence indicator ``I(e) ∈ {0, 1}`` of an event, the
mechanism reports the true value with probability ``1 - p`` and lies
with probability ``p``:

.. math::

    \\Pr(R = j \\mid I(e) = j) = 1 - p, \\qquad
    \\Pr(R = j \\mid I(e) = k) = p \\; (j \\ne k).

For ``p <= 1/2`` a single response is ``ln((1 - p)/p)``-DP with respect
to flipping that indicator; Theorem 1 sums these per-event budgets into
the pattern-level guarantee.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


def epsilon_to_flip_probability(epsilon: float) -> float:
    """The flip probability realizing a per-event budget ε.

    Inverts ``ε = ln((1 - p)/p)``: ``p = 1 / (1 + e^ε)``.  ``ε = 0``
    gives ``p = 1/2`` (pure noise, perfect privacy); ``ε → ∞`` gives
    ``p → 0`` (no noise, no protection).
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    return 1.0 / (1.0 + math.exp(epsilon))


def flip_probability_to_epsilon(p: float) -> float:
    """The per-event budget spent by flip probability ``p`` (``0 < p <= 1/2``).

    ``ε = ln((1 - p)/p)`` — the factor each response contributes in the
    Theorem 1 product bound.
    """
    if not 0.0 < p <= 0.5:
        raise ValueError(
            f"flip probability must be in (0, 1/2] for a finite budget, got {p}"
        )
    return math.log((1.0 - p) / p)


class RandomizedResponse:
    """Binary randomized response with flip probability ``p``.

    Parameters
    ----------
    p:
        Probability of reporting the opposite of the truth.  Must lie in
        ``(0, 1/2]``: Theorem 1 requires ``p <= 1/2`` (flipping more
        often than not would invert the signal), and ``p = 0`` would
        spend an infinite budget.
    """

    def __init__(self, p: float):
        if not 0.0 < p <= 0.5:
            raise ValueError(f"p must be in (0, 1/2], got {p}")
        self._p = float(p)

    @classmethod
    def from_epsilon(cls, epsilon: float) -> "RandomizedResponse":
        """Construct the mechanism spending a per-event budget ε."""
        check_positive("epsilon", epsilon, allow_inf=False)
        return cls(epsilon_to_flip_probability(epsilon))

    @property
    def p(self) -> float:
        """The flip probability."""
        return self._p

    @property
    def epsilon(self) -> float:
        """The per-event budget ``ln((1 - p)/p)``."""
        return flip_probability_to_epsilon(self._p)

    @property
    def name(self) -> str:
        return "RandomizedResponse"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomizedResponse(p={self._p:g}, epsilon={self.epsilon:g})"

    # -- responding -------------------------------------------------------

    def respond(self, value: bool, *, rng: RngLike = None) -> bool:
        """Answer for one indicator: truthful w.p. ``1 - p``."""
        generator = ensure_rng(rng)
        if generator.random() < self._p:
            return not bool(value)
        return bool(value)

    def respond_vector(
        self, values: Sequence[bool], *, rng: RngLike = None
    ) -> np.ndarray:
        """Answer for a vector of indicators (independent flips)."""
        generator = ensure_rng(rng)
        values = np.asarray(values, dtype=bool)
        flips = generator.random(values.shape) < self._p
        return values ^ flips

    # -- estimation ---------------------------------------------------------

    def unbiased_rate_estimate(self, responses: Sequence[bool]) -> float:
        """Debiased estimate of the true positive rate from responses.

        If the true rate is ``π``, responses are positive with
        probability ``π(1 - p) + (1 - π)p``; inverting gives
        ``π̂ = (mean - p) / (1 - 2p)`` (clipped to [0, 1]).  Undefined at
        ``p = 1/2`` where responses carry no signal.
        """
        responses = np.asarray(responses, dtype=bool)
        if responses.size == 0:
            raise ValueError("cannot estimate a rate from zero responses")
        if self._p == 0.5:
            raise ValueError("p = 1/2 responses carry no information")
        mean = float(responses.mean())
        estimate = (mean - self._p) / (1.0 - 2.0 * self._p)
        return min(1.0, max(0.0, estimate))

    def truth_probability(self, value: bool, response: bool) -> float:
        """``Pr[response | value]`` — used by the exact DP verifier."""
        return 1.0 - self._p if bool(value) == bool(response) else self._p
