"""Common mechanism interface."""

from __future__ import annotations

import abc

from repro.utils.validation import check_positive


class Mechanism(abc.ABC):
    """A differentially private primitive with a fixed budget ``epsilon``.

    Subclasses document the neighbouring relation their guarantee refers
    to; the classical mechanisms here guarantee standard ε-DP for the
    stated sensitivity, and the pattern-level machinery in
    :mod:`repro.core` builds its pattern-level guarantee on top of them
    (Theorem 1).
    """

    def __init__(self, epsilon: float):
        self._epsilon = check_positive("epsilon", epsilon)

    @property
    def epsilon(self) -> float:
        """The privacy budget consumed by one invocation."""
        return self._epsilon

    @property
    def name(self) -> str:
        """Human-readable mechanism name."""
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(epsilon={self._epsilon:g})"
