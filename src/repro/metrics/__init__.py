"""Data-quality metrics (Section III-B, Eq. (1)-(4)).

Precision and recall of target-pattern detection, the combined quality
``Q = alpha * Prec + (1 - alpha) * Rec``, and the Mean Relative Error
``MRE_Q = (Q_ord - Q_ppm) / Q_ord`` measuring the quality lost to a PPM.
"""

from repro.metrics.aggregate import Summary, summarize
from repro.metrics.confusion import ConfusionCounts
from repro.metrics.mre import mean_relative_error
from repro.metrics.quality import DataQuality, quality_score

__all__ = [
    "ConfusionCounts",
    "DataQuality",
    "Summary",
    "mean_relative_error",
    "quality_score",
    "summarize",
]
