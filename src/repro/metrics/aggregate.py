"""Aggregation of repeated measurements.

The evaluation repeats every configuration over many seeds/datasets
(the paper synthesizes 1000 datasets); :func:`summarize` reduces the
per-repetition values to mean, standard deviation and a normal-theory
95 % confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class Summary:
    """Summary statistics of repeated measurements."""

    mean: float
    std: float
    sem: float
    n: int

    @property
    def ci95(self) -> Tuple[float, float]:
        """Normal-approximation 95 % confidence interval for the mean."""
        half_width = 1.96 * self.sem
        return (self.mean - half_width, self.mean + half_width)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        low, high = self.ci95
        return (
            f"Summary(mean={self.mean:.4f} ± {high - self.mean:.4f}, "
            f"n={self.n})"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Reduce repeated measurements to :class:`Summary` statistics."""
    values = [float(value) for value in values]
    count = len(values)
    if count == 0:
        raise ValueError("cannot summarize zero measurements")
    mean = sum(values) / count
    if count == 1:
        return Summary(mean=mean, std=0.0, sem=0.0, n=1)
    variance = sum((value - mean) ** 2 for value in values) / (count - 1)
    std = math.sqrt(variance)
    return Summary(mean=mean, std=std, sem=std / math.sqrt(count), n=count)
