"""Mean Relative Error of the quality metric (Section III-B, Eq. (4))."""

from __future__ import annotations

from repro.utils.validation import check_non_negative


def mean_relative_error(
    q_ordinary: float, q_ppm: float, *, clip: bool = False
) -> float:
    """Eq. (4): ``MRE_Q = (Q_ord - Q_ppm) / Q_ord``.

    ``q_ordinary`` is the quality without any PPM; ``q_ppm`` the quality
    after applying one.  The value is 0 when the PPM costs nothing and
    approaches 1 as the PPM destroys all quality.  Sampling noise can
    make ``q_ppm`` marginally exceed ``q_ordinary``; ``clip=True`` floors
    the result at 0 for presentation.
    """
    check_non_negative("q_ordinary", q_ordinary)
    check_non_negative("q_ppm", q_ppm)
    if q_ordinary == 0:
        raise ValueError(
            "MRE is undefined when the ordinary quality is 0 "
            "(the unprotected detector already fails completely)"
        )
    value = (q_ordinary - q_ppm) / q_ordinary
    if clip:
        return max(0.0, value)
    return value
