"""Confusion counting for binary per-window detections."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class ConfusionCounts:
    """True/false positive/negative counts of a binary detector.

    The counts may be fractional: the analytic quality model works with
    *expected* counts under the flip distribution.
    """

    tp: float = 0.0
    fp: float = 0.0
    fn: float = 0.0
    tn: float = 0.0

    def __post_init__(self):
        for field_name in ("tp", "fp", "fn", "tn"):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be >= 0, got {value}")

    @classmethod
    def from_vectors(
        cls, truth: Sequence[bool], predicted: Sequence[bool]
    ) -> "ConfusionCounts":
        """Count agreement between ground truth and detector output."""
        truth = np.asarray(truth, dtype=bool)
        predicted = np.asarray(predicted, dtype=bool)
        if truth.shape != predicted.shape:
            raise ValueError(
                f"shape mismatch: truth {truth.shape} vs predicted {predicted.shape}"
            )
        return cls(
            tp=float(np.sum(truth & predicted)),
            fp=float(np.sum(~truth & predicted)),
            fn=float(np.sum(truth & ~predicted)),
            tn=float(np.sum(~truth & ~predicted)),
        )

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        if not isinstance(other, ConfusionCounts):
            return NotImplemented
        return ConfusionCounts(
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            fn=self.fn + other.fn,
            tn=self.tn + other.tn,
        )

    @property
    def total(self) -> float:
        """All counted windows."""
        return self.tp + self.fp + self.fn + self.tn

    @property
    def positives(self) -> float:
        """Ground-truth positive windows (``TP + FN``)."""
        return self.tp + self.fn

    @property
    def detections(self) -> float:
        """Windows the detector flagged (``TP + FP``)."""
        return self.tp + self.fp

    @property
    def precision(self) -> float:
        """Eq. (2): ``TP / (TP + FP)``.

        Convention: a detector that never fires made no false claims, so
        precision is 1 when ``TP + FP = 0``.
        """
        denominator = self.tp + self.fp
        if denominator == 0:
            return 1.0
        return self.tp / denominator

    @property
    def recall(self) -> float:
        """Eq. (1): ``TP / (TP + FN)``.

        Convention: with no positives to find (``TP + FN = 0``) recall
        is 1 — there was nothing to miss.
        """
        denominator = self.tp + self.fn
        if denominator == 0:
            return 1.0
        return self.tp / denominator

    @property
    def accuracy(self) -> float:
        """Fraction of windows answered correctly (1 when empty)."""
        if self.total == 0:
            return 1.0
        return (self.tp + self.tn) / self.total
