"""The combined data-quality metric ``Q`` (Section III-B, Eq. (3))."""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.confusion import ConfusionCounts
from repro.utils.validation import check_probability


def quality_score(precision: float, recall: float, alpha: float = 0.5) -> float:
    """Eq. (3): ``Q = alpha * Prec + (1 - alpha) * Rec``.

    ``alpha`` is the hyper-parameter predefined by data subjects and
    consumers; the paper's evaluation uses ``alpha = 0.5``, weighting
    precision and recall equally.
    """
    precision = check_probability("precision", precision)
    recall = check_probability("recall", recall)
    alpha = check_probability("alpha", alpha)
    return alpha * precision + (1.0 - alpha) * recall


@dataclass(frozen=True)
class DataQuality:
    """Precision, recall and their ``alpha``-combination for one detector."""

    precision: float
    recall: float
    alpha: float = 0.5

    def __post_init__(self):
        check_probability("precision", self.precision)
        check_probability("recall", self.recall)
        check_probability("alpha", self.alpha)

    @classmethod
    def from_confusion(
        cls, counts: ConfusionCounts, *, alpha: float = 0.5
    ) -> "DataQuality":
        """Derive the quality metrics from confusion counts."""
        return cls(
            precision=counts.precision, recall=counts.recall, alpha=alpha
        )

    @property
    def q(self) -> float:
        """The combined score ``Q``."""
        return quality_score(self.precision, self.recall, self.alpha)

    def with_alpha(self, alpha: float) -> "DataQuality":
        """The same measurements re-weighted with a different ``alpha``."""
        return DataQuality(self.precision, self.recall, alpha)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataQuality(P={self.precision:.4f}, R={self.recall:.4f}, "
            f"alpha={self.alpha:g}, Q={self.q:.4f})"
        )
