"""Budget Absorption (BA) — Kellaris et al., VLDB 2014, Algorithm 3.

BA assigns every timestamp the nominal budget ``ε_2/w``.  Timestamps
that skip publication (approximate with the last release) leave their
budget to be *absorbed* by the next publication, which may thus
accumulate up to ``ε_2``.  After a publication that absorbed ``k``
nominal budgets, the following ``k - 1`` timestamps are *nullified*
(forced to approximate) so that no sliding window of ``w`` timestamps
ever spends more than ``ε_2`` on publications.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.w_event import ReleaseTrace, WEventMechanism


class BudgetAbsorption(WEventMechanism):
    """The BA scheduler for w-event DP."""

    mechanism_name = "ba"

    def _initial_scheduler_state(self) -> Dict:
        return {"last_publication": -1, "nullified_until": -1}

    def _publication_budget(
        self, t: int, trace: ReleaseTrace, state: Dict
    ) -> float:
        if t <= state["nullified_until"]:
            return 0.0
        nominal = self.epsilon_publication / self.w
        # Absorb the nominal budgets of the timestamps skipped since the
        # last publication (inclusive of t itself), capped at w units.
        # Nullified timestamps contribute nothing: their budget was spent
        # in advance by the publication that absorbed it.
        barrier = max(state["last_publication"], state["nullified_until"])
        absorbed_units = min(t - barrier, self.w)
        return nominal * absorbed_units

    def _after_publication(
        self, t: int, budget: float, trace: ReleaseTrace, state: Dict
    ) -> None:
        nominal = self.epsilon_publication / self.w
        absorbed_units = int(round(budget / nominal))
        # Nullify the next (absorbed_units - 1) timestamps.
        state["nullified_until"] = t + absorbed_units - 1
        state["last_publication"] = t

    def _budget_schedule(
        self, t0: int, count: int, state: Dict
    ) -> Optional[np.ndarray]:
        """BA's per-timestamp budgets assuming no publication in the span.

        With the barrier fixed (no new publication moves it), the
        absorbed units at ``t`` are ``min(t - barrier, w)`` — integers,
        so the vectorized ``nominal * units`` products are bit-equal to
        the scalar hook's (int → float conversion is exact and float
        multiplication is deterministic).  Nullified timestamps are
        zeroed the same way the scalar hook short-circuits them.
        """
        nominal = self.epsilon_publication / self.w
        barrier = max(state["last_publication"], state["nullified_until"])
        ts = np.arange(t0, t0 + count, dtype=np.int64)
        absorbed_units = np.minimum(ts - barrier, self.w)
        budgets = nominal * absorbed_units
        return np.where(ts <= state["nullified_until"], 0.0, budgets)

    def _zero_budget_until(self, t: int, state: Dict) -> int:
        # Nullified timestamps get budget 0 whatever the data; the
        # release loop bulk-approximates [t, nullified_until] without
        # drawing randomness.
        return state["nullified_until"] + 1

    @property
    def max_single_publication_budget(self) -> float:
        """The largest budget one publication can receive (``ε_2``)."""
        return self.epsilon_publication
