"""Budget conversion between native guarantees and pattern-level ε.

Section VI-A.2: "The privacy budgets of BD, BA, and landmark privacy are
converted from their original definitions to the one defined by
pattern-level DP.  The conversion is achieved by aggregating the
original privacy budgets related to the predefined private pattern
types."

Concretely: a private pattern ``P = seq(e_1..e_m)`` whose instance lives
in one window exposes ``m`` existence indicators at one timestamp.  The
pattern-level budget a stream mechanism effectively grants is the
aggregate (group-privacy) privacy loss those ``m`` indicators can
suffer::

    ε_pattern = m × σ(ε_native)

where ``σ`` is the per-timestamp privacy loss of the mechanism — the
budget it can spend on the release(s) covering one timestamp.  Inverting
``σ`` calibrates a baseline to a target pattern-level ε so all
mechanisms in Fig. 4 are compared under equally strong pattern
protection.

Two accounting modes are provided:

``"worst_case"`` (default)
    ``σ`` is the largest spend any single timestamp can receive
    (DP guarantees are worst-case statements); this is the sound
    conversion.
``"nominal"``
    ``σ`` is the average per-timestamp spend — an optimistic reading
    that favours the baselines; exposed for the sensitivity ablation.

As the paper notes, "an increase or a decrease of privacy budgets are
both possible after a conversion" — e.g. BD's worst-case σ grows with
``ε_native/4`` while its nominal σ shrinks with ``1/w``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_positive_int,
)

_MODES = ("worst_case", "nominal")


def _check_mode(mode: str) -> str:
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    return mode


@dataclass(frozen=True)
class ConvertedBudget:
    """Record of one conversion (for reporting and tests)."""

    mechanism: str
    native_epsilon: float
    pattern_epsilon: float
    pattern_length: int
    mode: str


# -- per-mechanism per-timestamp loss coefficients -----------------------------
#
# Each σ is linear in the native budget: σ(ε) = coefficient × ε, so the
# conversions are exact inversions.


def bd_timestep_coefficient(w: int, *, mode: str = "worst_case") -> float:
    """σ/ε for Budget Distribution.

    Worst case: the first publication after a quiet window receives
    ``ε_2/2 = ε/4``, plus the dissimilarity share ``ε_1/w = ε/(2w)``.
    Nominal: the publication half spread over the window, ``ε/(2w)``,
    plus the same dissimilarity share.
    """
    check_positive_int("w", w)
    _check_mode(mode)
    if mode == "worst_case":
        return 0.25 + 1.0 / (2.0 * w)
    return 1.0 / (2.0 * w) + 1.0 / (2.0 * w)


def ba_timestep_coefficient(w: int, *, mode: str = "worst_case") -> float:
    """σ/ε for Budget Absorption.

    Worst case: a publication that absorbed the whole window receives
    ``ε_2 = ε/2``, plus the dissimilarity share ``ε/(2w)``.  Nominal:
    the nominal publication budget ``ε/(2w)`` plus the dissimilarity
    share.
    """
    check_positive_int("w", w)
    _check_mode(mode)
    if mode == "worst_case":
        return 0.5 + 1.0 / (2.0 * w)
    return 1.0 / (2.0 * w) + 1.0 / (2.0 * w)


def landmark_timestep_coefficient(
    n_landmarks: int, *, rho: float = 0.5, mode: str = "worst_case"
) -> float:
    """σ/ε for landmark privacy at a landmark timestamp.

    The pattern's events live in landmark windows.  Worst case: the last
    remaining landmark receives the whole remaining publication share
    ``ρε/2`` plus its dissimilarity share ``ρε/(2L)``.  Nominal: an even
    split, ``ρε/L`` in total.
    """
    check_positive_int("n_landmarks", n_landmarks)
    check_in_range("rho", rho, 0.0, 1.0, inclusive=False)
    _check_mode(mode)
    if mode == "worst_case":
        return rho / 2.0 + rho / (2.0 * n_landmarks)
    return rho / n_landmarks


def event_level_timestep_coefficient() -> float:
    """σ/ε for event-level RR: each event spends its full budget."""
    return 1.0


def user_level_timestep_coefficient(n_windows: int, n_types: int) -> float:
    """σ/ε for user-level RR over a finite horizon: ``1/(n × K)``."""
    check_positive_int("n_windows", n_windows)
    check_positive_int("n_types", n_types)
    return 1.0 / (n_windows * n_types)


# -- conversions ---------------------------------------------------------------


def pattern_epsilon_from_native(
    native_epsilon: float, pattern_length: int, coefficient: float
) -> float:
    """``ε_pattern = m × σ(ε_native)`` for a linear σ."""
    check_positive("native_epsilon", native_epsilon)
    check_positive_int("pattern_length", pattern_length)
    check_positive("coefficient", coefficient)
    return pattern_length * coefficient * native_epsilon

def native_epsilon_for_pattern(
    pattern_epsilon: float, pattern_length: int, coefficient: float
) -> float:
    """Invert the conversion: the native budget hitting a target
    pattern-level ε."""
    check_positive("pattern_epsilon", pattern_epsilon)
    check_positive_int("pattern_length", pattern_length)
    check_positive("coefficient", coefficient)
    return pattern_epsilon / (pattern_length * coefficient)


class BudgetConverter:
    """Conversion helper bound to one private pattern length and mode."""

    def __init__(self, pattern_length: int, *, mode: str = "worst_case"):
        self.pattern_length = check_positive_int(
            "pattern_length", pattern_length
        )
        self.mode = _check_mode(mode)

    # BD -----------------------------------------------------------------

    def bd_native(self, pattern_epsilon: float, w: int) -> float:
        """w-event budget for BD achieving ``pattern_epsilon``."""
        return native_epsilon_for_pattern(
            pattern_epsilon,
            self.pattern_length,
            bd_timestep_coefficient(w, mode=self.mode),
        )

    def bd_pattern(self, native_epsilon: float, w: int) -> ConvertedBudget:
        """Pattern-level ε of a BD instance with the given native budget."""
        value = pattern_epsilon_from_native(
            native_epsilon,
            self.pattern_length,
            bd_timestep_coefficient(w, mode=self.mode),
        )
        return ConvertedBudget(
            "bd", native_epsilon, value, self.pattern_length, self.mode
        )

    # BA -----------------------------------------------------------------

    def ba_native(self, pattern_epsilon: float, w: int) -> float:
        """w-event budget for BA achieving ``pattern_epsilon``."""
        return native_epsilon_for_pattern(
            pattern_epsilon,
            self.pattern_length,
            ba_timestep_coefficient(w, mode=self.mode),
        )

    def ba_pattern(self, native_epsilon: float, w: int) -> ConvertedBudget:
        """Pattern-level ε of a BA instance with the given native budget."""
        value = pattern_epsilon_from_native(
            native_epsilon,
            self.pattern_length,
            ba_timestep_coefficient(w, mode=self.mode),
        )
        return ConvertedBudget(
            "ba", native_epsilon, value, self.pattern_length, self.mode
        )

    # Landmark --------------------------------------------------------------

    def landmark_native(
        self, pattern_epsilon: float, n_landmarks: int, *, rho: float = 0.5
    ) -> float:
        """Landmark budget achieving ``pattern_epsilon``."""
        return native_epsilon_for_pattern(
            pattern_epsilon,
            self.pattern_length,
            landmark_timestep_coefficient(n_landmarks, rho=rho, mode=self.mode),
        )

    def landmark_pattern(
        self, native_epsilon: float, n_landmarks: int, *, rho: float = 0.5
    ) -> ConvertedBudget:
        """Pattern-level ε of a landmark instance."""
        value = pattern_epsilon_from_native(
            native_epsilon,
            self.pattern_length,
            landmark_timestep_coefficient(n_landmarks, rho=rho, mode=self.mode),
        )
        return ConvertedBudget(
            "landmark", native_epsilon, value, self.pattern_length, self.mode
        )

    # Event / user level -----------------------------------------------------

    def event_level_native(self, pattern_epsilon: float) -> float:
        """Per-event budget achieving ``pattern_epsilon`` (``ε/m``)."""
        return native_epsilon_for_pattern(
            pattern_epsilon,
            self.pattern_length,
            event_level_timestep_coefficient(),
        )

    def user_level_native(
        self, pattern_epsilon: float, n_windows: int, n_types: int
    ) -> float:
        """User-level budget achieving ``pattern_epsilon``."""
        return native_epsilon_for_pattern(
            pattern_epsilon,
            self.pattern_length,
            user_level_timestep_coefficient(n_windows, n_types),
        )
