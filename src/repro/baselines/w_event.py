"""w-event differential privacy machinery (Kellaris et al., VLDB 2014).

w-event ε-DP protects any event sequence occurring within a sliding
window of ``w`` timestamps: over any ``w`` consecutive releases the
total budget spent must not exceed ε.  The two classic schedulers —
Budget Distribution (BD) and Budget Absorption (BA) — share the same
skeleton, implemented here:

1. split ε into ``ε_1 = ε/2`` for *dissimilarity* estimation and
   ``ε_2 = ε/2`` for *publications*;
2. at each timestamp, privately estimate the distance between the
   current statistics and the last release (spending ``ε_1/w``);
3. publish a fresh Laplace release when the estimated distance exceeds
   the error a publication would itself introduce, otherwise
   re-release the previous output (an *approximation*, free of charge);
4. the publication budget per timestamp is chosen by the subclass
   (:class:`~repro.baselines.budget_distribution.BudgetDistribution` or
   :class:`~repro.baselines.budget_absorption.BudgetAbsorption`).

The release loop is exposed both batched (:meth:`WEventMechanism.perturb`)
and incrementally (:meth:`WEventMechanism.online_releaser`, used by
:class:`repro.cep.online.OnlineSession`); the batch path runs on top of
the same stepper, so the two agree bit for bit under the same seed.

The per-timestamp decision loop itself lives in
:mod:`repro.runtime.decisions`: each scheduler declares its decision
rule as data (:meth:`WEventMechanism.decision_rule`) and the shared
plan → scan → resolve kernel drives the release — vectorized U-space
scans certify skip runs, exact scalar arithmetic decides everything
near a decision boundary.  ``scan=`` on the mechanism constructor (or
the ``scan=/margin=/prefetch=`` spec keys) tunes or disables the scan.

In this library the per-timestamp statistics are the windowed existence
indicators (one 0/1 entry per event type, L1 sensitivity 1 under a
single-event change); released vectors are thresholded at 1/2 to answer
the binary pattern queries.
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.baselines.base import StreamMechanism
from repro.runtime.decisions import DecisionRule, ScanConfig, WEventKernel
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive, check_positive_int


class TraceColumn:
    """One trace column on chunk-doubling numpy storage.

    Behaves like the plain Python list it replaces — ``append``,
    ``extend``, ``len``, indexing/slicing (slices return lists),
    iteration, equality against lists — but stores the values in a
    contiguous typed buffer that grows geometrically, so
    million-timestamp traces stop paying per-element object overhead
    and the accounting accessors read straight numpy arrays.

    Two additions the release kernel relies on:

    - :meth:`extend_constant` appends ``count`` copies of one value
      without materializing a Python list (the bulk-skip paths);
    - :attr:`version` counts mutations, letting
      :meth:`ReleaseTrace._spend_prefix` cache derived arrays and
      invalidate on any append/extend/restore.
    """

    def __init__(self, values: Iterable = (), *, dtype=float):
        self._dtype = np.dtype(dtype)
        self._data = np.zeros(0, dtype=self._dtype)
        self._n = 0
        self.version = 0
        if values is not None:
            self.extend(values)

    def _reserve(self, extra: int) -> None:
        needed = self._n + extra
        capacity = self._data.shape[0]
        if needed <= capacity:
            return
        grown = np.zeros(max(16, 2 * capacity, needed), dtype=self._dtype)
        grown[: self._n] = self._data[: self._n]
        self._data = grown

    def _view(self) -> np.ndarray:
        return self._data[: self._n]

    def append(self, value) -> None:
        self._reserve(1)
        self._data[self._n] = value
        self._n += 1
        self.version += 1

    def extend(self, values: Iterable) -> None:
        if isinstance(values, TraceColumn):
            values = values._view()
        elif not isinstance(values, (np.ndarray, list, tuple)):
            values = list(values)
        count = len(values)
        if count:
            self._reserve(count)
            self._data[self._n : self._n + count] = values
            self._n += count
        self.version += 1

    def extend_constant(self, value, count: int) -> None:
        """Append ``count`` copies of ``value`` (one buffer fill)."""
        if count:
            self._reserve(count)
            self._data[self._n : self._n + count] = value
            self._n += count
        self.version += 1

    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0

    def __getitem__(self, key):
        if isinstance(key, slice):
            return self._view()[key].tolist()
        return self._view()[key].item()

    def __setitem__(self, key, value) -> None:
        if isinstance(key, slice) and key == slice(None, None, None):
            # Full-slice replacement (the restore path) may change the
            # length, exactly as ``list[:] = values`` does.
            self._n = 0
            self.extend(value)
            return
        self._view()[key] = value
        self.version += 1

    def __iter__(self):
        return iter(self._view().tolist())

    def __eq__(self, other) -> bool:
        if isinstance(other, TraceColumn):
            return (
                self._n == other._n
                and bool(np.array_equal(self._view(), other._view()))
            )
        if isinstance(other, (list, tuple)):
            return self._view().tolist() == list(other)
        if isinstance(other, np.ndarray):
            return bool(np.array_equal(self._view(), other))
        return NotImplemented

    __hash__ = None

    def __array__(self, dtype=None, copy=None):
        view = self._view()
        if dtype is not None and np.dtype(dtype) != self._dtype:
            return view.astype(dtype)
        if copy:
            return view.copy()
        return view

    def tolist(self) -> List:
        return self._view().tolist()

    def __repr__(self) -> str:
        return f"TraceColumn({self._view().tolist()!r})"


def _bool_column() -> TraceColumn:
    return TraceColumn(dtype=bool)


@dataclass
class ReleaseTrace:
    """Per-timestamp record of a w-event run (for tests and ablations)."""

    published: TraceColumn = field(default_factory=_bool_column)
    publication_budgets: TraceColumn = field(default_factory=TraceColumn)
    dissimilarity_budgets: TraceColumn = field(default_factory=TraceColumn)

    def __post_init__(self):
        if not isinstance(self.published, TraceColumn):
            self.published = TraceColumn(self.published, dtype=bool)
        if not isinstance(self.publication_budgets, TraceColumn):
            self.publication_budgets = TraceColumn(self.publication_budgets)
        if not isinstance(self.dissimilarity_budgets, TraceColumn):
            self.dissimilarity_budgets = TraceColumn(
                self.dissimilarity_budgets
            )
        self._prefix_cache: Optional[Tuple[Tuple[int, int, int], np.ndarray]]
        self._prefix_cache = None

    def _spend_prefix(self) -> np.ndarray:
        """Prefix sums of the per-timestamp total spend.

        ``prefix[t]`` is the budget spent strictly before timestamp
        ``t``, so any window's spend is one subtraction.  Both window
        accessors read through this, keeping them mutually consistent.

        The array is cached against the columns' length and mutation
        counters — any append, bulk extend or restore invalidates it —
        so repeated guarantee checks on a long trace cost O(1) after
        the first instead of recomputing the full cumsum every call.
        """
        key = (
            len(self.publication_budgets),
            self.publication_budgets.version,
            self.dissimilarity_budgets.version,
        )
        cached = self._prefix_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        totals = np.asarray(self.publication_budgets, dtype=float) + (
            np.asarray(self.dissimilarity_budgets, dtype=float)
        )
        prefix = np.empty(totals.shape[0] + 1)
        prefix[0] = 0.0
        np.cumsum(totals, out=prefix[1:])
        self._prefix_cache = (key, prefix)
        return prefix

    def spent_in_window(self, start: int, w: int) -> float:
        """Total budget spent in the ``w`` timestamps from ``start``."""
        n = len(self.published)
        start = min(max(start, 0), n)
        stop = min(start + w, n)
        prefix = self._spend_prefix()
        return float(prefix[stop] - prefix[start])

    def max_window_spend(self, w: int) -> float:
        """The largest spend over any sliding window of ``w`` timestamps.

        The w-event guarantee requires this never to exceed ε.  Computed
        from the spend prefix sums in O(n) — not O(n·w) slicing — so the
        guarantee checks stay cheap on long traces.
        """
        if not self.published:
            return 0.0
        prefix = self._spend_prefix()
        n = len(self.published)
        starts = np.arange(n)
        stops = np.minimum(starts + w, n)
        return float(np.max(prefix[stops] - prefix[starts]))


class OnlineReleaser:
    """Incremental w-event release: one indicator vector per step.

    Owns the scheduler state, the dissimilarity/publication accounting
    trace and the last release; created by
    :meth:`WEventMechanism.online_releaser`.  The decision loop itself
    is the shared :class:`~repro.runtime.decisions.WEventKernel`,
    driven by the mechanism's declared
    :class:`~repro.runtime.decisions.DecisionRule`.

    The per-timestamp randomness is ``derive_rng(rng, "w-event", t)``,
    drawn through an :class:`~repro.runtime.rng_pool.IndexedRngPool`:
    bit-identical to per-step derivation, but the pool prefetches parent
    entropy — exactly ``horizon`` words when the stream length is known
    (the batch path), in blocks otherwise.
    """

    def __init__(
        self,
        mechanism: "WEventMechanism",
        n_types: int,
        rng: RngLike,
        *,
        horizon: Optional[int] = None,
    ):
        if n_types <= 0:
            raise ValueError(f"n_types must be positive, got {n_types}")
        self.mechanism = mechanism
        self.n_types = n_types
        from repro.runtime.rng_pool import IndexedRngPool

        self._children = IndexedRngPool(rng, "w-event", count=horizon)
        self.trace = ReleaseTrace()
        self.last_release: Optional[np.ndarray] = None
        self.t = 0
        self.scheduler_state: Dict = mechanism._initial_scheduler_state()
        # Per-step constants, hoisted out of the hot loop (identical
        # floating-point values to recomputing them per timestamp).
        self._dissimilarity_draw_scale = (
            mechanism.w
            * mechanism.sensitivity
            / mechanism.epsilon_dissimilarity
            / n_types
        )
        self._dissimilarity_charge = (
            mechanism.epsilon_dissimilarity / mechanism.w
        )
        self._kernel = WEventKernel(
            mechanism.decision_rule(),
            mechanism.scan_config,
            n_types=n_types,
            sensitivity=mechanism.sensitivity,
            dissimilarity_scale=self._dissimilarity_draw_scale,
            dissimilarity_charge=self._dissimilarity_charge,
        )

    #: Default block length above which the kernel precomputes the
    #: dissimilarity uniforms vectorized; tunable per mechanism through
    #: :class:`~repro.runtime.decisions.ScanConfig` (``prefetch=`` in
    #: the spec grammar).  Kept here as the documented default.
    _UNIFORM_PREFETCH_MIN = ScanConfig.prefetch_min

    def step(self, true_vector: np.ndarray) -> np.ndarray:
        """Release one timestamp's statistics."""
        true_vector = np.asarray(true_vector, dtype=float)
        if true_vector.shape != (self.n_types,):
            raise ValueError(
                f"expected a vector of {self.n_types} statistics, got "
                f"shape {true_vector.shape}"
            )
        self._run_block(true_vector.reshape(1, -1), None)
        return self.last_release.copy()

    def step_block(self, matrix: np.ndarray) -> np.ndarray:
        """Release a block of timestamps; rows are indicator vectors."""
        matrix = np.asarray(matrix, dtype=float)
        released = np.empty_like(matrix)
        self._run_block(matrix, released)
        return released

    def advance_block(self, matrix: np.ndarray) -> None:
        """Step the scheduler through a block without materializing output.

        The checkpoint prepass of
        :class:`~repro.runtime.executors.ShardedExecutor` walks the whole
        stream through this — state, trace and randomness evolve exactly
        as under :meth:`step_block`, only the released rows are not
        built.  Under the decision kernel this is the fastest path of
        all: certified-skip runs and zero-budget stretches cost a few
        array operations regardless of length, so the prepass shrinks
        toward the publication timestamps alone.
        """
        self._run_block(np.asarray(matrix, dtype=float), None)

    def _run_block(
        self, matrix: np.ndarray, released: Optional[np.ndarray]
    ) -> None:
        """The release loop over a block (``released=None`` ⇒ prepass).

        Thin wrapper over
        :meth:`repro.runtime.decisions.WEventKernel.run_block` — the
        plan → scan → resolve pipeline documented there.  Bit-identity
        with the historical scalar loop holds in every scan mode.
        """
        self._kernel.run_block(self, matrix, released)

    # -- checkpointing -------------------------------------------------

    def snapshot(self, *, include_trace: bool = True) -> Dict:
        """A picklable checkpoint of the full release state at time ``t``.

        Captures everything a bit-identical continuation needs: the
        scheduler state, the accounting trace, the last release, the
        step counter and the rng-pool derivation source.  Restoring it
        on a fresh releaser (same mechanism parameters) and stepping on
        reproduces an uninterrupted run exactly.

        ``include_trace=False`` omits the trace prefix (its length
        grows with ``t``, and copying/pickling it at every shard
        boundary would make the checkpoint prepass quadratic).  The
        built-in schedulers never read the trace — BD budgets come
        from the in-window publication state, BA from its markers —
        so shard replicas replay identically without it; only session
        checkpoints, whose restored trace must equal the uninterrupted
        run's, need the full form.
        """
        return {
            "format": 1,
            "t": self.t,
            "n_types": self.n_types,
            "scheduler_state": copy.deepcopy(self.scheduler_state),
            "last_release": (
                None
                if self.last_release is None
                else np.array(self.last_release, copy=True)
            ),
            "trace": (
                (
                    list(self.trace.published),
                    list(self.trace.publication_budgets),
                    list(self.trace.dissimilarity_budgets),
                )
                if include_trace
                else None
            ),
            "rng": self._children.snapshot(),
        }

    def restore(self, snapshot: Dict) -> None:
        """Adopt a checkpoint produced by :meth:`snapshot`.

        The trace object is mutated in place (not replaced) so callers
        holding a reference — ``mechanism.last_trace``, the runtime
        stepper — keep observing the restored run.  A trace-free
        checkpoint leaves the current trace untouched.
        """
        if snapshot["n_types"] != self.n_types:
            raise ValueError(
                f"checkpoint covers {snapshot['n_types']} event types, "
                f"this releaser has {self.n_types}"
            )
        self.t = int(snapshot["t"])
        self.scheduler_state = copy.deepcopy(snapshot["scheduler_state"])
        last_release = snapshot["last_release"]
        self.last_release = (
            None if last_release is None else np.array(last_release, copy=True)
        )
        if snapshot["trace"] is not None:
            published, publication_budgets, dissimilarity_budgets = snapshot[
                "trace"
            ]
            self.trace.published[:] = published
            self.trace.publication_budgets[:] = publication_budgets
            self.trace.dissimilarity_budgets[:] = dissimilarity_budgets
        self._children.restore(snapshot["rng"])

    # -- decision replay -----------------------------------------------

    def decision_slice(self, start: int, stop: int) -> Tuple:
        """The recorded scheduler decisions for timestamps [start, stop).

        Only meaningful after the trace covers ``stop`` (i.e. on a
        releaser that already advanced past it — the checkpoint
        prepass).  Feed the result to :meth:`replay_block` on a restored
        releaser to reproduce those timestamps without re-running the
        scheduler.
        """
        if stop > len(self.trace.published):
            raise ValueError(
                f"trace covers {len(self.trace.published)} timestamps; "
                f"cannot slice decisions up to {stop}"
            )
        return (
            list(self.trace.published[start:stop]),
            list(self.trace.publication_budgets[start:stop]),
        )

    def replay_block(self, matrix: np.ndarray, decisions: Tuple) -> np.ndarray:
        """Reproduce :meth:`step_block` from recorded scheduler decisions.

        ``decisions`` is :meth:`decision_slice` of a completed run for
        exactly the rows of ``matrix`` (absolute timestamps ``t`` to
        ``t + n``); the heavy lifting is
        :meth:`repro.runtime.decisions.WEventKernel.replay_block`.
        State, trace and step counter advance exactly as under
        :meth:`step_block`, so stepping may resume afterwards.
        """
        matrix = np.asarray(matrix, dtype=float)
        return self._kernel.replay_block(self, matrix, decisions)


class WEventMechanism(StreamMechanism):
    """Shared skeleton of the BD and BA schedulers."""

    def __init__(
        self,
        epsilon: float,
        w: int,
        *,
        sensitivity: float = 1.0,
        scan: Union[None, str, ScanConfig] = None,
    ):
        super().__init__(epsilon)
        self.w = check_positive_int("w", w)
        self.sensitivity = check_positive("sensitivity", sensitivity)
        self.epsilon_dissimilarity = epsilon / 2.0
        self.epsilon_publication = epsilon / 2.0
        self.scan_config = ScanConfig.coerce(scan)
        self.last_trace: Optional[ReleaseTrace] = None

    # -- subclass hooks -----------------------------------------------------

    def _initial_scheduler_state(self) -> Dict:
        """Fresh per-run scheduler state (subclasses may extend)."""
        return {}

    @abc.abstractmethod
    def _publication_budget(
        self, t: int, trace: ReleaseTrace, state: Dict
    ) -> float:
        """Budget available for publishing at timestamp ``t`` (0 = skip)."""

    def _after_publication(
        self, t: int, budget: float, trace: ReleaseTrace, state: Dict
    ) -> None:
        """Hook invoked after a publication is committed."""

    def _zero_budget_until(self, t: int, state: Dict) -> int:
        """Exclusive end of a data-independent zero-budget stretch at ``t``.

        When every timestamp in ``[t, end)`` is guaranteed publication
        budget 0 regardless of the data (BA's nullified periods), the
        release loop bulk-approximates them without consuming any
        randomness — bit-identical to stepping, since zero-budget steps
        never draw.  The default declares no stretch.
        """
        return t

    def _budget_schedule(
        self, t0: int, count: int, state: Dict
    ) -> Optional[np.ndarray]:
        """Per-timestamp budgets for ``[t0, t0 + count)``, no-publication
        hypothesis — the vectorized twin of :meth:`_publication_budget`.

        Every value must be bit-equal to the float the scalar hook would
        return at that timestamp given no publication occurs in the
        span; the call must not mutate ``state`` (the kernel applies
        :meth:`_after_skip_run` when it commits a skip run).  Returning
        ``None`` — the default, so third-party subclasses keep working
        unchanged — disables the decision scan and the kernel runs the
        scalar loop.
        """
        return None

    def _after_skip_run(
        self, t_last: int, trace: ReleaseTrace, state: Dict
    ) -> None:
        """Normalize state after a bulk-applied skip run ending at ``t_last``.

        The scalar loop calls :meth:`_publication_budget` at every
        timestamp; a scheduler whose budget call prunes state as a side
        effect (BD's sliding publication window) must reproduce here
        the state its scalar calls would have left after ``t_last``.
        The default does nothing — correct whenever the budget hook is
        read-only.
        """

    def decision_rule(self) -> DecisionRule:
        """This scheduler's decision logic as data (the kernel's *plan*)."""
        return DecisionRule(
            budget_schedule=self._budget_schedule,
            publication_budget=self._publication_budget,
            zero_budget_until=self._zero_budget_until,
            after_publication=self._after_publication,
            after_skip_run=self._after_skip_run,
        )

    # -- release -----------------------------------------------------------

    def online_releaser(
        self,
        n_types: int,
        *,
        rng: RngLike = None,
        horizon: Optional[int] = None,
    ) -> OnlineReleaser:
        """An incremental releaser for push-based processing.

        Pass ``horizon`` when the number of steps is known up front: the
        releaser then consumes exactly as much parent entropy as the
        equivalent sequence of ``derive_rng`` calls.
        """
        return OnlineReleaser(self, n_types, rng, horizon=horizon)

    def perturb(
        self, stream: IndicatorStream, *, rng: RngLike = None
    ) -> IndicatorStream:
        matrix = stream.matrix_view().astype(float)
        n_windows, n_types = matrix.shape
        releaser = self.online_releaser(n_types, rng=rng, horizon=n_windows)
        released = releaser.step_block(matrix)
        self.last_trace = releaser.trace
        return stream.with_matrix(released >= 0.5)
