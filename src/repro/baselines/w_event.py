"""w-event differential privacy machinery (Kellaris et al., VLDB 2014).

w-event ε-DP protects any event sequence occurring within a sliding
window of ``w`` timestamps: over any ``w`` consecutive releases the
total budget spent must not exceed ε.  The two classic schedulers —
Budget Distribution (BD) and Budget Absorption (BA) — share the same
skeleton, implemented here:

1. split ε into ``ε_1 = ε/2`` for *dissimilarity* estimation and
   ``ε_2 = ε/2`` for *publications*;
2. at each timestamp, privately estimate the distance between the
   current statistics and the last release (spending ``ε_1/w``);
3. publish a fresh Laplace release when the estimated distance exceeds
   the error a publication would itself introduce, otherwise
   re-release the previous output (an *approximation*, free of charge);
4. the publication budget per timestamp is chosen by the subclass
   (:class:`~repro.baselines.budget_distribution.BudgetDistribution` or
   :class:`~repro.baselines.budget_absorption.BudgetAbsorption`).

The release loop is exposed both batched (:meth:`WEventMechanism.perturb`)
and incrementally (:meth:`WEventMechanism.online_releaser`, used by
:class:`repro.cep.online.OnlineSession`); the batch path runs on top of
the same stepper, so the two agree bit for bit under the same seed.

In this library the per-timestamp statistics are the windowed existence
indicators (one 0/1 entry per event type, L1 sensitivity 1 under a
single-event change); released vectors are thresholded at 1/2 to answer
the binary pattern queries.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.base import StreamMechanism
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive, check_positive_int


@dataclass
class ReleaseTrace:
    """Per-timestamp record of a w-event run (for tests and ablations)."""

    published: List[bool] = field(default_factory=list)
    publication_budgets: List[float] = field(default_factory=list)
    dissimilarity_budgets: List[float] = field(default_factory=list)

    def spent_in_window(self, start: int, w: int) -> float:
        """Total budget spent in the ``w`` timestamps from ``start``."""
        stop = min(start + w, len(self.published))
        return float(
            sum(self.publication_budgets[start:stop])
            + sum(self.dissimilarity_budgets[start:stop])
        )

    def max_window_spend(self, w: int) -> float:
        """The largest spend over any sliding window of ``w`` timestamps.

        The w-event guarantee requires this never to exceed ε.
        """
        if not self.published:
            return 0.0
        return max(
            self.spent_in_window(start, w)
            for start in range(len(self.published))
        )


class OnlineReleaser:
    """Incremental w-event release: one indicator vector per step.

    Owns the scheduler state, the dissimilarity/publication accounting
    trace and the last release; created by
    :meth:`WEventMechanism.online_releaser`.

    The per-timestamp randomness is ``derive_rng(rng, "w-event", t)``,
    drawn through an :class:`~repro.runtime.rng_pool.IndexedRngPool`:
    bit-identical to per-step derivation, but the pool prefetches parent
    entropy — exactly ``horizon`` words when the stream length is known
    (the batch path), in blocks otherwise.
    """

    def __init__(
        self,
        mechanism: "WEventMechanism",
        n_types: int,
        rng: RngLike,
        *,
        horizon: Optional[int] = None,
    ):
        if n_types <= 0:
            raise ValueError(f"n_types must be positive, got {n_types}")
        self.mechanism = mechanism
        self.n_types = n_types
        from repro.runtime.rng_pool import IndexedRngPool

        self._children = IndexedRngPool(rng, "w-event", count=horizon)
        self.trace = ReleaseTrace()
        self.last_release: Optional[np.ndarray] = None
        self.t = 0
        self.scheduler_state: Dict = mechanism._initial_scheduler_state()

    def step(self, true_vector: np.ndarray) -> np.ndarray:
        """Release one timestamp's statistics."""
        true_vector = np.asarray(true_vector, dtype=float)
        if true_vector.shape != (self.n_types,):
            raise ValueError(
                f"expected a vector of {self.n_types} statistics, got "
                f"shape {true_vector.shape}"
            )
        mechanism = self.mechanism
        rng_t = self._children.generator(self.t)
        budget = mechanism._publication_budget(
            self.t, self.trace, self.scheduler_state
        )
        dissimilarity_scale = (
            mechanism.w * mechanism.sensitivity
            / mechanism.epsilon_dissimilarity
        )
        publish = False
        if self.last_release is None:
            publish = budget > 0
        elif budget > 0:
            # Private dissimilarity: mean absolute deviation from the
            # last release, plus Laplace noise (Kellaris' `dis`).  The
            # reduce spelling is bit-identical to .mean() and skips its
            # dispatch overhead in this per-window hot loop.
            true_distance = float(
                np.add.reduce(np.abs(true_vector - self.last_release))
                / self.n_types
            )
            noisy_distance = true_distance + float(
                rng_t.laplace(0.0, dissimilarity_scale / self.n_types)
            )
            publish = noisy_distance > mechanism.sensitivity / budget
        self.trace.dissimilarity_budgets.append(
            mechanism.epsilon_dissimilarity / mechanism.w
        )
        if publish:
            noise = rng_t.laplace(
                0.0, mechanism.sensitivity / budget, size=self.n_types
            )
            self.last_release = true_vector + noise
            self.trace.published.append(True)
            self.trace.publication_budgets.append(budget)
            mechanism._after_publication(
                self.t, budget, self.trace, self.scheduler_state
            )
        else:
            if self.last_release is None:
                # Nothing released yet and no budget: emit pure noise
                # around 1/2 so the output is data-independent.
                self.last_release = np.full(self.n_types, 0.5)
            self.trace.published.append(False)
            self.trace.publication_budgets.append(0.0)
        self.t += 1
        return self.last_release.copy()

    def step_block(self, matrix: np.ndarray) -> np.ndarray:
        """Release a block of timestamps; rows are indicator vectors."""
        released = np.empty_like(matrix, dtype=float)
        for row in range(matrix.shape[0]):
            released[row] = self.step(matrix[row])
        return released


class WEventMechanism(StreamMechanism):
    """Shared skeleton of the BD and BA schedulers."""

    def __init__(
        self,
        epsilon: float,
        w: int,
        *,
        sensitivity: float = 1.0,
    ):
        super().__init__(epsilon)
        self.w = check_positive_int("w", w)
        self.sensitivity = check_positive("sensitivity", sensitivity)
        self.epsilon_dissimilarity = epsilon / 2.0
        self.epsilon_publication = epsilon / 2.0
        self.last_trace: Optional[ReleaseTrace] = None

    # -- subclass hooks -----------------------------------------------------

    def _initial_scheduler_state(self) -> Dict:
        """Fresh per-run scheduler state (subclasses may extend)."""
        return {}

    @abc.abstractmethod
    def _publication_budget(
        self, t: int, trace: ReleaseTrace, state: Dict
    ) -> float:
        """Budget available for publishing at timestamp ``t`` (0 = skip)."""

    def _after_publication(
        self, t: int, budget: float, trace: ReleaseTrace, state: Dict
    ) -> None:
        """Hook invoked after a publication is committed."""

    # -- release -----------------------------------------------------------

    def online_releaser(
        self,
        n_types: int,
        *,
        rng: RngLike = None,
        horizon: Optional[int] = None,
    ) -> OnlineReleaser:
        """An incremental releaser for push-based processing.

        Pass ``horizon`` when the number of steps is known up front: the
        releaser then consumes exactly as much parent entropy as the
        equivalent sequence of ``derive_rng`` calls.
        """
        return OnlineReleaser(self, n_types, rng, horizon=horizon)

    def perturb(
        self, stream: IndicatorStream, *, rng: RngLike = None
    ) -> IndicatorStream:
        matrix = stream.matrix_view().astype(float)
        n_windows, n_types = matrix.shape
        releaser = self.online_releaser(n_types, rng=rng, horizon=n_windows)
        released = releaser.step_block(matrix)
        self.last_trace = releaser.trace
        return stream.with_matrix(released >= 0.5)
