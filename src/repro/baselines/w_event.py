"""w-event differential privacy machinery (Kellaris et al., VLDB 2014).

w-event ε-DP protects any event sequence occurring within a sliding
window of ``w`` timestamps: over any ``w`` consecutive releases the
total budget spent must not exceed ε.  The two classic schedulers —
Budget Distribution (BD) and Budget Absorption (BA) — share the same
skeleton, implemented here:

1. split ε into ``ε_1 = ε/2`` for *dissimilarity* estimation and
   ``ε_2 = ε/2`` for *publications*;
2. at each timestamp, privately estimate the distance between the
   current statistics and the last release (spending ``ε_1/w``);
3. publish a fresh Laplace release when the estimated distance exceeds
   the error a publication would itself introduce, otherwise
   re-release the previous output (an *approximation*, free of charge);
4. the publication budget per timestamp is chosen by the subclass
   (:class:`~repro.baselines.budget_distribution.BudgetDistribution` or
   :class:`~repro.baselines.budget_absorption.BudgetAbsorption`).

The release loop is exposed both batched (:meth:`WEventMechanism.perturb`)
and incrementally (:meth:`WEventMechanism.online_releaser`, used by
:class:`repro.cep.online.OnlineSession`); the batch path runs on top of
the same stepper, so the two agree bit for bit under the same seed.

In this library the per-timestamp statistics are the windowed existence
indicators (one 0/1 entry per event type, L1 sensitivity 1 under a
single-event change); released vectors are thresholded at 1/2 to answer
the binary pattern queries.
"""

from __future__ import annotations

import abc
import copy
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.base import StreamMechanism
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive, check_positive_int


@dataclass
class ReleaseTrace:
    """Per-timestamp record of a w-event run (for tests and ablations)."""

    published: List[bool] = field(default_factory=list)
    publication_budgets: List[float] = field(default_factory=list)
    dissimilarity_budgets: List[float] = field(default_factory=list)

    def _spend_prefix(self) -> np.ndarray:
        """Prefix sums of the per-timestamp total spend.

        ``prefix[t]`` is the budget spent strictly before timestamp
        ``t``, so any window's spend is one subtraction.  Both window
        accessors read through this, keeping them mutually consistent.
        """
        totals = np.asarray(self.publication_budgets, dtype=float) + (
            np.asarray(self.dissimilarity_budgets, dtype=float)
        )
        prefix = np.empty(totals.shape[0] + 1)
        prefix[0] = 0.0
        np.cumsum(totals, out=prefix[1:])
        return prefix

    def spent_in_window(self, start: int, w: int) -> float:
        """Total budget spent in the ``w`` timestamps from ``start``."""
        n = len(self.published)
        start = min(max(start, 0), n)
        stop = min(start + w, n)
        prefix = self._spend_prefix()
        return float(prefix[stop] - prefix[start])

    def max_window_spend(self, w: int) -> float:
        """The largest spend over any sliding window of ``w`` timestamps.

        The w-event guarantee requires this never to exceed ε.  Computed
        from the spend prefix sums in O(n) — not O(n·w) slicing — so the
        guarantee checks stay cheap on long traces.
        """
        if not self.published:
            return 0.0
        prefix = self._spend_prefix()
        n = len(self.published)
        starts = np.arange(n)
        stops = np.minimum(starts + w, n)
        return float(np.max(prefix[stops] - prefix[starts]))


class OnlineReleaser:
    """Incremental w-event release: one indicator vector per step.

    Owns the scheduler state, the dissimilarity/publication accounting
    trace and the last release; created by
    :meth:`WEventMechanism.online_releaser`.

    The per-timestamp randomness is ``derive_rng(rng, "w-event", t)``,
    drawn through an :class:`~repro.runtime.rng_pool.IndexedRngPool`:
    bit-identical to per-step derivation, but the pool prefetches parent
    entropy — exactly ``horizon`` words when the stream length is known
    (the batch path), in blocks otherwise.
    """

    def __init__(
        self,
        mechanism: "WEventMechanism",
        n_types: int,
        rng: RngLike,
        *,
        horizon: Optional[int] = None,
    ):
        if n_types <= 0:
            raise ValueError(f"n_types must be positive, got {n_types}")
        self.mechanism = mechanism
        self.n_types = n_types
        from repro.runtime.rng_pool import IndexedRngPool

        self._children = IndexedRngPool(rng, "w-event", count=horizon)
        self.trace = ReleaseTrace()
        self.last_release: Optional[np.ndarray] = None
        self.t = 0
        self.scheduler_state: Dict = mechanism._initial_scheduler_state()
        # Per-step constants, hoisted out of the hot loop (identical
        # floating-point values to recomputing them per timestamp).
        self._dissimilarity_draw_scale = (
            mechanism.w
            * mechanism.sensitivity
            / mechanism.epsilon_dissimilarity
            / n_types
        )
        self._dissimilarity_charge = (
            mechanism.epsilon_dissimilarity / mechanism.w
        )

    #: Blocks at least this long precompute their dissimilarity
    #: uniforms vectorized (:meth:`IndexedRngPool.first_uniforms`);
    #: shorter blocks — single pushes, async micro-batches — draw
    #: per-step, which is cheaper below this size.  Both paths produce
    #: bit-identical draws.
    _UNIFORM_PREFETCH_MIN = 32

    def step(self, true_vector: np.ndarray) -> np.ndarray:
        """Release one timestamp's statistics."""
        true_vector = np.asarray(true_vector, dtype=float)
        if true_vector.shape != (self.n_types,):
            raise ValueError(
                f"expected a vector of {self.n_types} statistics, got "
                f"shape {true_vector.shape}"
            )
        self._run_block(true_vector.reshape(1, -1), None)
        return self.last_release.copy()

    def step_block(self, matrix: np.ndarray) -> np.ndarray:
        """Release a block of timestamps; rows are indicator vectors."""
        matrix = np.asarray(matrix, dtype=float)
        released = np.empty_like(matrix)
        self._run_block(matrix, released)
        return released

    def advance_block(self, matrix: np.ndarray) -> None:
        """Step the scheduler through a block without materializing output.

        The checkpoint prepass of
        :class:`~repro.runtime.executors.ShardedExecutor` walks the whole
        stream through this — state, trace and randomness evolve exactly
        as under :meth:`step_block`, only the released rows are not
        built.
        """
        self._run_block(np.asarray(matrix, dtype=float), None)

    def _run_block(
        self, matrix: np.ndarray, released: Optional[np.ndarray]
    ) -> None:
        """The release loop over a block (``released=None`` ⇒ prepass).

        Per-timestamp draws come from the index-derived child streams
        (``derive_rng(rng, "w-event", t)``), so the loop is free to
        consume them smartly without changing a single output bit:

        - the dissimilarity uniforms of a whole block are precomputed
          vectorized (one PCG64-emulation pass instead of a generator
          install + Laplace call per step), and the Laplace transform is
          replayed in scalar C-``log`` arithmetic exactly as numpy's
          ``random_laplace`` computes it;
        - timestamps inside a data-independent zero-budget stretch
          (BA's nullified periods, declared through
          :meth:`WEventMechanism._zero_budget_until`) are
          bulk-approximated: no draws, constant trace appends;
        - only publishing timestamps touch a real generator (the child
          is installed, repositioned past the dissimilarity word, and
          the publication noise drawn from it as usual).
        """
        mechanism = self.mechanism
        n = matrix.shape[0]
        if n == 0:
            return
        block_start = self.t
        uniforms = (
            self._children.first_uniforms(block_start, block_start + n)
            if n >= self._UNIFORM_PREFETCH_MIN
            else None
        )
        trace = self.trace
        published = trace.published
        publication_budgets = trace.publication_budgets
        dissimilarity_budgets = trace.dissimilarity_budgets
        charge = self._dissimilarity_charge
        scale = self._dissimilarity_draw_scale
        sensitivity = mechanism.sensitivity
        state = self.scheduler_state
        log = math.log
        row = 0
        while row < n:
            last_release = self.last_release
            if last_release is not None:
                skip = min(
                    mechanism._zero_budget_until(self.t, state) - self.t,
                    n - row,
                )
                if skip > 0:
                    # Zero budget, data-independent: approximate in bulk
                    # (no randomness is consumed at these timestamps).
                    if released is not None:
                        released[row : row + skip] = last_release
                    published.extend([False] * skip)
                    publication_budgets.extend([0.0] * skip)
                    dissimilarity_budgets.extend([charge] * skip)
                    self.t += skip
                    row += skip
                    continue
            budget = mechanism._publication_budget(self.t, trace, state)
            publish = False
            rng_t = None
            if last_release is None:
                publish = budget > 0
            elif budget > 0:
                # Private dissimilarity: mean absolute deviation from
                # the last release, plus Laplace noise (Kellaris'
                # `dis`).  The reduce spelling is bit-identical to
                # .mean() and skips its dispatch overhead.
                if uniforms is None:
                    rng_t = self._children.generator(self.t)
                    noise = float(rng_t.laplace(0.0, scale))
                else:
                    uniform = uniforms[row]
                    if uniform >= 0.5:
                        # numpy random_laplace, loc=0: branch and
                        # arithmetic order replayed exactly.
                        noise = 0.0 - scale * log(2.0 - uniform - uniform)
                    elif uniform > 0.0:
                        noise = 0.0 + scale * log(uniform + uniform)
                    else:
                        # U == 0 retries inside numpy; take the real
                        # generator for this (astronomically rare) step.
                        rng_t = self._children.generator(self.t)
                        noise = float(rng_t.laplace(0.0, scale))
                true_distance = float(
                    np.add.reduce(np.abs(matrix[row] - last_release))
                    / self.n_types
                )
                publish = true_distance + noise > sensitivity / budget
            dissimilarity_budgets.append(charge)
            if publish:
                if rng_t is None:
                    rng_t = self._children.generator(self.t)
                    if last_release is not None:
                        # The stepped stream spent one word on the
                        # dissimilarity draw; reposition past it.
                        rng_t.laplace(0.0, scale)
                noise_vector = rng_t.laplace(
                    0.0, sensitivity / budget, size=self.n_types
                )
                self.last_release = matrix[row] + noise_vector
                published.append(True)
                publication_budgets.append(budget)
                mechanism._after_publication(self.t, budget, trace, state)
            else:
                if last_release is None:
                    # Nothing released yet and no budget: emit pure
                    # noise around 1/2 so the output is
                    # data-independent.
                    self.last_release = np.full(self.n_types, 0.5)
                published.append(False)
                publication_budgets.append(0.0)
            if released is not None:
                released[row] = self.last_release
            self.t += 1
            row += 1

    # -- checkpointing -------------------------------------------------

    def snapshot(self, *, include_trace: bool = True) -> Dict:
        """A picklable checkpoint of the full release state at time ``t``.

        Captures everything a bit-identical continuation needs: the
        scheduler state, the accounting trace, the last release, the
        step counter and the rng-pool derivation source.  Restoring it
        on a fresh releaser (same mechanism parameters) and stepping on
        reproduces an uninterrupted run exactly.

        ``include_trace=False`` omits the trace prefix (its length
        grows with ``t``, and copying/pickling it at every shard
        boundary would make the checkpoint prepass quadratic).  The
        built-in schedulers never read the trace — BD budgets come
        from the in-window publication state, BA from its markers —
        so shard replicas replay identically without it; only session
        checkpoints, whose restored trace must equal the uninterrupted
        run's, need the full form.
        """
        return {
            "format": 1,
            "t": self.t,
            "n_types": self.n_types,
            "scheduler_state": copy.deepcopy(self.scheduler_state),
            "last_release": (
                None
                if self.last_release is None
                else np.array(self.last_release, copy=True)
            ),
            "trace": (
                (
                    list(self.trace.published),
                    list(self.trace.publication_budgets),
                    list(self.trace.dissimilarity_budgets),
                )
                if include_trace
                else None
            ),
            "rng": self._children.snapshot(),
        }

    def restore(self, snapshot: Dict) -> None:
        """Adopt a checkpoint produced by :meth:`snapshot`.

        The trace object is mutated in place (not replaced) so callers
        holding a reference — ``mechanism.last_trace``, the runtime
        stepper — keep observing the restored run.  A trace-free
        checkpoint leaves the current trace untouched.
        """
        if snapshot["n_types"] != self.n_types:
            raise ValueError(
                f"checkpoint covers {snapshot['n_types']} event types, "
                f"this releaser has {self.n_types}"
            )
        self.t = int(snapshot["t"])
        self.scheduler_state = copy.deepcopy(snapshot["scheduler_state"])
        last_release = snapshot["last_release"]
        self.last_release = (
            None if last_release is None else np.array(last_release, copy=True)
        )
        if snapshot["trace"] is not None:
            published, publication_budgets, dissimilarity_budgets = snapshot[
                "trace"
            ]
            self.trace.published[:] = published
            self.trace.publication_budgets[:] = publication_budgets
            self.trace.dissimilarity_budgets[:] = dissimilarity_budgets
        self._children.restore(snapshot["rng"])

    # -- decision replay -----------------------------------------------

    def decision_slice(self, start: int, stop: int) -> Tuple:
        """The recorded scheduler decisions for timestamps [start, stop).

        Only meaningful after the trace covers ``stop`` (i.e. on a
        releaser that already advanced past it — the checkpoint
        prepass).  Feed the result to :meth:`replay_block` on a restored
        releaser to reproduce those timestamps without re-running the
        scheduler.
        """
        if stop > len(self.trace.published):
            raise ValueError(
                f"trace covers {len(self.trace.published)} timestamps; "
                f"cannot slice decisions up to {stop}"
            )
        return (
            list(self.trace.published[start:stop]),
            list(self.trace.publication_budgets[start:stop]),
        )

    def replay_block(self, matrix: np.ndarray, decisions: Tuple) -> np.ndarray:
        """Reproduce :meth:`step_block` from recorded scheduler decisions.

        ``decisions`` is :meth:`decision_slice` of a completed run for
        exactly the rows of ``matrix`` (absolute timestamps ``t`` to
        ``t + n``).  Bit-identity with stepping holds because the
        per-timestamp randomness is index-derived: a publishing
        timestamp draws its dissimilarity word (when one preceded it)
        and its Laplace noise from the same child generator the stepped
        run used, and non-publishing timestamps repeat the previous
        release — their dissimilarity draws never touch the output, and
        skipping them cannot shift any other timestamp's stream.  Only
        the publishing timestamps cost Python-loop work, which is what
        makes sharded replay fast on the sparse publication schedules
        BD/BA produce.

        State, trace and step counter advance exactly as under
        :meth:`step_block`, so stepping may resume afterwards.
        """
        matrix = np.asarray(matrix, dtype=float)
        n = matrix.shape[0]
        published, budgets = decisions
        if len(published) != n or len(budgets) != n:
            raise ValueError(
                f"decisions cover {len(published)} timestamps but the "
                f"block has {n} rows"
            )
        mechanism = self.mechanism
        released = np.empty_like(matrix)
        publish_rows = [row for row in range(n) if published[row]]
        values = []
        current = self.last_release
        for row in publish_rows:
            rng_t = self._children.generator(self.t + row)
            if not (row == 0 and current is None):
                # The stepped run drew the noisy dissimilarity estimate
                # before publishing whenever a previous release existed;
                # consume the same word so the noise stream aligns.
                rng_t.laplace(0.0, self._dissimilarity_draw_scale)
            noise = rng_t.laplace(
                0.0,
                mechanism.sensitivity / budgets[row],
                size=self.n_types,
            )
            value = matrix[row] + noise
            values.append(value)
            released[row] = value
        # Forward-fill approximating timestamps from the publication
        # at-or-before them, vectorized (no per-row Python work).
        ordinals = np.cumsum(np.asarray(published, dtype=bool)) - 1
        approx = ~np.asarray(published, dtype=bool)
        before_first = approx & (ordinals < 0)
        after = approx & (ordinals >= 0)
        if np.any(after):
            stacked = np.stack(values)
            released[after] = stacked[ordinals[after]]
        if np.any(before_first):
            if current is None:
                current = np.full(self.n_types, 0.5)
            released[before_first] = current
        # Bring state, trace and accounting to where stepping would be.
        self.trace.published.extend(bool(flag) for flag in published)
        self.trace.publication_budgets.extend(
            float(budget) for budget in budgets
        )
        self.trace.dissimilarity_budgets.extend(
            [self._dissimilarity_charge] * n
        )
        for row in publish_rows:
            mechanism._after_publication(
                self.t + row,
                float(budgets[row]),
                self.trace,
                self.scheduler_state,
            )
        if n:
            if publish_rows and publish_rows[-1] == n - 1:
                self.last_release = values[-1].copy()
            else:
                self.last_release = np.array(released[n - 1], copy=True)
        self.t += n
        return released


class WEventMechanism(StreamMechanism):
    """Shared skeleton of the BD and BA schedulers."""

    def __init__(
        self,
        epsilon: float,
        w: int,
        *,
        sensitivity: float = 1.0,
    ):
        super().__init__(epsilon)
        self.w = check_positive_int("w", w)
        self.sensitivity = check_positive("sensitivity", sensitivity)
        self.epsilon_dissimilarity = epsilon / 2.0
        self.epsilon_publication = epsilon / 2.0
        self.last_trace: Optional[ReleaseTrace] = None

    # -- subclass hooks -----------------------------------------------------

    def _initial_scheduler_state(self) -> Dict:
        """Fresh per-run scheduler state (subclasses may extend)."""
        return {}

    @abc.abstractmethod
    def _publication_budget(
        self, t: int, trace: ReleaseTrace, state: Dict
    ) -> float:
        """Budget available for publishing at timestamp ``t`` (0 = skip)."""

    def _after_publication(
        self, t: int, budget: float, trace: ReleaseTrace, state: Dict
    ) -> None:
        """Hook invoked after a publication is committed."""

    def _zero_budget_until(self, t: int, state: Dict) -> int:
        """Exclusive end of a data-independent zero-budget stretch at ``t``.

        When every timestamp in ``[t, end)`` is guaranteed publication
        budget 0 regardless of the data (BA's nullified periods), the
        release loop bulk-approximates them without consuming any
        randomness — bit-identical to stepping, since zero-budget steps
        never draw.  The default declares no stretch.
        """
        return t

    # -- release -----------------------------------------------------------

    def online_releaser(
        self,
        n_types: int,
        *,
        rng: RngLike = None,
        horizon: Optional[int] = None,
    ) -> OnlineReleaser:
        """An incremental releaser for push-based processing.

        Pass ``horizon`` when the number of steps is known up front: the
        releaser then consumes exactly as much parent entropy as the
        equivalent sequence of ``derive_rng`` calls.
        """
        return OnlineReleaser(self, n_types, rng, horizon=horizon)

    def perturb(
        self, stream: IndicatorStream, *, rng: RngLike = None
    ) -> IndicatorStream:
        matrix = stream.matrix_view().astype(float)
        n_windows, n_types = matrix.shape
        releaser = self.online_releaser(n_types, rng=rng, horizon=n_windows)
        released = releaser.step_block(matrix)
        self.last_trace = releaser.trace
        return stream.with_matrix(released >= 0.5)
