"""User-level DP baseline (Dwork et al., STOC 2010).

User-level privacy protects *all* events of one data subject at once.
Over an infinite stream this admits no finite-budget mechanism; over a
finite horizon of ``n`` windows the budget must cover every indicator
the subject contributes, so with sequential composition each of the
``n × K`` bits receives ``ε / (n × K)`` — the noise this forces is the
reason the stronger-than-needed guarantee destroys data quality, which
is exactly the paper's motivation for pattern-level granularity.
Included as a reference point beyond the paper's Fig. 4 set.
"""

from __future__ import annotations

from repro.baselines.base import StreamMechanism
from repro.mechanisms.randomized_response import epsilon_to_flip_probability
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import RngLike, ensure_rng


class UserLevelRR(StreamMechanism):
    """Randomized response with the budget split across the whole stream."""

    mechanism_name = "user-level"

    def perturb(
        self, stream: IndicatorStream, *, rng: RngLike = None
    ) -> IndicatorStream:
        generator = ensure_rng(rng)
        matrix = stream.matrix()
        bits = matrix.size
        if bits == 0:
            return stream.with_matrix(matrix)
        per_bit_epsilon = self.epsilon / bits
        p = epsilon_to_flip_probability(per_bit_epsilon)
        flips = generator.random(matrix.shape) < p
        return stream.with_matrix(matrix ^ flips)

    def per_bit_epsilon(self, stream: IndicatorStream) -> float:
        """The budget each indicator receives on this stream."""
        if stream.matrix_view().size == 0:
            raise ValueError("stream has no indicators")
        return self.epsilon / stream.matrix_view().size
