"""Event-level DP baseline (Dwork et al., STOC 2010).

Event-level privacy protects each single event: neighbouring streams
differ in one event anywhere.  Realized here by randomized response on
*every* indicator bit with the full per-event budget ε — in contrast to
the pattern-level PPMs, which leave all non-private columns untouched.
Included as a reference point beyond the paper's Fig. 4 set.
"""

from __future__ import annotations

from repro.baselines.base import StreamMechanism
from repro.mechanisms.randomized_response import (
    RandomizedResponse,
    epsilon_to_flip_probability,
)
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import RngLike, ensure_rng


class EventLevelRR(StreamMechanism):
    """Randomized response on every indicator with per-event budget ε."""

    mechanism_name = "event-level"

    def __init__(self, epsilon: float):
        super().__init__(epsilon)
        self._mechanism = RandomizedResponse(
            epsilon_to_flip_probability(epsilon)
        )

    @property
    def flip_probability(self) -> float:
        """The flip probability applied to every indicator bit."""
        return self._mechanism.p

    def perturb(
        self, stream: IndicatorStream, *, rng: RngLike = None
    ) -> IndicatorStream:
        generator = ensure_rng(rng)
        matrix = stream.matrix()
        flips = generator.random(matrix.shape) < self._mechanism.p
        return stream.with_matrix(matrix ^ flips)
