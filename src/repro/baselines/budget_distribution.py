"""Budget Distribution (BD) — Kellaris et al., VLDB 2014, Algorithm 2.

BD halves the remaining publication budget at every publication: the
budget available at timestamp ``t`` is ``ε_rm/2`` where ``ε_rm`` is
``ε_2`` minus the publication budgets spent in the preceding ``w - 1``
timestamps.  Early publications in a calm stream are accurate; a burst
of changes quickly exhausts the window budget and forces
approximations until old spends slide out of the window.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.w_event import ReleaseTrace, WEventMechanism


class BudgetDistribution(WEventMechanism):
    """The BD scheduler for w-event DP."""

    mechanism_name = "bd"

    def _initial_scheduler_state(self) -> Dict:
        # Publications still inside the sliding window, as (t, budget)
        # pairs.  Summing these is bit-identical to summing the trace's
        # publication-budget slice — skipped timestamps contribute
        # exactly 0.0 there, and adding 0.0 never changes a float — but
        # costs O(publications in window), not O(w), per step.
        return {"recent": []}

    def _publication_budget(
        self, t: int, trace: ReleaseTrace, state: Dict
    ) -> float:
        start = t - (self.w - 1)
        recent = state["recent"]
        while recent and recent[0][0] < start:
            del recent[0]
        spent_recently = 0.0
        for _when, budget in recent:
            spent_recently += budget
        remaining = self.epsilon_publication - spent_recently
        if remaining <= 0:
            return 0.0
        return remaining / 2.0

    def _after_publication(
        self, t: int, budget: float, trace: ReleaseTrace, state: Dict
    ) -> None:
        state["recent"].append((t, budget))

    def _budget_schedule(
        self, t0: int, count: int, state: Dict
    ) -> Optional[np.ndarray]:
        """BD's per-timestamp budgets assuming no publication in the span.

        With no new publications, the in-window spend at ``t`` is the
        left-to-right sum of the ``recent`` entries that have not yet
        slid out — entry ``(when, b)`` stays in the window while
        ``t <= when + w - 1``.  The sum for each possible drop count is
        accumulated in the scalar hook's exact order (summation is not
        reassociated), so every budget is bit-equal to the per-step
        call; the ``remaining/2`` halving is one vectorized division.
        """
        recent = state["recent"]
        n_recent = len(recent)
        ts = np.arange(t0, t0 + count, dtype=np.int64)
        if n_recent:
            # suffix[k] = spend with the first k entries expired, summed
            # left-to-right from 0.0 exactly as _publication_budget does.
            suffix = np.empty(n_recent + 1)
            for dropped in range(n_recent + 1):
                spent = 0.0
                for _when, budget in recent[dropped:]:
                    spent += budget
                suffix[dropped] = spent
            expiries = np.array(
                [when + self.w for when, _budget in recent], dtype=np.int64
            )
            spent_recently = suffix[
                np.searchsorted(expiries, ts, side="right")
            ]
        else:
            spent_recently = np.zeros(count)
        remaining = self.epsilon_publication - spent_recently
        return np.where(remaining <= 0, 0.0, remaining / 2.0)

    def _after_skip_run(
        self, t_last: int, trace: ReleaseTrace, state: Dict
    ) -> None:
        # The scalar loop prunes expired publications on every budget
        # call; a bulk-applied skip run must leave the same pruned state
        # its last call (at t_last) would have.
        start = t_last - (self.w - 1)
        recent = state["recent"]
        while recent and recent[0][0] < start:
            del recent[0]

    @property
    def max_single_publication_budget(self) -> float:
        """The largest budget one publication can receive (``ε_2/2``).

        Used by the pattern-level budget conversion: the privacy loss a
        single event can suffer at one timestamp is bounded by its
        window's publication budget plus its dissimilarity share.
        """
        return self.epsilon_publication / 2.0
