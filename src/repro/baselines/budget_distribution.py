"""Budget Distribution (BD) — Kellaris et al., VLDB 2014, Algorithm 2.

BD halves the remaining publication budget at every publication: the
budget available at timestamp ``t`` is ``ε_rm/2`` where ``ε_rm`` is
``ε_2`` minus the publication budgets spent in the preceding ``w - 1``
timestamps.  Early publications in a calm stream are accurate; a burst
of changes quickly exhausts the window budget and forces
approximations until old spends slide out of the window.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.w_event import ReleaseTrace, WEventMechanism


class BudgetDistribution(WEventMechanism):
    """The BD scheduler for w-event DP."""

    mechanism_name = "bd"

    def _initial_scheduler_state(self) -> Dict:
        # Publications still inside the sliding window, as (t, budget)
        # pairs.  Summing these is bit-identical to summing the trace's
        # publication-budget slice — skipped timestamps contribute
        # exactly 0.0 there, and adding 0.0 never changes a float — but
        # costs O(publications in window), not O(w), per step.
        return {"recent": []}

    def _publication_budget(
        self, t: int, trace: ReleaseTrace, state: Dict
    ) -> float:
        start = t - (self.w - 1)
        recent = state["recent"]
        while recent and recent[0][0] < start:
            del recent[0]
        spent_recently = 0.0
        for _when, budget in recent:
            spent_recently += budget
        remaining = self.epsilon_publication - spent_recently
        if remaining <= 0:
            return 0.0
        return remaining / 2.0

    def _after_publication(
        self, t: int, budget: float, trace: ReleaseTrace, state: Dict
    ) -> None:
        state["recent"].append((t, budget))

    @property
    def max_single_publication_budget(self) -> float:
        """The largest budget one publication can receive (``ε_2/2``).

        Used by the pattern-level budget conversion: the privacy loss a
        single event can suffer at one timestamp is bounded by its
        window's publication budget plus its dissimilarity share.
        """
        return self.epsilon_publication / 2.0
