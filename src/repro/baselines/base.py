"""Common interface of the non-pattern-level baseline mechanisms.

Every baseline perturbs an entire indicator stream — that is precisely
what distinguishes them from the pattern-level PPMs, which touch only
the private pattern's element columns.  All mechanisms expose the same
``perturb`` signature so the CEP engine and the experiment harness can
swap them freely.
"""

from __future__ import annotations

import abc

from repro.streams.indicator import IndicatorStream
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive


class StreamMechanism(abc.ABC):
    """A privacy mechanism over windowed indicator streams."""

    mechanism_name = "stream-mechanism"

    def __init__(self, epsilon: float):
        self._epsilon = check_positive("epsilon", epsilon)

    @property
    def epsilon(self) -> float:
        """The mechanism's own budget, in its native guarantee's units
        (w-event ε, landmark ε, ...) — *not* the pattern-level ε; see
        :mod:`repro.baselines.conversion` for the mapping."""
        return self._epsilon

    @property
    def name(self) -> str:
        return self.mechanism_name

    @abc.abstractmethod
    def perturb(
        self, stream: IndicatorStream, *, rng: RngLike = None
    ) -> IndicatorStream:
        """Return the privately released version of ``stream``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(epsilon={self._epsilon:g})"
