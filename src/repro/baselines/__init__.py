"""Non-pattern-level baseline PPMs (Section VI comparators).

- :class:`BudgetDistribution` / :class:`BudgetAbsorption` — the two
  classic w-event DP schedulers (Kellaris et al., VLDB 2014);
- :class:`LandmarkPrivacy` — the adaptive landmark-privacy allocation
  (Katsomallos et al., CODASPY 2022);
- :class:`EventLevelRR` / :class:`UserLevelRR` — reference points for
  the classical stream-DP protection levels (Dwork et al., 2010);
- :mod:`repro.baselines.conversion` — the Section VI-A.2 budget
  conversion aligning every native guarantee to pattern-level ε.
"""

from repro.baselines.base import StreamMechanism
from repro.baselines.budget_absorption import BudgetAbsorption
from repro.baselines.budget_distribution import BudgetDistribution
from repro.baselines.conversion import (
    BudgetConverter,
    ConvertedBudget,
    ba_timestep_coefficient,
    bd_timestep_coefficient,
    event_level_timestep_coefficient,
    landmark_timestep_coefficient,
    native_epsilon_for_pattern,
    pattern_epsilon_from_native,
    user_level_timestep_coefficient,
)
from repro.baselines.event_level import EventLevelRR
from repro.baselines.landmark import LandmarkPrivacy, landmarks_from_pattern
from repro.baselines.user_level import UserLevelRR
from repro.baselines.w_event import ReleaseTrace, WEventMechanism

__all__ = [
    "BudgetAbsorption",
    "BudgetConverter",
    "BudgetDistribution",
    "ConvertedBudget",
    "EventLevelRR",
    "LandmarkPrivacy",
    "ReleaseTrace",
    "StreamMechanism",
    "UserLevelRR",
    "WEventMechanism",
    "ba_timestep_coefficient",
    "bd_timestep_coefficient",
    "event_level_timestep_coefficient",
    "landmark_timestep_coefficient",
    "landmarks_from_pattern",
    "native_epsilon_for_pattern",
    "pattern_epsilon_from_native",
    "user_level_timestep_coefficient",
]
