"""Landmark privacy, adaptive allocation (Katsomallos et al., CODASPY 2022).

Landmark privacy observes that not all timestamps are equally sensitive:
the *landmark* timestamps (here: the windows the data subject declares
sensitive, i.e. where private pattern activity lives) must be protected
jointly, while each *regular* timestamp only needs individual
(event-level style) protection.  The guarantee covers all landmarks plus
any one regular timestamp.

Budget layout (the paper's adaptive scheme, transplanted to windowed
indicator vectors):

- a fraction ``rho`` of ε is reserved for the landmarks; the remainder
  is given to every regular timestamp individually (parallel
  composition: each neighbouring relation involves only one regular
  timestamp, so regular spends do not accumulate);
- the landmark share is spent adaptively: half drives noisy
  dissimilarity estimates, half funds publications; a landmark
  publishes only when its data drifted more than the publication error,
  otherwise it re-releases the previous output and leaves its nominal
  budget to later landmarks (the *adaptive* sampling of the original
  paper).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.baselines.base import StreamMechanism
from repro.runtime.decisions import LandmarkKernel, ScanConfig
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import RngLike
from repro.utils.validation import check_in_range, check_positive


class LandmarkReleaser:
    """Incremental landmark release: one indicator vector per step.

    The landmark mask must be fixed up front (the data subject declares
    the sensitive timestamps); the releaser walks it while threading the
    adaptive publication budget.  Per-timestamp randomness is
    ``derive_rng(rng, "landmark", t)`` drawn through an
    :class:`~repro.runtime.rng_pool.IndexedRngPool`, so stepping and the
    batch :meth:`LandmarkPrivacy.perturb` agree bit for bit.
    """

    def __init__(
        self,
        mechanism: "LandmarkPrivacy",
        landmarks: np.ndarray,
        n_types: int,
        rng: RngLike,
        *,
        horizon: Optional[int] = None,
    ):
        if n_types <= 0:
            raise ValueError(f"n_types must be positive, got {n_types}")
        from repro.runtime.rng_pool import IndexedRngPool

        self.mechanism = mechanism
        self.n_types = n_types
        self._landmarks = np.asarray(landmarks, dtype=bool)
        self._children = IndexedRngPool(rng, "landmark", count=horizon)
        self._n_landmarks = int(self._landmarks.sum())
        self._remaining_publication = mechanism.landmark_epsilon / 2.0
        self._landmark_dissimilarity = mechanism.landmark_epsilon / 2.0
        self._landmarks_left = self._n_landmarks
        self.last_release: Optional[np.ndarray] = None
        self.t = 0
        self._kernel = LandmarkKernel(mechanism.scan_config)

    def step(self, true_vector: np.ndarray) -> np.ndarray:
        """Release one timestamp's statistics."""
        true_vector = np.asarray(true_vector, dtype=float)
        if true_vector.shape != (self.n_types,):
            raise ValueError(
                f"expected a vector of {self.n_types} statistics, got "
                f"shape {true_vector.shape}"
            )
        released = self._advance(true_vector)
        return np.array(released, dtype=float, copy=True)

    def _advance(self, true_vector: np.ndarray) -> np.ndarray:
        """One release step; returns the released row without copying."""
        if self.t >= self._landmarks.shape[0]:
            raise ValueError(
                f"landmark mask covers {self._landmarks.shape[0]} windows; "
                f"cannot step past it (t={self.t})"
            )
        mechanism = self.mechanism
        rng_t = self._children.generator(self.t)
        if self._landmarks[self.t]:
            nominal = (
                self._remaining_publication / self._landmarks_left
                if self._landmarks_left > 0
                else 0.0
            )
            publish = self.last_release is None
            if not publish and nominal > 0 and self._n_landmarks > 0:
                dissimilarity_scale = (
                    self._n_landmarks
                    * mechanism.sensitivity
                    / self._landmark_dissimilarity
                )
                true_distance = float(
                    np.add.reduce(np.abs(true_vector - self.last_release))
                    / self.n_types
                )
                noisy_distance = true_distance + float(
                    rng_t.laplace(0.0, dissimilarity_scale / self.n_types)
                )
                publish = noisy_distance > mechanism.sensitivity / nominal
            if publish and nominal > 0:
                noise = rng_t.laplace(
                    0.0, mechanism.sensitivity / nominal, size=self.n_types
                )
                self.last_release = true_vector + noise
                self._remaining_publication -= nominal
            elif self.last_release is None:
                self.last_release = np.full(self.n_types, 0.5)
            self._landmarks_left = max(0, self._landmarks_left - 1)
            released = self.last_release
        else:
            # Regular timestamp: individual budget, parallel across
            # timestamps (each neighbourhood contains one regular).
            noise = rng_t.laplace(
                0.0,
                mechanism.sensitivity / mechanism.regular_epsilon,
                size=self.n_types,
            )
            released = true_vector + noise
        self.t += 1
        return released

    def step_block(self, matrix: np.ndarray) -> np.ndarray:
        """Release a block of timestamps; rows are indicator vectors.

        Runs through the
        :class:`~repro.runtime.decisions.LandmarkKernel` — certified
        skip decisions for landmark rows are bulk-applied from a
        vectorized U-space scan, everything near a boundary falls back
        to the exact :meth:`_advance` arithmetic — so the output is
        bit-identical to stepping row by row in every scan mode.
        """
        matrix = np.asarray(matrix, dtype=float)
        released = np.empty_like(matrix)
        self._kernel.run_block(self, matrix, released)
        return released

    def advance_block(self, matrix: np.ndarray) -> None:
        """Step through a block without materializing the released rows.

        Used by the checkpoint prepass: state and randomness evolve
        exactly as under :meth:`step_block`.  Regular (non-landmark)
        rows never touch the release state and their draws are
        index-derived, so the kernel hops over them entirely here —
        the prepass cost shrinks toward the landmark decisions alone.
        """
        self._kernel.run_block(self, np.asarray(matrix, dtype=float), None)

    # -- checkpointing -------------------------------------------------

    def snapshot(self, *, include_trace: bool = True) -> dict:
        """A picklable checkpoint of the release state at time ``t``.

        Captures the adaptive budget threading (remaining publication
        budget, landmarks left), the last release, the step counter and
        the rng-pool derivation source; the landmark mask itself is
        configuration, fixed at construction, and only its length is
        recorded for validation.  ``include_trace`` exists for protocol
        uniformity with the w-event releasers — landmark keeps no
        accounting trace, so it has no effect.
        """
        return {
            "format": 1,
            "t": self.t,
            "n_types": self.n_types,
            "n_windows": int(self._landmarks.shape[0]),
            "remaining_publication": self._remaining_publication,
            "landmarks_left": self._landmarks_left,
            "last_release": (
                None
                if self.last_release is None
                else np.array(self.last_release, copy=True)
            ),
            "rng": self._children.snapshot(),
        }

    def restore(self, snapshot: dict) -> None:
        """Adopt a checkpoint produced by :meth:`snapshot`."""
        if snapshot["n_types"] != self.n_types:
            raise ValueError(
                f"checkpoint covers {snapshot['n_types']} event types, "
                f"this releaser has {self.n_types}"
            )
        if snapshot["n_windows"] != self._landmarks.shape[0]:
            raise ValueError(
                f"checkpoint was taken under a landmark mask of "
                f"{snapshot['n_windows']} windows, this releaser has "
                f"{self._landmarks.shape[0]}"
            )
        self.t = int(snapshot["t"])
        self._remaining_publication = float(
            snapshot["remaining_publication"]
        )
        self._landmarks_left = int(snapshot["landmarks_left"])
        last_release = snapshot["last_release"]
        self.last_release = (
            None if last_release is None else np.array(last_release, copy=True)
        )
        self._children.restore(snapshot["rng"])


class LandmarkPrivacy(StreamMechanism):
    """Adaptive landmark-privacy release of an indicator stream.

    Parameters
    ----------
    epsilon:
        The landmark-privacy budget (protects all landmarks jointly and
        any single regular timestamp).
    landmarks:
        Boolean mask over windows: True marks a landmark (sensitive)
        window.  When ``None``, landmarks must be passed to
        :meth:`perturb_with_landmarks`.
    rho:
        Fraction of ε reserved for the landmark timestamps.
    """

    mechanism_name = "landmark"

    def __init__(
        self,
        epsilon: float,
        *,
        landmarks: Optional[Sequence[bool]] = None,
        rho: float = 0.5,
        sensitivity: float = 1.0,
        scan: Union[None, str, ScanConfig] = None,
    ):
        super().__init__(epsilon)
        self.rho = check_in_range("rho", rho, 0.0, 1.0, inclusive=False)
        self.sensitivity = check_positive("sensitivity", sensitivity)
        self.scan_config = ScanConfig.coerce(scan)
        self._landmarks = (
            None if landmarks is None else np.asarray(landmarks, dtype=bool)
        )

    @property
    def landmark_epsilon(self) -> float:
        """Budget protecting the landmark set jointly (``rho * ε``)."""
        return self.rho * self.epsilon

    @property
    def regular_epsilon(self) -> float:
        """Budget each regular timestamp enjoys individually."""
        return (1.0 - self.rho) * self.epsilon

    def perturb(
        self, stream: IndicatorStream, *, rng: RngLike = None
    ) -> IndicatorStream:
        if self._landmarks is None:
            raise ValueError(
                "no landmark mask configured; construct with landmarks= or "
                "call perturb_with_landmarks()"
            )
        return self.perturb_with_landmarks(stream, self._landmarks, rng=rng)

    def perturb_with_landmarks(
        self,
        stream: IndicatorStream,
        landmarks: Sequence[bool],
        *,
        rng: RngLike = None,
    ) -> IndicatorStream:
        landmarks = np.asarray(landmarks, dtype=bool)
        if landmarks.shape[0] != stream.n_windows:
            raise ValueError(
                f"landmark mask covers {landmarks.shape[0]} windows but the "
                f"stream has {stream.n_windows}"
            )
        matrix = stream.matrix_view().astype(float)
        n_windows, n_types = matrix.shape
        releaser = LandmarkReleaser(
            self, landmarks, n_types, rng, horizon=n_windows
        )
        released = releaser.step_block(matrix)
        return stream.with_matrix(released >= 0.5)

    def online_releaser(
        self,
        n_types: int,
        *,
        rng: RngLike = None,
        horizon: Optional[int] = None,
    ) -> LandmarkReleaser:
        """An incremental releaser for push-based processing.

        Requires the landmark mask configured at construction; the mask
        bounds how many windows the releaser can step through.
        """
        if self._landmarks is None:
            raise ValueError(
                "no landmark mask configured; construct with landmarks= to "
                "release online"
            )
        return LandmarkReleaser(
            self, self._landmarks, n_types, rng, horizon=horizon
        )


def landmarks_from_pattern(
    stream: IndicatorStream, elements: Sequence[str]
) -> np.ndarray:
    """Derive the landmark mask from private-pattern activity.

    A window is a landmark when *any* private pattern element occurs in
    it — the data subject's sensitive timestamps.  (Landmark privacy
    treats the mask itself as given by the subject, exactly as the
    paper's system model treats private pattern specifications.)
    """
    if not elements:
        raise ValueError("at least one private element is required")
    mask = np.zeros(stream.n_windows, dtype=bool)
    for element in set(elements):
        mask |= stream.column(element)
    return mask
