"""Landmark privacy, adaptive allocation (Katsomallos et al., CODASPY 2022).

Landmark privacy observes that not all timestamps are equally sensitive:
the *landmark* timestamps (here: the windows the data subject declares
sensitive, i.e. where private pattern activity lives) must be protected
jointly, while each *regular* timestamp only needs individual
(event-level style) protection.  The guarantee covers all landmarks plus
any one regular timestamp.

Budget layout (the paper's adaptive scheme, transplanted to windowed
indicator vectors):

- a fraction ``rho`` of ε is reserved for the landmarks; the remainder
  is given to every regular timestamp individually (parallel
  composition: each neighbouring relation involves only one regular
  timestamp, so regular spends do not accumulate);
- the landmark share is spent adaptively: half drives noisy
  dissimilarity estimates, half funds publications; a landmark
  publishes only when its data drifted more than the publication error,
  otherwise it re-releases the previous output and leaves its nominal
  budget to later landmarks (the *adaptive* sampling of the original
  paper).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import StreamMechanism
from repro.mechanisms.laplace import laplace_noise
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import RngLike, derive_rng
from repro.utils.validation import check_in_range, check_positive


class LandmarkPrivacy(StreamMechanism):
    """Adaptive landmark-privacy release of an indicator stream.

    Parameters
    ----------
    epsilon:
        The landmark-privacy budget (protects all landmarks jointly and
        any single regular timestamp).
    landmarks:
        Boolean mask over windows: True marks a landmark (sensitive)
        window.  When ``None``, landmarks must be passed to
        :meth:`perturb_with_landmarks`.
    rho:
        Fraction of ε reserved for the landmark timestamps.
    """

    mechanism_name = "landmark"

    def __init__(
        self,
        epsilon: float,
        *,
        landmarks: Optional[Sequence[bool]] = None,
        rho: float = 0.5,
        sensitivity: float = 1.0,
    ):
        super().__init__(epsilon)
        self.rho = check_in_range("rho", rho, 0.0, 1.0, inclusive=False)
        self.sensitivity = check_positive("sensitivity", sensitivity)
        self._landmarks = (
            None if landmarks is None else np.asarray(landmarks, dtype=bool)
        )

    @property
    def landmark_epsilon(self) -> float:
        """Budget protecting the landmark set jointly (``rho * ε``)."""
        return self.rho * self.epsilon

    @property
    def regular_epsilon(self) -> float:
        """Budget each regular timestamp enjoys individually."""
        return (1.0 - self.rho) * self.epsilon

    def perturb(
        self, stream: IndicatorStream, *, rng: RngLike = None
    ) -> IndicatorStream:
        if self._landmarks is None:
            raise ValueError(
                "no landmark mask configured; construct with landmarks= or "
                "call perturb_with_landmarks()"
            )
        return self.perturb_with_landmarks(stream, self._landmarks, rng=rng)

    def perturb_with_landmarks(
        self,
        stream: IndicatorStream,
        landmarks: Sequence[bool],
        *,
        rng: RngLike = None,
    ) -> IndicatorStream:
        landmarks = np.asarray(landmarks, dtype=bool)
        if landmarks.shape[0] != stream.n_windows:
            raise ValueError(
                f"landmark mask covers {landmarks.shape[0]} windows but the "
                f"stream has {stream.n_windows}"
            )
        matrix = stream.matrix_view().astype(float)
        n_windows, n_types = matrix.shape
        released = np.zeros_like(matrix)
        n_landmarks = int(landmarks.sum())

        # Landmark budget: half dissimilarity, half publication,
        # distributed adaptively over the landmark timestamps.
        landmark_dissimilarity = self.landmark_epsilon / 2.0
        landmark_publication = self.landmark_epsilon / 2.0
        remaining_publication = landmark_publication
        landmarks_left = n_landmarks
        last_release: Optional[np.ndarray] = None

        for t in range(n_windows):
            rng_t = derive_rng(rng, "landmark", t)
            true_vector = matrix[t]
            if landmarks[t]:
                nominal = (
                    remaining_publication / landmarks_left
                    if landmarks_left > 0
                    else 0.0
                )
                publish = last_release is None
                if not publish and nominal > 0 and n_landmarks > 0:
                    dissimilarity_scale = (
                        n_landmarks
                        * self.sensitivity
                        / landmark_dissimilarity
                    )
                    true_distance = float(
                        np.abs(true_vector - last_release).mean()
                    )
                    noisy_distance = true_distance + float(
                        laplace_noise(rng_t, dissimilarity_scale / n_types)
                    )
                    publish = noisy_distance > self.sensitivity / nominal
                if publish and nominal > 0:
                    noise = laplace_noise(
                        rng_t, self.sensitivity / nominal, size=n_types
                    )
                    last_release = true_vector + noise
                    remaining_publication -= nominal
                elif last_release is None:
                    last_release = np.full(n_types, 0.5)
                landmarks_left = max(0, landmarks_left - 1)
                released[t] = last_release
            else:
                # Regular timestamp: individual budget, parallel across
                # timestamps (each neighbourhood contains one regular).
                noise = laplace_noise(
                    rng_t,
                    self.sensitivity / self.regular_epsilon,
                    size=n_types,
                )
                released[t] = true_vector + noise
        return stream.with_matrix(released >= 0.5)


def landmarks_from_pattern(
    stream: IndicatorStream, elements: Sequence[str]
) -> np.ndarray:
    """Derive the landmark mask from private-pattern activity.

    A window is a landmark when *any* private pattern element occurs in
    it — the data subject's sensitive timestamps.  (Landmark privacy
    treats the mask itself as given by the subject, exactly as the
    paper's system model treats private pattern specifications.)
    """
    if not elements:
        raise ValueError("at least one private element is required")
    mask = np.zeros(stream.n_windows, dtype=bool)
    for element in set(elements):
        mask |= stream.column(element)
    return mask
