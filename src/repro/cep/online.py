"""Online (push-based) service sessions.

The batch API (:meth:`~repro.cep.engine.CEPEngine.process_indicators`)
perturbs a materialized stream; real CEP deployments consume windows as
they close.  :class:`OnlineSession` provides that mode: push one
window's event types, receive that window's private query answers.

A session is a thin facade over the runtime's chunked machinery: the
engine's mechanism is classified by
:func:`repro.runtime.adapters.runtime_mechanism` into a chunk stepper
that reproduces the batch perturbation *bit for bit* under the same
seed —

- **per-window flip mechanisms** (pattern-level PPMs, their
  multi-pattern composition, event-level RR): each push consumes the
  next slice of the same per-type child-generator streams the batch
  path draws vectorized;
- **sequential stream mechanisms** (BD/BA, landmark) step their
  :class:`~repro.baselines.w_event.OnlineReleaser` /
  :class:`~repro.baselines.landmark.LandmarkReleaser` one window at a
  time, with the batch ``perturb`` implemented on top of the same
  stepper.

Mechanisms that only support batch perturbation (and the user-level
baseline, whose budget split needs the stream horizon) are rejected
with ``TypeError`` at session construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.cep.engine import CEPEngine
from repro.streams.indicator import IndicatorStream
from repro.utils.deprecation import warn_imperative
from repro.utils.rng import RngLike, derive_rng

#: Windows processed per step when :meth:`OnlineSession.run` replays a
#: materialized stream (identical answers to one-by-one pushes; the
#: chunk only amortizes per-call overhead).
_RUN_CHUNK = 256


def session_stepper(engine: CEPEngine, pipeline, rng: RngLike):
    """The chunk stepper one service session steps its windows through.

    Shared by the synchronous :class:`OnlineSession` and the
    asyncio-based :class:`~repro.cep.async_session.AsyncSession` so both
    ingestion modes perturb identically.  Sequential releasers
    historically draw from a dedicated ``"online"`` child; per-window
    flip mechanisms draw from the session seed directly so that a
    session over the same windows and seed reproduces the batch answers
    exactly.  Returns ``None`` for an unprotected engine.
    """
    mechanism = engine.mechanism
    if mechanism is None:
        return None
    if hasattr(mechanism, "online_releaser"):
        stepper_rng = derive_rng(rng, "online")
    else:
        stepper_rng = rng
    return pipeline.runtime_mechanism.stepper(
        engine.alphabet, rng=stepper_rng, horizon=None
    )


class OnlineSession:
    """A service-phase session answering queries window by window."""

    def __init__(self, engine: CEPEngine, *, rng: RngLike = None):
        warn_imperative(
            "Constructing OnlineSession directly",
            "open sessions with StreamService.open_session()",
        )
        if not engine.queries:
            raise ValueError("the engine has no registered queries")
        self._engine = engine
        self._pipeline = engine.service_pipeline()
        self._pushed = 0
        # A session is one release of the (growing) stream: charge the
        # engine's accountant once, up front, exactly like the batch
        # path does per process_indicators call — but only after the
        # stepper exists, so a rejected mechanism costs no budget.
        self._stepper = session_stepper(engine, self._pipeline, rng)
        engine._charge_accountant()

    @property
    def windows_processed(self) -> int:
        """Number of windows pushed so far."""
        return self._pushed

    # -- checkpointing -------------------------------------------------

    def snapshot(self) -> Dict:
        """A picklable checkpoint of the session's release state.

        Captures the window counter and the stepper's full state — for
        sequential mechanisms (BD/BA, landmark) the scheduler state,
        accounting trace, last release and rng-pool position; for flip
        and matrix-RR mechanisms the per-type child generator
        positions.  Restoring it on a fresh session over the same
        engine configuration and seed resumes mid-stream with exactly
        the randomness and budget state an uninterrupted run would
        have had.
        """
        return {
            "format": 1,
            "windows": self._pushed,
            "stepper": (
                None if self._stepper is None else self._stepper.snapshot()
            ),
        }

    def restore(self, snapshot: Dict) -> None:
        """Resume from a checkpoint produced by :meth:`snapshot`.

        The session must be configured like the snapshotted one (same
        engine queries/mechanism and session seed); the engine's
        accountant is *not* re-credited — a restored session was
        already charged at construction, so a crash-and-resume cycle
        never undercounts spent budget.
        """
        stepper_state = snapshot["stepper"]
        if (self._stepper is None) != (stepper_state is None):
            raise ValueError(
                "checkpoint does not match this session's mechanism "
                "(protected vs unprotected)"
            )
        if self._stepper is not None:
            self._stepper.restore(stepper_state)
        self._pushed = int(snapshot["windows"])

    def push(self, window_types: Iterable[str]) -> Dict[str, bool]:
        """Process one closed window; return per-query binary answers."""
        row = np.zeros((1, len(self._engine.alphabet)), dtype=bool)
        for name in window_types:
            if name in self._engine.alphabet:
                row[0, self._engine.alphabet.index(name)] = True
        released = self._release(row)
        self._pushed += 1
        answers = self._pipeline.matcher.answer(released)
        return {name: bool(vector[0]) for name, vector in answers.items()}

    def _release(self, rows: np.ndarray) -> np.ndarray:
        if self._stepper is None:
            return rows
        return self._stepper.step_block(rows)

    def run(self, stream: IndicatorStream) -> Dict[str, List[bool]]:
        """Convenience: push every window of a stream, collect answers.

        Processes the stream in chunks through the same stepper — the
        answers are identical to pushing window by window.
        """
        if stream.alphabet != self._engine.alphabet:
            # Foreign alphabet: remap per window by event-type name.
            answers = {
                name: []
                for name in self._pipeline.matcher.query_names
            }
            for index in range(stream.n_windows):
                per_window = self.push(stream.window_types(index))
                for name, value in per_window.items():
                    answers[name].append(value)
            return answers
        matrix = stream.matrix_view()
        matcher = self._pipeline.matcher
        answers: Dict[str, List[bool]] = {
            name: [] for name in matcher.query_names
        }
        for start in range(0, matrix.shape[0], _RUN_CHUNK):
            chunk = matrix[start : start + _RUN_CHUNK]
            released = self._release(chunk)
            self._pushed += chunk.shape[0]
            for name, vector in matcher.answer(released).items():
                answers[name].extend(bool(value) for value in vector)
        return answers
