"""Online (push-based) service sessions.

The batch API (:meth:`~repro.cep.engine.CEPEngine.process_indicators`)
perturbs a materialized stream; real CEP deployments consume windows as
they close.  :class:`OnlineSession` provides that mode: push one
window's event types, receive that window's private query answers.

Two classes of mechanisms work online:

- **per-window mechanisms** (the pattern-level PPMs, event/user-level
  RR): each window's flips are independent, so the session simply draws
  them one window at a time with the same per-type child-generator
  derivation as the batch path — a session over the same windows and
  seed reproduces the batch answers exactly;
- **sequential stream mechanisms** (BD/BA) expose an
  :class:`~repro.baselines.w_event.OnlineReleaser` whose ``step``
  consumes one indicator vector and returns one released vector, with
  the batch ``perturb`` implemented on top of the same stepper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.cep.engine import CEPEngine
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import RngLike, derive_rng


class OnlineSession:
    """A service-phase session answering queries window by window."""

    def __init__(self, engine: CEPEngine, *, rng: RngLike = None):
        if not engine.queries:
            raise ValueError("the engine has no registered queries")
        self._engine = engine
        self._mechanism = engine.mechanism
        self._rng = rng
        # A session is one release of the (growing) stream: charge the
        # engine's accountant once, up front, exactly like the batch
        # path does per process_indicators call.
        engine._charge_accountant()
        self._pushed = 0
        self._releaser = None
        self._flip_probabilities: Optional[Dict[str, float]] = None
        self._children: Dict[str, object] = {}
        if self._mechanism is not None:
            if hasattr(self._mechanism, "online_releaser"):
                self._releaser = self._mechanism.online_releaser(
                    len(engine.alphabet), rng=derive_rng(rng, "online")
                )
            elif hasattr(self._mechanism, "flip_probability_by_type"):
                self._flip_probabilities = (
                    self._mechanism.flip_probability_by_type()
                )
            elif hasattr(self._mechanism, "flip_probability"):
                # Event-level RR: one flip probability for every column.
                probability = self._mechanism.flip_probability
                self._flip_probabilities = {
                    name: probability for name in engine.alphabet
                }
            elif hasattr(self._mechanism, "ppms"):
                # MultiPatternPPM: combine the independent per-pattern
                # flip maps into net per-column probabilities.
                from repro.core.quality_model import (
                    combine_flip_probabilities,
                )

                self._flip_probabilities = combine_flip_probabilities(
                    [
                        ppm.flip_probability_by_type()
                        for ppm in self._mechanism.ppms
                    ]
                )
            else:
                raise TypeError(
                    f"mechanism {type(self._mechanism).__name__} supports "
                    "neither per-window flips nor an online releaser"
                )
        if self._flip_probabilities is not None:
            self._children = {
                event_type: derive_rng(rng, "rr-flip", event_type)
                for event_type in self._flip_probabilities
            }

    @property
    def windows_processed(self) -> int:
        """Number of windows pushed so far."""
        return self._pushed

    def push(self, window_types: Iterable[str]) -> Dict[str, bool]:
        """Process one closed window; return per-query binary answers."""
        row = np.zeros(len(self._engine.alphabet), dtype=bool)
        for name in window_types:
            if name in self._engine.alphabet:
                row[self._engine.alphabet.index(name)] = True
        released = self._release(row)
        self._pushed += 1
        answers: Dict[str, bool] = {}
        for query in self._engine.queries:
            elements = query.pattern.elements
            if elements is None:
                raise ValueError(
                    f"query {query.name!r} uses a non-sequential pattern"
                )
            columns = self._engine.alphabet.indices(list(elements))
            answers[query.name] = bool(released[columns].all())
        return answers

    def _release(self, row: np.ndarray) -> np.ndarray:
        if self._mechanism is None:
            return row
        if self._releaser is not None:
            return self._releaser.step(row.astype(float)) >= 0.5
        released = row.copy()
        assert self._flip_probabilities is not None
        for event_type, probability in self._flip_probabilities.items():
            # The per-type child streams are the same ones the batch
            # path consumes vectorized, so the t-th push draws the t-th
            # decision of the batch run.
            if float(self._children[event_type].random()) < probability:
                column = self._engine.alphabet.index(event_type)
                released[column] = not released[column]
        return released

    def run(self, stream: IndicatorStream) -> Dict[str, List[bool]]:
        """Convenience: push every window of a stream, collect answers."""
        answers: Dict[str, List[bool]] = {
            query.name: [] for query in self._engine.queries
        }
        for index in range(stream.n_windows):
            per_window = self.push(stream.window_types(index))
            for name, value in per_window.items():
                answers[name].append(value)
        return answers
