"""Asynchronous (push-based, backpressured) service sessions.

:class:`~repro.cep.online.OnlineSession` answers queries window by
window but couples the producer and the consumer: each ``push`` blocks
the caller for the full perturb-and-match step.  Real ingestion is a
*pipeline* — events arrive from sockets or brokers while the mechanism
steps — so :class:`AsyncSession` decouples the two with an asyncio
queue:

- producers ``await submit(window_types)`` and receive an
  :class:`asyncio.Future` resolving to that window's private answers;
- a single drainer task batches whatever is queued (up to
  ``max_batch`` windows) through the same chunk stepper the
  synchronous session uses, so answers are identical to one-by-one
  pushes under the same seed;
- the queue is bounded (``max_pending``): when the stepper falls
  behind, ``submit`` suspends — backpressure propagates to the
  producer instead of buffering unboundedly;
- closing the session (``aclose`` or leaving the ``async with`` block)
  flushes every queued window before the drainer exits, so no accepted
  window is ever dropped.

Mechanisms that only support batch perturbation — and the user-level
baseline, whose budget split needs the stream horizon — are rejected
with ``TypeError`` at session construction, exactly like the
synchronous session.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.cep.engine import CEPEngine
from repro.cep.online import session_stepper
from repro.obs.metrics import default_registry
from repro.obs.tracing import trace_span
from repro.utils.deprecation import warn_imperative
from repro.utils.rng import RngLike

#: Queue sentinel signalling the drainer to flush and exit.
_CLOSE = object()


class AsyncSession:
    """An asyncio ingestion loop over the service-phase chunk stepper.

    Parameters
    ----------
    engine:
        The configured :class:`~repro.cep.engine.CEPEngine` (queries
        registered, mechanism attached).  The engine's accountant is
        charged once, at construction, like every other session/release.
    rng:
        Session seed; the same seed over the same windows reproduces
        the batch and online answers exactly (flip mechanisms).
    max_pending:
        Bound on queued-but-unprocessed windows; ``submit`` suspends
        when full (backpressure).
    max_batch:
        Most windows perturbed per stepper step.  Larger batches
        amortize per-step overhead under load; answers do not depend on
        batch boundaries.
    record:
        Keep the original/released rows of every processed window
        (:attr:`original_matrix`/:attr:`released_matrix`) — the engine's
        async batch facade uses this to build its report.
    """

    def __init__(
        self,
        engine: CEPEngine,
        *,
        rng: RngLike = None,
        max_pending: int = 256,
        max_batch: int = 64,
        record: bool = False,
    ):
        warn_imperative(
            "Constructing AsyncSession directly",
            "open sessions with StreamService.open_async_session()",
        )
        if not engine.queries:
            raise ValueError("the engine has no registered queries")
        if max_pending <= 0:
            raise ValueError(
                f"max_pending must be positive, got {max_pending}"
            )
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        self._engine = engine
        self._pipeline = engine.service_pipeline()
        # Build the stepper before charging: a rejected mechanism (e.g.
        # user-level without a horizon) must not consume budget for a
        # session that never existed.
        self._stepper = session_stepper(engine, self._pipeline, rng)
        engine._charge_accountant()
        self._max_pending = max_pending
        self._max_batch = max_batch
        self._record = record
        #: Optional per-window egress hook, called in the drainer as
        #: ``on_release(index, released_row, answers)`` in submission
        #: order — the service layer's pump attaches sink connectors
        #: here so sanitized rows stream out without recording the
        #: whole session in memory.  Exceptions fail the drainer like
        #: any stepping error (no accepted window hangs).
        self._on_release = None
        self._original_rows: List[np.ndarray] = []
        self._released_rows: List[np.ndarray] = []
        self._queue: Optional[asyncio.Queue] = None
        self._drainer: Optional[asyncio.Task] = None
        self._closed = False
        self._submitted = 0
        self._processed = 0
        # End-to-end latency instrumentation: submit timestamps queue
        # up here (submission order == drain order) and the drainer
        # observes submit→release per window.  Bound to the default
        # registry at construction so gateways can scope sessions to
        # their own registry via use_registry().
        registry = default_registry()
        self._obs_latency = registry.histogram(
            "repro_window_latency_seconds",
            "End-to-end window latency: submit to released answers.",
        )
        self._obs_windows = registry.counter(
            "repro_session_windows_total",
            "Windows processed by async session drainers.",
        )
        self._pending_times: deque = deque()
        #: Producers currently suspended inside ``queue.put`` — aclose
        #: must let them land before the close sentinel goes in, or
        #: their windows would slip in behind it and never be drained.
        self._inflight = 0

    # -- lifecycle -----------------------------------------------------

    async def __aenter__(self) -> "AsyncSession":
        self._ensure_started()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    def _ensure_started(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")
        if self._queue is None:
            self._queue = asyncio.Queue(maxsize=self._max_pending)
            self._drainer = asyncio.create_task(self._drain())
        elif self._drainer.done():
            # A drainer only exits early on failure (normal exit happens
            # through aclose, which flips _closed first).
            raise RuntimeError(
                "session drainer failed; close the session to retrieve "
                "the error"
            )

    async def aclose(self) -> None:
        """Flush every queued window, then stop the drainer.

        Re-raises the drainer's error if stepping failed mid-stream
        (every pending future is failed with that error first).
        """
        if self._closed:
            return
        self._closed = True
        if self._queue is None:
            return
        # Let producers already suspended inside queue.put land first —
        # the sentinel must be the *last* queue entry, or windows behind
        # it would never be drained.  The drainer keeps consuming while
        # we wait; a dead drainer cannot wake putters, so stop waiting.
        while self._inflight > 0 and not self._drainer.done():
            await asyncio.sleep(0)
        # put() would deadlock on a full queue if the drainer already
        # died; poll non-blockingly while it is alive instead.
        while not self._drainer.done():
            try:
                self._queue.put_nowait(_CLOSE)
                break
            except asyncio.QueueFull:
                await asyncio.sleep(0)
        try:
            await self._drainer
        except BaseException as error:
            # Fail any submissions that raced past the drainer's own
            # cleanup before re-raising; draining also frees queue
            # slots, waking producers still stuck in put.
            while True:
                while True:
                    try:
                        extra = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if extra is not _CLOSE:
                        _row, future = extra
                        if not future.done():
                            future.set_exception(error)
                if self._inflight == 0 and self._queue.empty():
                    break
                await asyncio.sleep(0)
            raise

    # -- checkpointing -------------------------------------------------

    def snapshot(self) -> Dict:
        """A picklable checkpoint of the session's release state.

        Only meaningful while the session is quiescent — every
        submitted window fully processed — because windows sitting in
        the queue are not part of the stepper state yet; a snapshot
        taken mid-drain would silently drop them on restore.  Raises
        ``RuntimeError`` when windows are still in flight.
        """
        if self._submitted != self._processed:
            raise RuntimeError(
                f"cannot snapshot with {self._submitted - self._processed} "
                "windows still queued; await their answers first"
            )
        return {
            "format": 1,
            "windows": self._processed,
            "stepper": (
                None if self._stepper is None else self._stepper.snapshot()
            ),
        }

    def restore(self, snapshot: Dict) -> None:
        """Resume from a checkpoint produced by :meth:`snapshot`.

        The session must be freshly configured like the snapshotted one
        (same engine configuration and seed) and must not have
        processed any windows yet.
        """
        if self._submitted != self._processed:
            raise RuntimeError(
                "cannot restore while windows are still queued"
            )
        stepper_state = snapshot["stepper"]
        if (self._stepper is None) != (stepper_state is None):
            raise ValueError(
                "checkpoint does not match this session's mechanism "
                "(protected vs unprotected)"
            )
        if self._stepper is not None:
            self._stepper.restore(stepper_state)
        self._submitted = self._processed = int(snapshot["windows"])
        self._pending_times.clear()

    # -- ingestion -----------------------------------------------------

    @property
    def windows_submitted(self) -> int:
        return self._submitted

    @property
    def windows_processed(self) -> int:
        return self._processed

    @property
    def backlog(self) -> int:
        """Queued-but-unprocessed windows (bounded by ``max_pending``)."""
        return 0 if self._queue is None else self._queue.qsize()

    async def submit(
        self, window_types: Iterable[str]
    ) -> "asyncio.Future[Dict[str, bool]]":
        """Enqueue one closed window; resolve to its private answers.

        Suspends while the queue is full — backpressure — and returns a
        future so producers may pipeline many windows before awaiting
        any answer.
        """
        return await self._submit_row(
            self._pipeline.extractor.extract_matrix([window_types])
        )

    async def _submit_row(
        self, row: np.ndarray
    ) -> "asyncio.Future[Dict[str, bool]]":
        """Enqueue one already-extracted indicator row."""
        self._ensure_started()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight += 1
        try:
            await self._queue.put((row, future))
        finally:
            self._inflight -= 1
        self._submitted += 1
        self._pending_times.append(time.monotonic())
        return future

    async def process(
        self, window_types: Iterable[str]
    ) -> Dict[str, bool]:
        """Submit one window and await its answers (no pipelining)."""
        future = await self.submit(window_types)
        return await future

    async def run(
        self, type_sets: Iterable[Iterable[str]]
    ) -> Dict[str, List[bool]]:
        """Feed every window of an iterable source, collect all answers.

        Ingestion and stepping overlap (bounded by ``max_pending``);
        the per-query answer lists are in submission order.
        """
        return await self._collect(
            [await self.submit(window) for window in type_sets]
        )

    async def run_rows(self, matrix: np.ndarray) -> Dict[str, List[bool]]:
        """Feed an already-extracted indicator matrix row by row.

        Skips the per-window extraction of :meth:`run` — the engine's
        async facade uses this after its one vectorized extraction
        pass.
        """
        return await self._collect(
            [
                await self._submit_row(matrix[index : index + 1])
                for index in range(matrix.shape[0])
            ]
        )

    async def _collect(
        self, futures: List["asyncio.Future[Dict[str, bool]]"]
    ) -> Dict[str, List[bool]]:
        per_window = [await future for future in futures]
        answers: Dict[str, List[bool]] = {
            name: [] for name in self._pipeline.matcher.query_names
        }
        for window_answers in per_window:
            for name, value in window_answers.items():
                answers[name].append(value)
        return answers

    # -- recorded streams ----------------------------------------------

    @property
    def original_matrix(self) -> np.ndarray:
        """Rows ingested so far (requires ``record=True``)."""
        return self._joined(self._original_rows)

    @property
    def released_matrix(self) -> np.ndarray:
        """Perturbed rows released so far (requires ``record=True``)."""
        return self._joined(self._released_rows)

    def _joined(self, rows: List[np.ndarray]) -> np.ndarray:
        if not self._record:
            raise RuntimeError(
                "stream recording is off; construct with record=True"
            )
        width = len(self._engine.alphabet)
        if not rows:
            return np.zeros((0, width), dtype=bool)
        return np.concatenate(rows)

    # -- the drainer ---------------------------------------------------

    async def _drain(self) -> None:
        queue = self._queue
        matcher = self._pipeline.matcher
        batch: List[Tuple[np.ndarray, asyncio.Future]] = []
        try:
            while True:
                item = await queue.get()
                if item is _CLOSE:
                    return
                batch = [item]
                closing = False
                while len(batch) < self._max_batch:
                    try:
                        extra = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if extra is _CLOSE:
                        closing = True
                        break
                    batch.append(extra)
                matrix = np.concatenate([row for row, _future in batch])
                with trace_span("session.drain", windows=len(batch)):
                    if self._stepper is None:
                        released = matrix
                    else:
                        released = self._stepper.step_block(matrix)
                    if self._record:
                        self._original_rows.append(matrix)
                        self._released_rows.append(released)
                    answers = matcher.answer(released)
                released_at = time.monotonic()
                pending_times = self._pending_times
                for _ in range(len(batch)):
                    if not pending_times:
                        break
                    self._obs_latency.observe(
                        released_at - pending_times.popleft()
                    )
                self._obs_windows.inc(len(batch))
                for position, (_row, future) in enumerate(batch):
                    window_answers = {
                        name: bool(vector[position])
                        for name, vector in answers.items()
                    }
                    if not future.done():
                        future.set_result(window_answers)
                    if self._on_release is not None:
                        # A copy: the hook runs user callbacks, which
                        # must not be able to mutate the dict already
                        # handed to the future's awaiter.
                        self._on_release(
                            self._processed + position,
                            released[position],
                            dict(window_answers),
                        )
                self._processed += len(batch)
                batch = []
                if closing:
                    return
                # Yield to producers between batches so backpressured
                # submitters get queue slots before the next drain.
                await asyncio.sleep(0)
        except BaseException as error:
            # Stepping failed: no accepted window may hang forever.
            # Fail the in-flight batch and everything still queued, then
            # surface the error through aclose()/the drainer task.
            for _row, future in batch:
                if not future.done():
                    future.set_exception(error)
            while True:
                try:
                    extra = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is not _CLOSE:
                    _row, future = extra
                    if not future.done():
                        future.set_exception(error)
            raise
