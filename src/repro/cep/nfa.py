"""Compilation of pattern expressions to match automatons.

The regex-like core (SEQ / OR / KLEENE / NEG over predicates) compiles to
a Thompson-style NFA with epsilon transitions; run states are epsilon
closures (frozensets of NFA states).  CEP conjunction (AND) compiles to a
product automaton over the operand automatons, so the conjunction's
components can interleave arbitrarily.

All automatons implement the same small interface consumed by the
matcher:

``initials()``
    the possible start states;
``step(state, event)``
    consuming transitions — the successor states reachable by consuming
    ``event`` (empty when the event cannot be consumed);
``is_accepting(state)``
    whether a full match has been recognized;
``forbidden_matches(state, event)``
    whether ``event`` violates a NEG guard active in ``state`` (which
    kills runs that *skip* the event).
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.cep.patterns import (
    Atom,
    Conj,
    Disj,
    Kleene,
    Neg,
    PatternExpr,
    Seq,
    walk,
)
from repro.cep.predicates import EventPredicate
from repro.streams.events import Event


class CompileError(ValueError):
    """Raised when an expression uses an unsupported operator nesting."""


class _Builder:
    """Mutable state shared by Thompson fragments during compilation."""

    def __init__(self):
        self.n_states = 0
        self.epsilon: Dict[int, set] = defaultdict(set)
        self.transitions: Dict[int, List[Tuple[EventPredicate, int]]] = defaultdict(list)
        self.forbidden: Dict[int, List[EventPredicate]] = defaultdict(list)

    def state(self) -> int:
        index = self.n_states
        self.n_states += 1
        return index

    def eps(self, src: int, dst: int) -> None:
        self.epsilon[src].add(dst)

    def edge(self, src: int, predicate: EventPredicate, dst: int) -> None:
        self.transitions[src].append((predicate, dst))

    def forbid(self, state: int, predicate: EventPredicate) -> None:
        self.forbidden[state].append(predicate)


class Nfa:
    """A compiled Thompson NFA; run states are epsilon closures.

    When every transition and NEG-guard predicate is a pure event-type
    test (the common ``seq(e_1..e_m)`` patterns of the paper), the NFA
    is *type-pure*: stepping reduces to a dictionary lookup in lazily
    memoized successor tables keyed by ``(closure state, event type)``,
    skipping per-transition predicate evaluation entirely.  The matcher
    uses this fast path automatically; predicates with attribute or
    composite tests fall back to the general stepping.
    """

    def __init__(self, builder: _Builder, start: int, accept: int):
        self._epsilon = {src: frozenset(dsts) for src, dsts in builder.epsilon.items()}
        self._transitions = dict(builder.transitions)
        self._forbidden = dict(builder.forbidden)
        self._accept = accept
        self._start = start
        self._initial = self.epsilon_closure((start,))
        self._type_pure = all(
            predicate.is_pure_type_test
            for transitions in self._transitions.values()
            for predicate, _dst in transitions
        ) and all(
            predicate.is_pure_type_test
            for predicates in self._forbidden.values()
            for predicate in predicates
        )
        # (closure state) -> {event type -> successor closure}; and
        # (closure state) -> frozenset of guarded event types.
        self._successor_table: Dict[FrozenSet[int], Dict[str, FrozenSet[int]]] = {}
        self._guard_table: Dict[FrozenSet[int], FrozenSet[str]] = {}

    # -- closure ---------------------------------------------------------

    def epsilon_closure(self, states: Sequence[int]) -> FrozenSet[int]:
        """All states reachable from ``states`` via epsilon transitions."""
        stack = list(states)
        closure = set(states)
        while stack:
            state = stack.pop()
            for dst in self._epsilon.get(state, ()):
                if dst not in closure:
                    closure.add(dst)
                    stack.append(dst)
        return frozenset(closure)

    # -- automaton interface ----------------------------------------------

    def initials(self) -> List[FrozenSet[int]]:
        return [self._initial]

    def step(self, state: FrozenSet[int], event: Event) -> List[FrozenSet[int]]:
        if self._type_pure:
            successor = self.successors_by_type(state).get(event.event_type)
            return [successor] if successor is not None else []
        dsts = set()
        for src in state:
            for predicate, dst in self._transitions.get(src, ()):
                if predicate.matches(event):
                    dsts.add(dst)
        if not dsts:
            return []
        return [self.epsilon_closure(tuple(dsts))]

    def is_accepting(self, state: FrozenSet[int]) -> bool:
        return self._accept in state

    def forbidden_matches(self, state: FrozenSet[int], event: Event) -> bool:
        if self._type_pure:
            return event.event_type in self.guarded_types(state)
        for src in state:
            for predicate in self._forbidden.get(src, ()):
                if predicate.matches(event):
                    return True
        return False

    # -- type-pure successor tables ----------------------------------------

    @property
    def type_pure(self) -> bool:
        """Whether all predicates are pure event-type tests."""
        return self._type_pure

    def successors_by_type(
        self, state: FrozenSet[int]
    ) -> Dict[str, FrozenSet[int]]:
        """``{event type -> successor closure}`` for one run state.

        Only valid on type-pure NFAs; memoized per closure state, so a
        long stream touches each (state, type) pair's predicate logic
        once instead of per event.
        """
        table = self._successor_table.get(state)
        if table is None:
            by_type: Dict[str, set] = {}
            for src in state:
                for predicate, dst in self._transitions.get(src, ()):
                    by_type.setdefault(predicate.event_type, set()).add(dst)
            table = {
                event_type: self.epsilon_closure(tuple(dsts))
                for event_type, dsts in by_type.items()
            }
            self._successor_table[state] = table
        return table

    def guarded_types(self, state: FrozenSet[int]) -> FrozenSet[str]:
        """Event types on which a NEG guard fires in ``state``."""
        guarded = self._guard_table.get(state)
        if guarded is None:
            guarded = frozenset(
                predicate.event_type
                for src in state
                for predicate in self._forbidden.get(src, ())
            )
            self._guard_table[state] = guarded
        return guarded


def _compile_fragment(builder: _Builder, expr: PatternExpr) -> Tuple[int, int]:
    """Compile ``expr`` into ``builder``; return (start, accept) states."""
    if isinstance(expr, Atom):
        start, accept = builder.state(), builder.state()
        builder.edge(start, expr.predicate, accept)
        return start, accept

    if isinstance(expr, Seq):
        start = builder.state()
        cursor = start
        pending_guards: List[EventPredicate] = []
        consumed_any = False
        for child in expr.children():
            if isinstance(child, Neg):
                pending_guards.append(child.component.predicate)
                continue
            child_start, child_accept = _compile_fragment(builder, child)
            junction = builder.state()
            builder.eps(cursor, junction)
            builder.eps(junction, child_start)
            for guard in pending_guards:
                builder.forbid(junction, guard)
            pending_guards = []
            cursor = child_accept
            consumed_any = True
        if not consumed_any:
            raise CompileError("SEQ must contain at least one non-NEG component")
        # Trailing NEG guards have no observable effect (acceptance is
        # decided at the final consumption); attach them anyway so the
        # structure is preserved for introspection.
        if pending_guards:
            tail = builder.state()
            builder.eps(cursor, tail)
            for guard in pending_guards:
                builder.forbid(tail, guard)
            cursor = tail
        return start, cursor

    if isinstance(expr, Disj):
        start, accept = builder.state(), builder.state()
        for child in expr.children():
            child_start, child_accept = _compile_fragment(builder, child)
            builder.eps(start, child_start)
            builder.eps(child_accept, accept)
        return start, accept

    if isinstance(expr, Kleene):
        copies = expr.at_most if expr.at_most is not None else expr.at_least
        fragments = [
            _compile_fragment(builder, expr.component) for _ in range(copies)
        ]
        for (_, prev_accept), (next_start, _) in zip(fragments, fragments[1:]):
            builder.eps(prev_accept, next_start)
        accept = builder.state()
        for index in range(expr.at_least - 1, copies):
            builder.eps(fragments[index][1], accept)
        if expr.at_most is None:
            last_start, last_accept = fragments[-1]
            builder.eps(last_accept, last_start)
        return fragments[0][0], accept

    if isinstance(expr, Neg):
        raise CompileError("NEG is only valid directly inside SEQ")
    if isinstance(expr, Conj):
        raise CompileError(
            "AND inside this operator nesting is handled by compile_expr"
        )
    raise CompileError(f"unsupported expression node {type(expr).__name__}")


def compile_to_nfa(expr: PatternExpr) -> Nfa:
    """Compile a Conj-free expression to a Thompson NFA."""
    builder = _Builder()
    start, accept = _compile_fragment(builder, expr)
    return Nfa(builder, start, accept)


class ProductAutomaton:
    """Conjunction (AND) as a product of operand automatons.

    A consuming step advances any non-empty subset of the operands that
    can consume the event (shared events are allowed, as in
    skip-till-any-match CEP conjunction); the rest stay put.  The product
    accepts when every operand accepts.
    """

    def __init__(self, children: Sequence):
        if len(children) < 2:
            raise ValueError("a product automaton needs >= 2 operands")
        self._children = list(children)

    def initials(self) -> List[Tuple]:
        return [
            tuple(combo)
            for combo in itertools.product(
                *(child.initials() for child in self._children)
            )
        ]

    def step(self, state: Tuple, event: Event) -> List[Tuple]:
        options: List[List] = []
        any_advance = False
        for child, child_state in zip(self._children, state):
            successors = child.step(child_state, event)
            if successors:
                any_advance = True
            options.append([("stay", child_state)] + [("go", s) for s in successors])
        if not any_advance:
            return []
        results = []
        for combo in itertools.product(*options):
            if all(tag == "stay" for tag, _ in combo):
                continue
            results.append(tuple(s for _, s in combo))
        # Deduplicate while preserving order.
        seen = set()
        unique = []
        for result in results:
            if result not in seen:
                seen.add(result)
                unique.append(result)
        return unique

    def is_accepting(self, state: Tuple) -> bool:
        return all(
            child.is_accepting(child_state)
            for child, child_state in zip(self._children, state)
        )

    def forbidden_matches(self, state: Tuple, event: Event) -> bool:
        return any(
            child.forbidden_matches(child_state, event)
            for child, child_state in zip(self._children, state)
        )


class SeqAutomaton:
    """SEQ over arbitrary component automatons (used when AND nests in SEQ).

    State is ``(component_index, component_state)``; when a component
    accepts, the automaton can epsilon-advance into the next component.
    """

    def __init__(self, children: Sequence):
        if not children:
            raise ValueError("SEQ needs at least one component")
        self._children = list(children)

    def _cascade(self, index: int, state) -> List[Tuple[int, object]]:
        """``(index, state)`` plus entries reachable by accept-advance."""
        results = [(index, state)]
        if (
            index + 1 < len(self._children)
            and self._children[index].is_accepting(state)
        ):
            for init in self._children[index + 1].initials():
                results.extend(self._cascade(index + 1, init))
        return results

    def initials(self) -> List[Tuple[int, object]]:
        results = []
        for init in self._children[0].initials():
            results.extend(self._cascade(0, init))
        return results

    def step(self, state: Tuple[int, object], event: Event) -> List[Tuple[int, object]]:
        index, child_state = state
        results = []
        for successor in self._children[index].step(child_state, event):
            results.extend(self._cascade(index, successor))
        return results

    def is_accepting(self, state: Tuple[int, object]) -> bool:
        index, child_state = state
        return index == len(self._children) - 1 and self._children[
            index
        ].is_accepting(child_state)

    def forbidden_matches(self, state: Tuple[int, object], event: Event) -> bool:
        index, child_state = state
        return self._children[index].forbidden_matches(child_state, event)


class DisjAutomaton:
    """OR over arbitrary component automatons."""

    def __init__(self, children: Sequence):
        if len(children) < 2:
            raise ValueError("OR needs >= 2 components")
        self._children = list(children)

    def initials(self) -> List[Tuple[int, object]]:
        return [
            (index, init)
            for index, child in enumerate(self._children)
            for init in child.initials()
        ]

    def step(self, state: Tuple[int, object], event: Event) -> List[Tuple[int, object]]:
        index, child_state = state
        return [
            (index, successor)
            for successor in self._children[index].step(child_state, event)
        ]

    def is_accepting(self, state: Tuple[int, object]) -> bool:
        index, child_state = state
        return self._children[index].is_accepting(child_state)

    def forbidden_matches(self, state: Tuple[int, object], event: Event) -> bool:
        index, child_state = state
        return self._children[index].forbidden_matches(child_state, event)


def _contains_conj(expr: PatternExpr) -> bool:
    return any(isinstance(node, Conj) for node in walk(expr))


def compile_expr(expr: PatternExpr):
    """Compile any supported expression to a match automaton.

    Conj-free expressions take the Thompson fast path.  Expressions with
    AND are composed structurally; AND under KLEENE and NEG alongside AND
    in the same SEQ are not supported (the paper's patterns are plain
    sequences; these operators exist for the CEP substrate).
    """
    if not _contains_conj(expr):
        return compile_to_nfa(expr)
    if isinstance(expr, Conj):
        return ProductAutomaton([compile_expr(child) for child in expr.children()])
    if isinstance(expr, Seq):
        children = []
        for child in expr.children():
            if isinstance(child, Neg):
                raise CompileError(
                    "NEG in a SEQ containing AND is not supported"
                )
            children.append(compile_expr(child))
        return SeqAutomaton(children)
    if isinstance(expr, Disj):
        return DisjAutomaton([compile_expr(child) for child in expr.children()])
    if isinstance(expr, Kleene):
        raise CompileError("KLEENE over AND is not supported")
    raise CompileError(f"unsupported expression node {type(expr).__name__}")
