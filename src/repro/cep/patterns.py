"""Pattern expressions and named patterns.

The paper writes patterns as ``P = seq(e_1, e_2, ..., e_m)``
(Section III-A) — a temporal sequence of events.  This module provides
that form (:meth:`Pattern.of_types`) plus the richer operator algebra a
CEP engine needs:

- :func:`SEQ` — components in temporal order;
- :func:`AND` — all components, interleaved arbitrarily;
- :func:`OR`  — any one component;
- :func:`NEG` — absence of a matching event between adjacent SEQ steps;
- :func:`KLEENE` — bounded/unbounded repetition.

Higher-level patterns formed from lower-level ones are flattened into a
sequence of events exactly as the paper prescribes ("any pattern can
always be written in the form of a sequence of events").
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.cep.predicates import EventPredicate


class PatternExpr:
    """Base class of pattern-expression AST nodes."""

    def children(self) -> Tuple["PatternExpr", ...]:
        return ()

    def event_types(self) -> List[str]:
        """All event-type symbols referenced by pure type predicates.

        Best effort: composite predicates contribute nothing.  Order is
        first appearance, duplicates preserved only once.
        """
        seen: dict = {}
        for node in walk(self):
            if isinstance(node, Atom) and node.predicate.event_type:
                seen.setdefault(node.predicate.event_type, None)
        return list(seen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()

    def render(self) -> str:
        raise NotImplementedError


class Atom(PatternExpr):
    """A single pattern position, filled by one event."""

    def __init__(self, predicate: Union[EventPredicate, str]):
        if isinstance(predicate, str):
            predicate = EventPredicate.of_type(predicate)
        if not isinstance(predicate, EventPredicate):
            raise TypeError(
                "Atom takes an EventPredicate or an event-type string, got "
                f"{type(predicate).__name__}"
            )
        self.predicate = predicate

    def render(self) -> str:
        return self.predicate.name


class _Composite(PatternExpr):
    _symbol = "?"
    _min_children = 2

    def __init__(self, *components: Union[PatternExpr, EventPredicate, str]):
        if len(components) < self._min_children:
            raise ValueError(
                f"{type(self).__name__} needs at least "
                f"{self._min_children} component(s), got {len(components)}"
            )
        self._children = tuple(as_expr(component) for component in components)

    def children(self) -> Tuple[PatternExpr, ...]:
        return self._children

    def render(self) -> str:
        inner = ", ".join(child.render() for child in self._children)
        return f"{self._symbol}({inner})"


class Seq(_Composite):
    """Components matched in temporal order (events in between allowed)."""

    _symbol = "SEQ"
    _min_children = 1


class Conj(_Composite):
    """All components matched, in any interleaving (CEP conjunction)."""

    _symbol = "AND"


class Disj(_Composite):
    """Any one component matched (CEP disjunction)."""

    _symbol = "OR"


class Kleene(PatternExpr):
    """Repetition of a component between ``at_least`` and ``at_most`` times."""

    def __init__(
        self,
        component: Union[PatternExpr, EventPredicate, str],
        *,
        at_least: int = 1,
        at_most: Optional[int] = None,
    ):
        if at_least < 1:
            raise ValueError(f"at_least must be >= 1, got {at_least}")
        if at_most is not None and at_most < at_least:
            raise ValueError(
                f"at_most ({at_most}) must be >= at_least ({at_least})"
            )
        self.component = as_expr(component)
        self.at_least = at_least
        self.at_most = at_most

    def children(self) -> Tuple[PatternExpr, ...]:
        return (self.component,)

    def render(self) -> str:
        bound = f"{self.at_least}..{self.at_most if self.at_most else ''}"
        return f"KLEENE({self.component.render()}, {bound})"


class Neg(PatternExpr):
    """Absence guard: no matching event between adjacent SEQ steps.

    Only valid directly inside a :class:`Seq`; the guarded predicate must
    be an atom.
    """

    def __init__(self, component: Union[Atom, EventPredicate, str]):
        expr = as_expr(component)
        if not isinstance(expr, Atom):
            raise TypeError("NEG only guards a single predicate (Atom)")
        self.component = expr

    def children(self) -> Tuple[PatternExpr, ...]:
        return (self.component,)

    def render(self) -> str:
        return f"NEG({self.component.render()})"


def as_expr(value: Union[PatternExpr, EventPredicate, str]) -> PatternExpr:
    """Coerce a predicate or event-type string into an expression."""
    if isinstance(value, PatternExpr):
        return value
    if isinstance(value, (EventPredicate, str)):
        return Atom(value)
    raise TypeError(
        "expected PatternExpr, EventPredicate or event-type string, got "
        f"{type(value).__name__}"
    )


def walk(expr: PatternExpr) -> Iterable[PatternExpr]:
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        yield from walk(child)


# Public constructor aliases matching CEP literature capitalization.
def SEQ(*components) -> Seq:
    """``SEQ(a, b, c)``: a then b then c, in temporal order."""
    return Seq(*components)


def AND(*components) -> Conj:
    """``AND(a, b)``: both a and b, interleaved arbitrarily."""
    return Conj(*components)


def OR(*components) -> Disj:
    """``OR(a, b)``: a or b."""
    return Disj(*components)


def NEG(component) -> Neg:
    """``NEG(x)`` inside SEQ: no x-event between the neighbouring steps."""
    return Neg(component)


def KLEENE(component, at_least: int = 1, at_most: Optional[int] = None) -> Kleene:
    """``KLEENE(a, n, m)``: a repeated between n and m times."""
    return Kleene(component, at_least=at_least, at_most=at_most)


class Pattern:
    """A named pattern: an expression plus the paper-level metadata.

    For the common case ``P = seq(e_1, ..., e_m)`` over plain event
    types, :attr:`elements` exposes the ordered element types — this is
    what the pattern-level PPMs perturb and what Theorem 1 sums over.
    General expressions have ``elements = None`` (the engine still
    matches them; the PPMs require sequential-of-types patterns or an
    explicit element list).
    """

    def __init__(
        self,
        name: str,
        expr: Union[PatternExpr, EventPredicate, str],
        *,
        elements: Optional[Sequence[str]] = None,
    ):
        if not isinstance(name, str) or not name:
            raise ValueError("pattern name must be a non-empty string")
        self.name = name
        self.expr = as_expr(expr)
        if elements is not None:
            elements = tuple(elements)
            if not elements:
                raise ValueError("elements must be non-empty when given")
        else:
            elements = self._infer_elements(self.expr)
        self.elements: Optional[Tuple[str, ...]] = elements

    @staticmethod
    def _infer_elements(expr: PatternExpr) -> Optional[Tuple[str, ...]]:
        """Recover ``seq(e_1..e_m)`` element types when the expression is
        a plain sequence (or single atom) of pure type predicates."""
        if isinstance(expr, Atom):
            if expr.predicate.event_type:
                return (expr.predicate.event_type,)
            return None
        if isinstance(expr, Seq):
            elements: List[str] = []
            for child in expr.children():
                if isinstance(child, Atom) and child.predicate.event_type:
                    elements.append(child.predicate.event_type)
                else:
                    return None
            return tuple(elements)
        return None

    @classmethod
    def of_types(cls, name: str, *event_types: str) -> "Pattern":
        """The paper's ``P = seq(e_1, e_2, ..., e_m)`` over event types."""
        if not event_types:
            raise ValueError("a pattern needs at least one element")
        if len(event_types) == 1:
            return cls(name, Atom(event_types[0]))
        return cls(name, Seq(*event_types))

    @classmethod
    def composed(cls, name: str, *patterns: "Pattern") -> "Pattern":
        """Form a higher-level pattern from lower-level ones.

        Per Section III-A, the constituent events of all sub-patterns are
        collected and merged so the result is again a sequence of events.
        Requires every sub-pattern to expose its elements.
        """
        if not patterns:
            raise ValueError("at least one sub-pattern is required")
        elements: List[str] = []
        for pattern in patterns:
            if pattern.elements is None:
                raise ValueError(
                    f"sub-pattern {pattern.name!r} has no element list; "
                    "higher-level composition needs seq-of-types patterns"
                )
            elements.extend(pattern.elements)
        return cls.of_types(name, *elements)

    @property
    def length(self) -> int:
        """The number of elements ``m`` (requires an element list)."""
        if self.elements is None:
            raise ValueError(
                f"pattern {self.name!r} is not a sequence of event types; "
                "its length is undefined"
            )
        return len(self.elements)

    @property
    def is_sequence_of_types(self) -> bool:
        """Whether the pattern is a plain ``seq`` of event types."""
        return self.elements is not None

    def element_set(self) -> frozenset:
        """The distinct element types (requires an element list)."""
        if self.elements is None:
            raise ValueError(f"pattern {self.name!r} has no element list")
        return frozenset(self.elements)

    def overlaps(self, other: "Pattern") -> bool:
        """Whether two patterns share constituent event types.

        Overlapping patterns (Section III-A) are patterns whose
        occurrences are correlated because they can contain the same
        events.
        """
        if self.elements is None or other.elements is None:
            raise ValueError("overlap test needs element lists on both patterns")
        return bool(self.element_set() & other.element_set())

    def __eq__(self, other) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return (
            self.name == other.name
            and self.elements == other.elements
            and self.expr.render() == other.expr.render()
        )

    def __hash__(self) -> int:
        return hash((self.name, self.elements, self.expr.render()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pattern({self.name!r}, {self.expr.render()})"
