"""Event predicates: the leaves of pattern expressions.

A predicate decides whether a single event can fill a pattern position.
Predicates compose with ``&``, ``|`` and ``~`` so pattern atoms can
express e.g. "a region entry in the city centre during rush hour".
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.streams.events import Event


class EventPredicate:
    """A named boolean test over events.

    Parameters
    ----------
    test:
        ``callable(Event) -> bool``.
    name:
        Human-readable label used in pattern rendering and error
        messages.
    event_type:
        When the predicate is a pure type test, the type symbol is kept
        so pattern analyses (e.g. extracting the element list of a
        ``seq(e_1..e_m)`` pattern) can recover it.  ``None`` for
        composite or attribute predicates.
    """

    def __init__(
        self,
        test: Callable[[Event], bool],
        *,
        name: Optional[str] = None,
        event_type: Optional[str] = None,
    ):
        if not callable(test):
            raise TypeError("test must be callable(Event) -> bool")
        self._test = test
        self.name = name or getattr(test, "__name__", "predicate")
        self.event_type = event_type
        # True only for predicates *constructed as* pure type tests
        # (:meth:`of_type`).  A caller may annotate an arbitrary test
        # with event_type= for pattern analyses; such predicates still
        # evaluate their test, so the NFA's table-driven fast path must
        # not treat the annotation alone as the semantics.
        self._pure_type_test = False

    @property
    def is_pure_type_test(self) -> bool:
        """Whether matching is exactly ``event.event_type == event_type``."""
        return self._pure_type_test

    def matches(self, event: Event) -> bool:
        """Whether ``event`` satisfies this predicate."""
        return bool(self._test(event))

    def __call__(self, event: Event) -> bool:
        return self.matches(event)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventPredicate({self.name})"

    # -- constructors ----------------------------------------------------

    @classmethod
    def of_type(cls, event_type: str) -> "EventPredicate":
        """Match events whose ``event_type`` equals ``event_type``."""
        if not isinstance(event_type, str) or not event_type:
            raise ValueError("event_type must be a non-empty string")
        predicate = cls(
            lambda event: event.event_type == event_type,
            name=event_type,
            event_type=event_type,
        )
        predicate._pure_type_test = True
        return predicate

    @classmethod
    def any_event(cls) -> "EventPredicate":
        """Match every event."""
        return cls(lambda _event: True, name="*")

    @classmethod
    def where(
        cls, test: Callable[[Event], bool], *, name: Optional[str] = None
    ) -> "EventPredicate":
        """Match events satisfying an arbitrary test."""
        return cls(test, name=name)

    @classmethod
    def attr_equals(cls, key: str, value: Any) -> "EventPredicate":
        """Match events whose attribute ``key`` equals ``value``."""
        return cls(
            lambda event: event.attribute(key) == value,
            name=f"{key}=={value!r}",
        )

    @classmethod
    def from_source(cls, source: str) -> "EventPredicate":
        """Match events originating from one data stream / subject."""
        return cls(lambda event: event.source == source, name=f"src:{source}")

    # -- combinators -----------------------------------------------------

    def __and__(self, other: "EventPredicate") -> "EventPredicate":
        if not isinstance(other, EventPredicate):
            return NotImplemented
        return EventPredicate(
            lambda event: self.matches(event) and other.matches(event),
            name=f"({self.name} & {other.name})",
        )

    def __or__(self, other: "EventPredicate") -> "EventPredicate":
        if not isinstance(other, EventPredicate):
            return NotImplemented
        return EventPredicate(
            lambda event: self.matches(event) or other.matches(event),
            name=f"({self.name} | {other.name})",
        )

    def __invert__(self) -> "EventPredicate":
        return EventPredicate(
            lambda event: not self.matches(event), name=f"!{self.name}"
        )
