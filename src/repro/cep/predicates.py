"""Event predicates: the leaves of pattern expressions.

A predicate decides whether a single event can fill a pattern position.
Predicates compose with ``&``, ``|`` and ``~`` so pattern atoms can
express e.g. "a region entry in the city centre during rush hour".
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.streams.events import Event


class _TypeEquals:
    """Picklable ``event.event_type == event_type`` test.

    The built-in predicate constructors avoid closures so that patterns
    (and everything holding them: mechanisms, pipelines, workloads)
    survive pickling — required by the process backends of
    :class:`~repro.runtime.executors.ShardedExecutor` and the parallel
    experiment sweep.
    """

    __slots__ = ("event_type",)

    def __init__(self, event_type: str):
        self.event_type = event_type

    def __call__(self, event: Event) -> bool:
        return event.event_type == self.event_type


class _AnyEvent:
    __slots__ = ()

    def __call__(self, _event: Event) -> bool:
        return True


class _AttrEquals:
    __slots__ = ("key", "value")

    def __init__(self, key: str, value: Any):
        self.key = key
        self.value = value

    def __call__(self, event: Event) -> bool:
        return event.attribute(self.key) == self.value


class _SourceEquals:
    __slots__ = ("source",)

    def __init__(self, source: str):
        self.source = source

    def __call__(self, event: Event) -> bool:
        return event.source == self.source


class _And:
    __slots__ = ("left", "right")

    def __init__(self, left: "EventPredicate", right: "EventPredicate"):
        self.left = left
        self.right = right

    def __call__(self, event: Event) -> bool:
        return self.left.matches(event) and self.right.matches(event)


class _Or:
    __slots__ = ("left", "right")

    def __init__(self, left: "EventPredicate", right: "EventPredicate"):
        self.left = left
        self.right = right

    def __call__(self, event: Event) -> bool:
        return self.left.matches(event) or self.right.matches(event)


class _Not:
    __slots__ = ("inner",)

    def __init__(self, inner: "EventPredicate"):
        self.inner = inner

    def __call__(self, event: Event) -> bool:
        return not self.inner.matches(event)


class EventPredicate:
    """A named boolean test over events.

    Parameters
    ----------
    test:
        ``callable(Event) -> bool``.
    name:
        Human-readable label used in pattern rendering and error
        messages.
    event_type:
        When the predicate is a pure type test, the type symbol is kept
        so pattern analyses (e.g. extracting the element list of a
        ``seq(e_1..e_m)`` pattern) can recover it.  ``None`` for
        composite or attribute predicates.
    """

    def __init__(
        self,
        test: Callable[[Event], bool],
        *,
        name: Optional[str] = None,
        event_type: Optional[str] = None,
    ):
        if not callable(test):
            raise TypeError("test must be callable(Event) -> bool")
        self._test = test
        self.name = name or getattr(test, "__name__", "predicate")
        self.event_type = event_type
        # True only for predicates *constructed as* pure type tests
        # (:meth:`of_type`).  A caller may annotate an arbitrary test
        # with event_type= for pattern analyses; such predicates still
        # evaluate their test, so the NFA's table-driven fast path must
        # not treat the annotation alone as the semantics.
        self._pure_type_test = False

    @property
    def is_pure_type_test(self) -> bool:
        """Whether matching is exactly ``event.event_type == event_type``."""
        return self._pure_type_test

    def matches(self, event: Event) -> bool:
        """Whether ``event`` satisfies this predicate."""
        return bool(self._test(event))

    def __call__(self, event: Event) -> bool:
        return self.matches(event)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventPredicate({self.name})"

    # -- constructors ----------------------------------------------------

    @classmethod
    def of_type(cls, event_type: str) -> "EventPredicate":
        """Match events whose ``event_type`` equals ``event_type``."""
        if not isinstance(event_type, str) or not event_type:
            raise ValueError("event_type must be a non-empty string")
        predicate = cls(
            _TypeEquals(event_type),
            name=event_type,
            event_type=event_type,
        )
        predicate._pure_type_test = True
        return predicate

    @classmethod
    def any_event(cls) -> "EventPredicate":
        """Match every event."""
        return cls(_AnyEvent(), name="*")

    @classmethod
    def where(
        cls, test: Callable[[Event], bool], *, name: Optional[str] = None
    ) -> "EventPredicate":
        """Match events satisfying an arbitrary test."""
        return cls(test, name=name)

    @classmethod
    def attr_equals(cls, key: str, value: Any) -> "EventPredicate":
        """Match events whose attribute ``key`` equals ``value``."""
        return cls(_AttrEquals(key, value), name=f"{key}=={value!r}")

    @classmethod
    def from_source(cls, source: str) -> "EventPredicate":
        """Match events originating from one data stream / subject."""
        return cls(_SourceEquals(source), name=f"src:{source}")

    # -- combinators -----------------------------------------------------

    def __and__(self, other: "EventPredicate") -> "EventPredicate":
        if not isinstance(other, EventPredicate):
            return NotImplemented
        return EventPredicate(
            _And(self, other), name=f"({self.name} & {other.name})"
        )

    def __or__(self, other: "EventPredicate") -> "EventPredicate":
        if not isinstance(other, EventPredicate):
            return NotImplemented
        return EventPredicate(
            _Or(self, other), name=f"({self.name} | {other.name})"
        )

    def __invert__(self) -> "EventPredicate":
        return EventPredicate(_Not(self), name=f"!{self.name}")
