"""Complex event processing engine.

The trusted middleware of the paper's system model (Section III-A,
Fig. 2): data subjects register *private* patterns, data consumers
register *target* queries, and the engine answers continuous binary
queries ("was the pattern detected?") with a privacy-preserving
mechanism interposed.

The pattern language covers the operators common in CEP systems — SEQ,
AND (conjunction), OR (disjunction), NEG (absence between sequence
steps) and KLEENE (repetition) over event predicates — compiled to a
non-deterministic automaton with skip-till-any-match semantics and
optional time-window (``within``) pruning.
"""

from repro.cep.async_session import AsyncSession
from repro.cep.engine import CEPEngine, EngineReport
from repro.cep.matcher import PatternMatch, PatternMatcher, PatternStream
from repro.cep.online import OnlineSession
from repro.cep.patterns import (
    AND,
    KLEENE,
    NEG,
    OR,
    SEQ,
    Atom,
    Pattern,
    PatternExpr,
)
from repro.cep.predicates import EventPredicate
from repro.cep.queries import ContinuousQuery, QueryAnswer

__all__ = [
    "AND",
    "AsyncSession",
    "Atom",
    "CEPEngine",
    "ContinuousQuery",
    "EngineReport",
    "EventPredicate",
    "KLEENE",
    "NEG",
    "OR",
    "OnlineSession",
    "Pattern",
    "PatternExpr",
    "PatternMatch",
    "PatternMatcher",
    "PatternStream",
    "QueryAnswer",
    "SEQ",
]
