"""Run-based pattern matching over event streams.

:class:`PatternMatcher` feeds events through the compiled automaton,
maintaining a set of *runs* (partial matches).  Semantics:

- **skip-till-any-match** (default): a run may ignore events that do not
  advance it, and every event may both extend existing runs and start
  new ones — the standard relaxed CEP selection strategy;
- **strict** contiguity: a run must consume every event after its first
  or die (matches must be contiguous sub-sequences);
- ``within``: a run whose time span would exceed the window is pruned;
- NEG guards kill runs that *skip* a violating event (consuming
  transitions take precedence, as usual in CEP negation);
- duplicate matches (same consumed events) are emitted once.

Detected matches form the paper's *pattern stream* ``S^P``
(Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.cep.nfa import compile_expr
from repro.cep.patterns import Pattern
from repro.streams.events import Event
from repro.streams.stream import EventStream


@dataclass(frozen=True)
class PatternMatch:
    """One detected pattern instance ``P_i``.

    Attributes
    ----------
    pattern_name:
        Name of the matched pattern (its type ``\\mathcal{P}``).
    events:
        The constituent events ``e_1..e_m`` in consumption order — the
        *elements* of the pattern instance.
    """

    pattern_name: str
    events: Tuple[Event, ...]

    @property
    def start(self) -> float:
        """Timestamp of the first constituent event."""
        return self.events[0].timestamp

    @property
    def end(self) -> float:
        """Timestamp of the last constituent event."""
        return self.events[-1].timestamp

    @property
    def span(self) -> float:
        """Time between first and last constituent event."""
        return self.end - self.start

    def __len__(self) -> int:
        return len(self.events)

    def element_types(self) -> Tuple[str, ...]:
        """Event types of the constituent events, in order."""
        return tuple(event.event_type for event in self.events)


class PatternStream:
    """The stream ``S^P`` of detected pattern instances, in detection order."""

    def __init__(self, matches: Iterable[PatternMatch] = ()):
        self._matches: List[PatternMatch] = list(matches)

    def __iter__(self) -> Iterator[PatternMatch]:
        return iter(self._matches)

    def __len__(self) -> int:
        return len(self._matches)

    def __getitem__(self, index):
        return self._matches[index]

    def append(self, match: PatternMatch) -> None:
        self._matches.append(match)

    def of_pattern(self, pattern_name: str) -> "PatternStream":
        """The sub-stream of instances of one pattern type."""
        return PatternStream(
            match for match in self._matches if match.pattern_name == pattern_name
        )

    def overlapping_pairs(self) -> List[Tuple[PatternMatch, PatternMatch]]:
        """Pairs of distinct instances sharing at least one event.

        These are the paper's *overlapping patterns*: instances whose
        occurrences are correlated because they contain the same events.
        """
        pairs = []
        for i, first in enumerate(self._matches):
            first_events = set(first.events)
            for second in self._matches[i + 1 :]:
                if first_events & set(second.events):
                    pairs.append((first, second))
        return pairs


@dataclass
class _Run:
    state: object
    consumed: Tuple[Event, ...]
    first_ts: float


class PatternMatcher:
    """Incremental matcher for one pattern over an event stream.

    Parameters
    ----------
    pattern:
        The pattern to detect.
    within:
        Optional maximum time span between the first and last constituent
        event of a match.
    contiguity:
        ``"skip-till-any"`` (default) or ``"strict"``.
    max_active_runs:
        Upper bound on simultaneously tracked partial matches; the oldest
        runs are dropped beyond it (a standard CEP load-shedding guard).
    """

    def __init__(
        self,
        pattern: Pattern,
        *,
        within: Optional[float] = None,
        contiguity: str = "skip-till-any",
        max_active_runs: int = 10_000,
    ):
        if contiguity not in ("skip-till-any", "strict"):
            raise ValueError(
                f"contiguity must be 'skip-till-any' or 'strict', got {contiguity!r}"
            )
        if within is not None and within <= 0:
            raise ValueError(f"within must be positive, got {within}")
        if max_active_runs <= 0:
            raise ValueError(f"max_active_runs must be positive, got {max_active_runs}")
        self.pattern = pattern
        self.within = within
        self.contiguity = contiguity
        self.max_active_runs = max_active_runs
        self._automaton = compile_expr(pattern.expr)
        self._runs: List[_Run] = []
        self._emitted: set = set()

    def reset(self) -> None:
        """Forget all partial matches and emitted-match memory."""
        self._runs = []
        self._emitted = set()

    @property
    def active_runs(self) -> int:
        """Number of currently tracked partial matches."""
        return len(self._runs)

    def process(self, event: Event) -> List[PatternMatch]:
        """Feed one event; return the matches completed by it."""
        matches: List[PatternMatch] = []
        next_runs: List[_Run] = []

        for run in self._runs:
            # Window pruning: consuming this event would overflow `within`,
            # and any later event is even further out.
            if (
                self.within is not None
                and event.timestamp - run.first_ts > self.within
            ):
                continue
            successors = self._automaton.step(run.state, event)
            for state in successors:
                new_run = _Run(state, run.consumed + (event,), run.first_ts)
                next_runs.append(new_run)
                if self._automaton.is_accepting(state):
                    self._emit(new_run, matches)
            if self.contiguity == "strict":
                continue  # the skipping copy dies under strict contiguity
            if successors and self._automaton.forbidden_matches(run.state, event):
                # A NEG guard fires and the run also had a consuming
                # option: the consuming copies above survive, the parked
                # copy dies.
                continue
            if not successors and self._automaton.forbidden_matches(run.state, event):
                continue  # guard fires, nothing consumed: run dies
            next_runs.append(run)

        # Every event may start fresh runs.
        for init in self._automaton.initials():
            for state in self._automaton.step(init, event):
                run = _Run(state, (event,), event.timestamp)
                next_runs.append(run)
                if self._automaton.is_accepting(state):
                    self._emit(run, matches)

        if len(next_runs) > self.max_active_runs:
            next_runs = next_runs[-self.max_active_runs :]
        self._runs = next_runs
        return matches

    def match_stream(self, stream: EventStream) -> PatternStream:
        """Match a whole stream; return all matches in detection order.

        For the common single-type/sequence patterns the compiled NFA is
        *type-pure* and stepping runs off memoized successor tables
        (``Nfa.successors_by_type``) — one dictionary lookup per active
        run per event instead of per-transition predicate evaluation.
        General predicates use the same run logic through the fallback
        stepping.
        """
        detected = PatternStream()
        process = self.process
        for event in stream:
            for match in process(event):
                detected.append(match)
        return detected

    def feed(self, stream: EventStream) -> PatternStream:
        """Feed a whole stream; alias of :meth:`match_stream`."""
        return self.match_stream(stream)

    def _emit(self, run: _Run, matches: List[PatternMatch]) -> None:
        key = run.consumed
        if key in self._emitted:
            return
        self._emitted.add(key)
        matches.append(PatternMatch(self.pattern.name, run.consumed))


def match_pattern(
    pattern: Pattern,
    stream: EventStream,
    *,
    within: Optional[float] = None,
    contiguity: str = "skip-till-any",
) -> PatternStream:
    """One-shot convenience: match ``pattern`` over ``stream``."""
    matcher = PatternMatcher(pattern, within=within, contiguity=contiguity)
    return matcher.feed(stream)
