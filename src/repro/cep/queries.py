"""Continuous queries and their answers.

Data consumers query the CEP engine for target patterns; the PPMs are
"built under the assumption that all answers to the queries are binary"
(Section V): per window, the answer is whether the pattern was detected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cep.patterns import Pattern


@dataclass(frozen=True)
class ContinuousQuery:
    """A standing query for a target pattern.

    Attributes
    ----------
    name:
        Identifier of the query (unique within an engine).
    pattern:
        The target pattern whose existence is queried.
    within:
        Optional time-window constraint for full event-stream matching;
        ignored in the windowed-indicator mode (the window assigner
        already fixes the scope).
    """

    name: str
    pattern: Pattern
    within: Optional[float] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("query name must be non-empty")
        if not isinstance(self.pattern, Pattern):
            raise TypeError(
                f"pattern must be a Pattern, got {type(self.pattern).__name__}"
            )
        if self.within is not None and self.within <= 0:
            raise ValueError(f"within must be positive, got {self.within}")

    @classmethod
    def for_pattern(cls, pattern: Pattern, *, within: Optional[float] = None) -> "ContinuousQuery":
        """A query named after its pattern."""
        return cls(name=f"q:{pattern.name}", pattern=pattern, within=within)


@dataclass(frozen=True)
class QueryAnswer:
    """The per-window binary answers to one continuous query."""

    query_name: str
    detections: np.ndarray

    def __post_init__(self):
        detections = np.asarray(self.detections, dtype=bool)
        object.__setattr__(self, "detections", detections)

    @property
    def n_windows(self) -> int:
        return int(self.detections.shape[0])

    def detected(self, window_index: int) -> bool:
        """The answer for one window."""
        return bool(self.detections[window_index])

    def detection_count(self) -> int:
        """Number of windows with a positive answer."""
        return int(self.detections.sum())
