"""The trusted CEP engine (system model of Section III-A, Fig. 2).

Setup phase: data subjects register *private* patterns (what must be
protected); data consumers register continuous *target* queries and
their quality requirement.  A privacy mechanism is attached (any object
with ``perturb(IndicatorStream, rng=...) -> IndicatorStream``).

Service phase: raw events are windowed, reduced to existence indicators,
perturbed once by the mechanism, and every registered query is answered
from the *perturbed* indicators — so the mechanism's guarantee covers
all consumers.

Since PR 4 the engine is the *compiled artifact* of a declarative
:class:`~repro.service.ServiceSpec`: the imperative setup-phase
mutators below keep working but emit ``DeprecationWarning``s pointing
at the spec API (:mod:`repro.service`), which builds engines through
them internally without warning.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace
from typing import Dict, List, Optional

import numpy as np

from repro.cep.matcher import PatternMatcher, PatternStream
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery, QueryAnswer
from repro.mechanisms.accountant import PrivacyAccountant
from repro.runtime.pipeline import StreamPipeline
from repro.runtime.stages import WindowStage
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.stream import EventStream
from repro.utils.deprecation import (
    suppress_imperative_warnings,
    warn_imperative,
)
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive


@dataclass
class QualityRequirement:
    """A data consumer's quality requirement (Section III-B).

    ``alpha`` weights precision against recall in
    ``Q = alpha * Prec + (1 - alpha) * Rec``; ``max_mre`` optionally
    caps the acceptable quality degradation ``MRE_Q``.
    """

    alpha: float = 0.5
    max_mre: Optional[float] = None

    def __post_init__(self):
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.max_mre is not None and self.max_mre < 0:
            raise ValueError(f"max_mre must be >= 0, got {self.max_mre}")


@dataclass
class EngineReport:
    """Outcome of one service-phase run.

    Attributes
    ----------
    answers:
        Per-query answers computed on the *perturbed* indicators.
    true_answers:
        Per-query answers on the unperturbed indicators (ground truth for
        quality evaluation; never released to consumers).
    original, perturbed:
        The indicator streams before and after the mechanism.
    """

    answers: Dict[str, QueryAnswer]
    true_answers: Dict[str, QueryAnswer]
    original: IndicatorStream
    perturbed: IndicatorStream

    def answer(self, query_name: str) -> QueryAnswer:
        if query_name not in self.answers:
            raise KeyError(
                f"unknown query {query_name!r}; have {sorted(self.answers)}"
            )
        return self.answers[query_name]

    def measured_quality(self, alpha: float = 0.5):
        """``Q`` of the released answers against the engine-internal truth.

        Micro-averaged over all queries (Section III-B).  This uses the
        unreleased ground truth, so it is a trusted-engine diagnostic,
        not something a consumer could compute.
        """
        from repro.metrics.confusion import ConfusionCounts
        from repro.metrics.quality import DataQuality

        counts = ConfusionCounts()
        for name, released in self.answers.items():
            counts = counts + ConfusionCounts.from_vectors(
                self.true_answers[name].detections, released.detections
            )
        return DataQuality.from_confusion(counts, alpha=alpha)

    def measured_mre(self, alpha: float = 0.5) -> float:
        """``MRE_Q`` of this run (Eq. (4); ``Q_ord = 1`` in-engine)."""
        from repro.metrics.mre import mean_relative_error

        return mean_relative_error(1.0, self.measured_quality(alpha).q)

    def meets_requirement(self, requirement: "QualityRequirement") -> bool:
        """Whether this run satisfies a consumer's quality requirement.

        True when the requirement sets no MRE cap, or the measured MRE
        (under the requirement's α) stays within it.
        """
        if requirement.max_mre is None:
            return True
        return self.measured_mre(requirement.alpha) <= requirement.max_mre


class CEPEngine:
    """Trusted middleware between data subjects and data consumers."""

    def __init__(self, alphabet: EventAlphabet):
        if not isinstance(alphabet, EventAlphabet):
            raise TypeError(
                f"alphabet must be EventAlphabet, got {type(alphabet).__name__}"
            )
        self.alphabet = alphabet
        self._private_patterns: Dict[str, Pattern] = {}
        self._queries: Dict[str, ContinuousQuery] = {}
        self._quality = QualityRequirement()
        self._mechanism = None
        self._accountant: Optional[PrivacyAccountant] = None
        self._pipeline: Optional[StreamPipeline] = None

    # -- setup phase -----------------------------------------------------

    def register_private_pattern(self, pattern: Pattern) -> None:
        """Data subject declares a pattern whose existence is private.

        .. deprecated:: declare the pattern in ``ServiceSpec(patterns=)``.
        """
        warn_imperative(
            "CEPEngine.register_private_pattern()",
            "declare the pattern in ServiceSpec(patterns=...)",
        )
        self._check_pattern(pattern)
        if pattern.name in self._private_patterns:
            raise ValueError(f"private pattern {pattern.name!r} already registered")
        self._private_patterns[pattern.name] = pattern

    def register_query(self, query: ContinuousQuery) -> None:
        """Data consumer registers a continuous target-pattern query.

        .. deprecated:: declare the query in ``ServiceSpec(queries=)``.
        """
        warn_imperative(
            "CEPEngine.register_query()",
            "declare the query in ServiceSpec(queries=...)",
        )
        if query.name in self._queries:
            raise ValueError(f"query {query.name!r} already registered")
        self._check_pattern(query.pattern)
        self._queries[query.name] = query
        self._pipeline = None

    def set_quality_requirement(self, requirement: QualityRequirement) -> None:
        """Data consumer declares the required output data quality.

        .. deprecated:: declare it in ``ServiceSpec(quality=)``.
        """
        warn_imperative(
            "CEPEngine.set_quality_requirement()",
            "declare the requirement in ServiceSpec(quality=...)",
        )
        self._quality = requirement

    def attach_mechanism(self, mechanism) -> None:
        """Attach the privacy-preserving mechanism used during service.

        Any object exposing ``perturb(stream, rng=...) -> IndicatorStream``
        qualifies (the pattern-level PPMs and all baselines do).

        .. deprecated:: choose a registered mechanism spec via
           ``ServiceSpec(mechanism=..., mechanism_options=...)``.
        """
        warn_imperative(
            "CEPEngine.attach_mechanism()",
            "choose a registered mechanism spec via "
            "ServiceSpec(mechanism=..., mechanism_options=...)",
        )
        if not hasattr(mechanism, "perturb"):
            raise TypeError(
                "mechanism must expose perturb(IndicatorStream, rng=...)"
            )
        self._mechanism = mechanism
        self._pipeline = None

    def enable_accounting(self, total_epsilon: float) -> PrivacyAccountant:
        """Cap the total budget spent across service-phase runs.

        Each call to :meth:`process_indicators` releases a fresh
        perturbation of the data, and repeated releases compose
        sequentially; the accountant makes the cumulative spend explicit
        and refuses runs that would exceed ``total_epsilon``.

        .. deprecated:: declare the cap in ``ServiceSpec(accounting=)``.
        """
        warn_imperative(
            "CEPEngine.enable_accounting()",
            "declare the budget cap in ServiceSpec(accounting=...)",
        )
        check_positive("total_epsilon", total_epsilon, allow_inf=True)
        self._accountant = PrivacyAccountant(total_epsilon)
        return self._accountant

    @property
    def accountant(self) -> Optional[PrivacyAccountant]:
        """The service-phase budget ledger (``None`` when not enabled)."""
        return self._accountant

    def _charge_accountant(self) -> None:
        if self._accountant is None or self._mechanism is None:
            return
        # Pattern-level mechanisms expose per-pattern guarantees; other
        # mechanisms expose a single epsilon.
        if hasattr(self._mechanism, "guarantees"):
            spends = [
                (f"release:{guarantee.pattern.name}", guarantee.epsilon)
                for guarantee in self._mechanism.guarantees()
            ]
        else:
            name = getattr(self._mechanism, "name", "mechanism")
            spends = [(f"release:{name}", self._mechanism.epsilon)]
        total = sum(epsilon for _label, epsilon in spends)
        if not self._accountant.can_spend(total):
            from repro.mechanisms.accountant import BudgetExceededError

            raise BudgetExceededError(
                f"this release needs ε={total:g} but only "
                f"{self._accountant.remaining():g} of the engine budget "
                f"remains"
            )
        for label, epsilon in spends:
            self._accountant.spend(label, epsilon)

    def _check_pattern(self, pattern: Pattern) -> None:
        if not isinstance(pattern, Pattern):
            raise TypeError(
                f"expected Pattern, got {type(pattern).__name__}"
            )
        if pattern.elements is not None:
            missing = [
                element
                for element in pattern.elements
                if element not in self.alphabet
            ]
            if missing:
                raise ValueError(
                    f"pattern {pattern.name!r} uses event types {missing} "
                    "absent from the engine alphabet"
                )

    # -- introspection ----------------------------------------------------

    @property
    def private_patterns(self) -> List[Pattern]:
        """The registered private patterns."""
        return list(self._private_patterns.values())

    @property
    def queries(self) -> List[ContinuousQuery]:
        """The registered continuous queries."""
        return list(self._queries.values())

    @property
    def quality_requirement(self) -> QualityRequirement:
        return self._quality

    @property
    def mechanism(self):
        return self._mechanism

    # -- service phase ----------------------------------------------------

    def service_pipeline(self) -> StreamPipeline:
        """The runtime pipeline realizing this engine's service phase.

        Built once per (queries, mechanism) configuration and cached;
        registration invalidates the cache.  Exposed so callers can run
        the engine's configuration under a custom executor.
        """
        if not self._queries:
            raise RuntimeError("no queries registered; nothing to answer")
        if self._pipeline is None:
            self._pipeline = StreamPipeline(
                self.alphabet,
                queries=list(self._queries.values()),
                mechanism=self._mechanism,
            )
        return self._pipeline

    def process_indicators(
        self,
        stream: IndicatorStream,
        *,
        rng: RngLike = None,
        executor=None,
    ) -> EngineReport:
        """Answer all registered queries over an indicator stream.

        The attached mechanism perturbs the stream once; all queries are
        answered from the perturbed stream.  Without a mechanism the
        answers equal the ground truth (no protection).  ``executor``
        selects the runtime strategy (vectorized batch by default; pass
        a :class:`~repro.runtime.executors.ChunkedExecutor` for
        bounded-memory execution).
        """
        pipeline = self.service_pipeline()
        if stream.alphabet != self.alphabet:
            raise ValueError("indicator stream alphabet differs from the engine's")
        if self._mechanism is not None:
            self._charge_accountant()
        result = pipeline.run(stream, rng=rng, executor=executor)
        return self._report(stream, result)

    def _report(self, stream: IndicatorStream, result) -> EngineReport:
        answers: Dict[str, QueryAnswer] = {
            name: QueryAnswer(name, detections)
            for name, detections in result.answers.items()
        }
        true_answers: Dict[str, QueryAnswer] = {
            name: QueryAnswer(name, detections)
            for name, detections in result.true_answers.items()
        }
        return EngineReport(
            answers=answers,
            true_answers=true_answers,
            original=stream,
            perturbed=result.released,
        )

    def process_events(
        self,
        stream: EventStream,
        window_assigner,
        *,
        rng: RngLike = None,
        executor=None,
    ) -> EngineReport:
        """Full service phase from raw events.

        Windows the event stream with ``window_assigner`` (any assigner
        from :mod:`repro.streams.windows`), reduces the windows to
        existence indicators over the engine alphabet, and answers every
        query (mechanism applied once, accounting charged if enabled).
        Windowing and extraction run through the runtime's vectorized
        stages.
        """
        type_sets = WindowStage(window_assigner).type_sets(stream)
        pipeline = self.service_pipeline()
        indicators = pipeline.extractor.extract(type_sets)
        return self.process_indicators(indicators, rng=rng, executor=executor)

    async def process_events_async(
        self,
        stream: EventStream,
        window_assigner,
        *,
        rng: RngLike = None,
        max_pending: int = 256,
        max_batch: int = 64,
    ) -> EngineReport:
        """Full service phase from raw events, via async ingestion.

        Windows the event stream, then feeds every window through an
        :class:`~repro.cep.async_session.AsyncSession` — a bounded
        queue with backpressure draining into the mechanism's chunk
        stepper — instead of one vectorized batch.  For every flip
        mechanism the report is identical to :meth:`process_events`
        under the same seed; sequential mechanisms follow the online
        session's dedicated randomness stream, and the user-level
        baseline (whose budget split needs the horizon) is rejected
        with ``TypeError``.
        """
        from repro.cep.async_session import AsyncSession

        type_sets = WindowStage(window_assigner).type_sets(stream)
        pipeline = self.service_pipeline()
        indicators = pipeline.extractor.extract(type_sets)
        with suppress_imperative_warnings():
            session = AsyncSession(
                self,
                rng=rng,
                max_pending=max_pending,
                max_batch=max_batch,
                record=True,
            )
        async with session:
            released_answers = await session.run_rows(
                indicators.matrix_view()
            )
        return self._report(
            indicators,
            SimpleNamespace(
                answers={
                    name: np.asarray(values, dtype=bool)
                    for name, values in released_answers.items()
                },
                true_answers=pipeline.matcher.answer(
                    indicators.matrix_view()
                ),
                released=IndicatorStream(
                    self.alphabet, session.released_matrix
                ),
            ),
        )

    def match(
        self,
        stream: EventStream,
        pattern: Pattern,
        *,
        within: Optional[float] = None,
        contiguity: str = "skip-till-any",
    ) -> PatternStream:
        """Full CEP matching of one pattern over an event stream.

        This path exercises the operator algebra (SEQ/AND/OR/NEG/KLEENE)
        directly; it carries no privacy protection and is used to build
        pattern streams and ground truth.
        """
        matcher = PatternMatcher(pattern, within=within, contiguity=contiguity)
        return matcher.match_stream(stream)

    def detect_all_patterns(
        self, stream: EventStream, *, within: Optional[float] = None
    ) -> PatternStream:
        """Match every registered pattern (private and target) over events.

        Returns the merged pattern stream ``S^P`` ordered by completion
        (detection) time.
        """
        all_patterns = list(self._private_patterns.values()) + [
            query.pattern for query in self._queries.values()
        ]
        merged = PatternStream()
        completions = []
        for pattern in all_patterns:
            for match in self.match(stream, pattern, within=within):
                completions.append((match.end, match.pattern_name, match))
        completions.sort(key=lambda item: (item[0], item[1]))
        for _end, _name, match in completions:
            merged.append(match)
        return merged
