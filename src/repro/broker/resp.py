"""RESP2 wire protocol: codec plus a blocking socket connection.

The Redis serialization protocol (RESP2) is small enough to speak
without a dependency: five reply types, each introduced by one byte —
``+`` simple string, ``-`` error, ``:`` integer, ``$`` bulk string,
``*`` array — and every request is an array of bulk strings.  This
module implements exactly that, sufficient for the Redis-Streams
command subset the broker connectors use (``XADD``, ``XREAD`` /
``XREADGROUP``, ``XACK``, ``XGROUP CREATE``, ``XPENDING``,
``XAUTOCLAIM``, ``XLEN``, ``XRANGE``, ``PING``):

- :func:`encode_command` renders one command into request bytes;
- :class:`RespConnection` is a blocking socket client with separate
  connect/read timeouts, one-reply :meth:`~RespConnection.execute` and
  pipelined :meth:`~RespConnection.execute_pipeline` (send N commands
  in one write, then read N replies — the round-trip amortization
  real stream consumers rely on for acks).

Server ``-ERR`` replies surface as :class:`RespError`; transport
failures (refused, reset, timed out, protocol garbage) surface as
:class:`BrokerConnectionError` / :class:`BrokerTimeout` so the
resilient client layer (:mod:`repro.broker.client`) can distinguish
"the server said no" from "the connection died" — only the latter is
retryable.
"""

from __future__ import annotations

import socket

from typing import List, Optional, Sequence, Tuple, Union

__all__ = [
    "BrokerConnectionError",
    "BrokerError",
    "BrokerProtocolError",
    "BrokerTimeout",
    "RespConnection",
    "RespError",
    "encode_command",
    "parse_url",
]


class BrokerError(Exception):
    """Base of every broker-layer failure."""


class BrokerConnectionError(BrokerError):
    """The transport failed: refused, reset, or closed mid-reply."""


class BrokerTimeout(BrokerConnectionError):
    """A connect or read exceeded its configured timeout."""


class BrokerProtocolError(BrokerConnectionError):
    """The peer sent bytes that are not valid RESP2."""


class RespError(BrokerError):
    """An error reply (``-ERR ...``) from the server.

    A *semantic* refusal over a healthy connection — never retried by
    the client layer (retrying ``BUSYGROUP`` or ``NOGROUP`` would loop
    forever; callers handle the ones they expect).
    """

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message

    @property
    def code(self) -> str:
        """The error's leading word (``ERR``, ``BUSYGROUP``, ...)."""
        return self.message.split(" ", 1)[0] if self.message else ""


CommandPart = Union[str, bytes, int, float]


def _as_bytes(part: CommandPart) -> bytes:
    if isinstance(part, bytes):
        return part
    if isinstance(part, str):
        return part.encode("utf-8")
    if isinstance(part, bool):  # bool is an int; reject the ambiguity
        raise TypeError("command parts must be str/bytes/int/float")
    if isinstance(part, (int, float)):
        return repr(part).encode("ascii")
    raise TypeError(
        f"command parts must be str/bytes/int/float, got "
        f"{type(part).__name__}"
    )


def encode_command(*parts: CommandPart) -> bytes:
    """Render one command as a RESP2 array of bulk strings."""
    if not parts:
        raise ValueError("a command needs at least one part")
    chunks = [b"*%d\r\n" % len(parts)]
    for part in parts:
        data = _as_bytes(part)
        chunks.append(b"$%d\r\n%s\r\n" % (len(data), data))
    return b"".join(chunks)


def parse_url(url: str) -> Tuple[str, int]:
    """``redis://host[:port]`` → ``(host, port)`` (default port 6379).

    The only accepted scheme is ``redis://`` (no TLS, no auth — the
    connectors talk to localhost fakes and plain brokers); a trailing
    ``/<db>`` path is rejected because streams ignore database
    selection here.
    """
    if not isinstance(url, str) or not url:
        raise ValueError(f"broker url must be a non-empty string, got {url!r}")
    prefix = "redis://"
    if not url.startswith(prefix):
        raise ValueError(
            f"unsupported broker url {url!r}; expected 'redis://host:port'"
        )
    address = url[len(prefix):]
    if "/" in address:
        raise ValueError(
            f"broker url {url!r} carries a path; streams ignore database "
            "selection — use 'redis://host:port'"
        )
    host, sep, port_text = address.partition(":")
    if not host:
        raise ValueError(f"broker url {url!r} has no host")
    if not sep:
        return host, 6379
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"broker url {url!r} has a non-integer port"
        ) from None
    if not 0 < port < 65536:
        raise ValueError(f"broker url {url!r} port out of range")
    return host, port


class RespConnection:
    """One blocking RESP2 connection to a broker.

    Connects lazily on first use; ``connect_timeout`` bounds the TCP
    handshake and ``read_timeout`` every subsequent reply read (a
    blocking ``XREAD``'s server-side ``BLOCK`` must stay below it, or
    the read times out first — callers pass a per-call ``timeout``
    override for those).  Not thread-safe: one connection, one caller.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout: float = 2.0,
        read_timeout: float = 5.0,
    ):
        if connect_timeout <= 0 or read_timeout <= 0:
            raise ValueError("timeouts must be positive")
        self.host = host
        self.port = port
        self.connect_timeout = float(connect_timeout)
        self.read_timeout = float(read_timeout)
        self._sock: Optional[socket.socket] = None
        # Receive buffer with a consumed-prefix offset: replies are
        # decoded by advancing ``_pos`` and the prefix is compacted only
        # when more bytes must be read — ``del buffer[:n]`` per decoded
        # line would be O(remaining) and dominate large batch replies.
        self._buffer = bytearray()
        self._pos = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def connect(self) -> "RespConnection":
        if self._sock is not None:
            return self
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except socket.timeout as error:
            raise BrokerTimeout(
                f"connect to {self.host}:{self.port} timed out after "
                f"{self.connect_timeout}s"
            ) from error
        except OSError as error:
            raise BrokerConnectionError(
                f"cannot connect to {self.host}:{self.port}: {error}"
            ) from error
        sock.settimeout(self.read_timeout)
        # Streams traffic is many small commands; Nagle would add
        # 40ms-class latency to every ack round trip.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._buffer.clear()
        self._pos = 0
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._buffer.clear()
        self._pos = 0

    def __enter__(self) -> "RespConnection":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request / reply -----------------------------------------------

    def execute(self, *parts: CommandPart, timeout: Optional[float] = None):
        """Send one command and return its decoded reply.

        ``timeout`` overrides the read timeout for this reply only
        (blocking stream reads).  Error replies raise
        :class:`RespError`; transport failures close the connection
        and raise :class:`BrokerConnectionError`.
        """
        reply = self.execute_pipeline([parts], timeout=timeout)[0]
        if isinstance(reply, RespError):
            raise reply
        return reply

    def execute_pipeline(
        self,
        commands: Sequence[Sequence[CommandPart]],
        *,
        timeout: Optional[float] = None,
    ) -> List:
        """Send every command in one write, then read every reply.

        Per-command error replies come back as :class:`RespError`
        *values* (not raised) so one failed ack in a pipeline cannot
        hide its siblings' results; transport failures raise and close.
        """
        if not commands:
            return []
        self.connect()
        payload = b"".join(encode_command(*parts) for parts in commands)
        sock = self._sock
        try:
            if timeout is not None:
                sock.settimeout(timeout)
            sock.sendall(payload)
            return [self._read_reply() for _ in commands]
        except socket.timeout as error:
            self.close()
            raise BrokerTimeout(
                f"reply from {self.host}:{self.port} timed out"
            ) from error
        except OSError as error:
            self.close()
            raise BrokerConnectionError(
                f"connection to {self.host}:{self.port} failed: {error}"
            ) from error
        except BrokerConnectionError:
            self.close()
            raise
        finally:
            if self._sock is not None and timeout is not None:
                self._sock.settimeout(self.read_timeout)

    # -- RESP2 decoding ------------------------------------------------

    def _fill(self) -> None:
        if self._pos:
            del self._buffer[: self._pos]
            self._pos = 0
        data = self._sock.recv(65536)
        if not data:
            raise BrokerConnectionError(
                f"connection to {self.host}:{self.port} closed by peer"
            )
        self._buffer.extend(data)

    def _read_line(self) -> bytes:
        while True:
            index = self._buffer.find(b"\r\n", self._pos)
            if index >= 0:
                line = bytes(self._buffer[self._pos : index])
                self._pos = index + 2
                return line
            self._fill()

    def _read_exact(self, count: int) -> bytes:
        while len(self._buffer) - self._pos < count + 2:
            self._fill()
        end = self._pos + count
        data = bytes(self._buffer[self._pos : end])
        if self._buffer[end : end + 2] != b"\r\n":
            raise BrokerProtocolError("bulk string missing CRLF terminator")
        self._pos = end + 2
        return data

    def _read_reply(self):
        line = self._read_line()
        if not line:
            raise BrokerProtocolError("empty reply line")
        kind, rest = line[:1], line[1:]
        if kind == b"+":
            return rest.decode("utf-8")
        if kind == b"-":
            return RespError(rest.decode("utf-8", "replace"))
        if kind == b":":
            try:
                return int(rest)
            except ValueError:
                raise BrokerProtocolError(
                    f"invalid integer reply {rest!r}"
                ) from None
        if kind == b"$":
            length = int(rest)
            if length == -1:
                return None
            if length < 0:
                raise BrokerProtocolError(f"invalid bulk length {length}")
            return self._read_exact(length)
        if kind == b"*":
            length = int(rest)
            if length == -1:
                return None
            if length < 0:
                raise BrokerProtocolError(f"invalid array length {length}")
            return [self._read_reply() for _ in range(length)]
        raise BrokerProtocolError(f"unknown RESP type byte {kind!r}")
