"""Broker connectors: wire-level Redis-Streams ingestion.

Layers, bottom up:

- :mod:`repro.broker.resp` — dependency-free RESP2 codec + blocking
  socket connection (the wire);
- :mod:`repro.broker.fake` — an in-process broker speaking the same
  protocol over a real localhost socket, with fault injection, so CI
  exercises the true client path with zero external services;
- :mod:`repro.broker.client` — :class:`BrokerClient` with capped
  exponential retry (:class:`RetryPolicy`), reconnect tracking and a
  dead-letter policy for poison entries;
- :mod:`repro.broker.connectors` — the ``broker:`` source/sink specs
  with at-least-once, ack-at-checkpoint delivery.
"""

from repro.broker.client import BrokerClient, RetryBudgetExceeded, RetryPolicy
from repro.broker.connectors import (
    BrokerSink,
    BrokerSource,
    publish_indicator_stream,
)
from repro.broker.fake import FakeRedisServer
from repro.broker.resp import (
    BrokerConnectionError,
    BrokerError,
    BrokerProtocolError,
    BrokerTimeout,
    RespConnection,
    RespError,
)

__all__ = [
    "BrokerClient",
    "BrokerConnectionError",
    "BrokerError",
    "BrokerProtocolError",
    "BrokerSink",
    "BrokerSource",
    "BrokerTimeout",
    "FakeRedisServer",
    "RespConnection",
    "RespError",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "publish_indicator_stream",
]
