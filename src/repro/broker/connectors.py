"""Broker-backed source/sink connectors: at-least-once ingestion.

:class:`BrokerSource` feeds a :class:`~repro.service.StreamService`
from a Redis-Streams consumer group
(``broker:url=redis://host:port,stream=...,group=...,consumer=...``);
:class:`BrokerSink` publishes released windows back to a stream.  The
source rides the live-feed half of the source contract (like
``queue:`` it cannot seek), but unlike a queue its feed is *named* —
the spec string carries the broker address, so a resumed fleet
rebuilds the connection from the checkpoint alone.

The delivery contract is **at-least-once with acks at checkpoint
boundaries**:

- every delivered entry id is held un-acked while its window flows
  through the pipeline;
- :meth:`BrokerSource.checkpoint_mark` — called by
  :meth:`StreamService.checkpoint` — acks everything emitted so far
  in one ``XACK``, so an entry is acked exactly when a checkpoint
  capturing its window exists.  An ack failure aborts the checkpoint;
- on resume (or after a crash), a fresh source with the same consumer
  name first *drains* its pending-entry list (``XREADGROUP`` with an
  explicit id) — exactly the entries delivered after the last
  successful checkpoint — before reading new entries with ``>``.
  Re-processing those windows reproduces the uninterrupted run bit
  for bit, because the session state in the checkpoint is from the
  same boundary the acks are.

The same drain path closes the reconnect hazard: if the connection
dies during a ``>`` read, the server may have delivered entries into
the PEL that never reached us (and the retried read would silently
skip past them).  The source watches the client's ``reconnects``
counter around every fetch; when it moves, the fetched batch is
discarded and the source re-enters drain mode from the last entry it
actually emitted — order preserved, nothing lost, duplicates
impossible (drained ids are already tracked).

High-rate feeds batch windows at the transport level: a *chunked*
entry carries ``rows_per_entry`` consecutive windows plus the absolute
index of its first one (``base``), amortizing per-entry wire framing.
The ack ledger tracks per-row progress — a chunk is acked only once
its *last* row is covered by a checkpoint, and a redelivered chunk
skips the rows a committed checkpoint already captured (``base`` vs
the resumed offset), so kill/resume stays row-exact even mid-chunk.

Entries that cannot be decoded into a window are *poison*: they are
copied to ``<stream>:dead`` with a reason and acked immediately
(:meth:`BrokerClient.dead_letter`), so one malformed producer cannot
wedge the group.  Chunked entries are the exception: dropping one
would silently shift every later window's index against its ``base``,
so an undecodable chunk raises instead of dead-lettering — exactness
beats liveness there.

Everything is instrumented through :mod:`repro.obs`
(``repro_broker_*`` counters, a fetch-latency histogram, consumer-lag
and unacked gauges); instrumentation never touches any RNG, so the
released stream stays bit-identical to a memory-fed run.
"""

from __future__ import annotations

import asyncio
import json
import time

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.broker.client import BrokerClient, RetryPolicy
from repro.broker.resp import BrokerError
from repro.io.registry import register_sink, register_source
from repro.io.sinks import StreamSink
from repro.io.sources import StreamSource
from repro.obs.metrics import default_registry
from repro.service.specgrammar import SpecKey
from repro.streams.indicator import EventAlphabet, IndicatorStream

__all__ = [
    "BrokerSink",
    "BrokerSource",
    "publish_indicator_stream",
]

#: Field marking the end-of-stream control entry a finite publisher
#: appends.  The source consumes it and ends — but deliberately
#: *never* acks it, so it stays in the pending list forever and every
#: resumed consumer (whose group cursor is already past it) re-drains
#: it and re-observes end-of-stream instead of blocking for entries
#: that will never come.
EOS_FIELD = "eos"


def _encode_row(row: np.ndarray) -> str:
    return "".join("1" if value else "0" for value in row)


def _decode_fields(
    fields: Dict[str, str], alphabet: EventAlphabet
) -> np.ndarray:
    """One entry's fields → a boolean indicator row (raises = poison)."""
    if "row" in fields:
        bits = fields["row"]
        if len(bits) != len(alphabet) or set(bits) - {"0", "1"}:
            raise ValueError(
                f"'row' must be {len(alphabet)} characters of 0/1"
            )
        return np.frombuffer(
            bits.encode("ascii"), dtype=np.uint8
        ) == ord("1")
    if "types" in fields:
        types = json.loads(fields["types"])
        if not isinstance(types, list):
            raise ValueError("'types' must be a JSON array")
        row = np.zeros(len(alphabet), dtype=bool)
        for name in types:
            if name in alphabet:
                row[alphabet.index(name)] = True
        return row
    raise ValueError("entry has neither 'row' nor 'types'")


class _RowCache:
    """Memoized row decoding for the source's hot loop.

    Indicator rows over a small alphabet repeat constantly, so decoded
    arrays are cached by their ``row`` bit string and shared between
    entries — marked read-only, which also guards the pipeline's
    no-mutation contract.  Entries without a plain ``row`` field (or
    past the size cap) fall through to a fresh decode.
    """

    _CAP = 4096

    def __init__(self) -> None:
        self._rows: Dict[str, np.ndarray] = {}

    def decode(
        self, fields: Dict[str, str], alphabet: EventAlphabet
    ) -> np.ndarray:
        bits = fields.get("row")
        if bits is None:
            return _decode_fields(fields, alphabet)
        row = self._rows.get(bits)
        if row is None:
            row = _decode_fields(fields, alphabet)
            row.setflags(write=False)
            if len(self._rows) < self._CAP:
                self._rows[bits] = row
        return row


def _decode_chunk(
    fields: Dict[str, str], alphabet: EventAlphabet
) -> Tuple[int, np.ndarray]:
    """A chunked entry's fields → (base window index, read-only rows).

    One vectorized decode for the whole chunk — per-window transport
    cost is what record batching exists to amortize.
    """
    bits = fields["rows"]
    width = len(alphabet)
    if not bits or len(bits) % width or set(bits) - {"0", "1"}:
        raise ValueError(
            f"'rows' must be a multiple of {width} characters of 0/1"
        )
    base_text = fields.get("base")
    if base_text is None:
        raise ValueError("chunked entry is missing its 'base' index")
    base = int(base_text)
    if base < 0:
        raise ValueError(f"chunked entry base must be >= 0, got {base}")
    block = (
        np.frombuffer(bits.encode("ascii"), dtype=np.uint8).reshape(
            -1, width
        )
        == ord("1")
    )
    block.setflags(write=False)
    return base, block


def publish_indicator_stream(
    url: str,
    stream: str,
    data: IndicatorStream,
    *,
    eos: bool = True,
    chunk: int = 256,
    rows_per_entry: int = 1,
) -> int:
    """Publish every window of ``data`` to a broker stream, pipelined.

    Appends an end-of-stream control entry when ``eos`` (finite
    feeds: benchmarks, examples, tests).  Returns the number of
    windows published.

    ``rows_per_entry > 1`` batches that many consecutive windows into
    one *chunked* entry (``rows`` = concatenated bit strings, ``base``
    = absolute index of the first window) — the record-batching that
    amortizes per-entry wire framing for high-rate feeds.  The source
    replays a partially-consumed chunk row-exactly (see
    :class:`BrokerSource`).
    """
    from repro.broker.resp import RespConnection, RespError, parse_url

    if rows_per_entry < 1:
        raise ValueError(
            f"rows_per_entry must be >= 1, got {rows_per_entry}"
        )
    host, port = parse_url(url)
    matrix = data.matrix_view()
    with RespConnection(host, port) as connection:
        for start in range(0, matrix.shape[0], chunk):
            stop = min(start + chunk, matrix.shape[0])
            if rows_per_entry == 1:
                commands = [
                    ("XADD", stream, "*", "row", _encode_row(matrix[index]))
                    for index in range(start, stop)
                ]
            else:
                commands = [
                    (
                        "XADD", stream, "*",
                        "rows",
                        "".join(
                            _encode_row(matrix[index])
                            for index in range(
                                base, min(base + rows_per_entry, stop)
                            )
                        ),
                        "base", base,
                    )
                    for base in range(start, stop, rows_per_entry)
                ]
            for reply in connection.execute_pipeline(commands):
                if isinstance(reply, RespError):
                    raise reply
        if eos:
            connection.execute("XADD", stream, "*", EOS_FIELD, "1")
    return int(matrix.shape[0])


@register_source(
    "broker",
    keys=(
        SpecKey("url"),
        SpecKey("stream"),
        SpecKey("group"),
        SpecKey("consumer"),
        SpecKey("block_ms", convert=int),
        SpecKey("batch", convert=int),
    ),
)
class BrokerSource(StreamSource):
    """Windows consumed from a Redis-Streams consumer group.

    Spec form::

        broker:url=redis://host:port,stream=windows,group=repro,
               consumer=c0,block_ms=100,batch=64

    A live feed: not seekable — resume sets the offset directly and
    the pending-entry drain re-delivers the un-acked suffix (see the
    module docstring for the at-least-once contract).  ``broker``
    without ``url=`` declares intent only; the gateway's live-feed
    check rejects serving it until a feed is bound.
    """

    seekable = False

    def __init__(
        self,
        url: Optional[str] = None,
        *,
        stream: str = "windows",
        group: str = "repro",
        consumer: str = "c0",
        block_ms: int = 100,
        batch: int = 64,
        connect_timeout: float = 2.0,
        read_timeout: float = 5.0,
        retry: Optional[RetryPolicy] = None,
    ):
        super().__init__()
        if block_ms < 1:
            raise ValueError(f"block_ms must be >= 1, got {block_ms}")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.url = url
        self.stream = stream
        self.group = group
        self.consumer = consumer
        self.block_ms = int(block_ms)
        self.batch = int(batch)
        self._connect_timeout = connect_timeout
        self._read_timeout = read_timeout
        self._retry = retry
        self._client: Optional[BrokerClient] = None
        #: Per emitted-but-unacked row, in emission order:
        #: ``(entry_id, completes)`` where ``completes`` marks the
        #: entry's last row — only completed entries are acked at a
        #: checkpoint (a chunk is all-or-nothing on the broker side).
        self._unacked: List[Tuple[str, bool]] = []
        #: Ledger rows of pushed-back windows (parallel to
        #: ``_pushback``, which the base class pops from the end).
        self._pushback_ids: List[Tuple[str, bool]] = []
        #: Last entry id actually emitted — the drain cursor after a
        #: reconnect.
        self._last_entry_id = "0-0"
        self._draining = True
        self._finished = False
        self._row_cache = _RowCache()

    # -- live-feed contract -------------------------------------------

    @property
    def live_feed_bound(self) -> bool:
        return self.url is not None

    def skip(self, count: int) -> "StreamSource":
        """A live feed cannot seek; resume drains the PEL instead."""
        if count:
            raise RuntimeError(
                "a live 'broker' source cannot skip past data it has "
                "not received; resume re-reads un-acked entries from "
                "the consumer group's pending list"
            )
        return self

    def unemit(self, row: np.ndarray) -> None:
        # Keep the un-acked ledger aligned with the emitted offset: a
        # pushed-back row's entry must not be acked at the next
        # checkpoint (its window is not captured), so its id moves
        # back out of the ledger alongside the row.
        if self._unacked:
            self._pushback_ids.append(self._unacked.pop())
        super().unemit(row)

    def checkpoint_mark(self) -> None:
        """Ack every emitted entry — the at-least-once commit point.

        One ``XACK`` covers the whole batch; a transport failure here
        raises, aborting the checkpoint, and the entries stay pending
        for the post-resume drain.
        """
        if not self._unacked or self._client is None:
            return
        completed = [
            entry_id for entry_id, completes in self._unacked if completes
        ]
        if completed:
            self._client.xack(self.stream, self.group, completed)
        # Rows of a still-partial chunk clear too: the ack decision
        # only ever needs the completing row, and it lands in the
        # ledger after this boundary.
        self._unacked.clear()
        self._gauge_unacked()

    # -- plumbing ------------------------------------------------------

    def _require_client(self) -> BrokerClient:
        if self._client is None:
            if self.url is None:
                raise ValueError(
                    "the 'broker' source has no feed bound; give the "
                    "spec a url= (broker:url=redis://host:port,...) or "
                    "construct BrokerSource(url)"
                )
            registry = default_registry()
            backoff = registry.counter(
                "repro_broker_backoff_total",
                "Backoff sleeps taken by broker clients.",
            )
            self._client = BrokerClient(
                self.url,
                connect_timeout=self._connect_timeout,
                read_timeout=self._read_timeout,
                retry=self._retry,
                on_retry=lambda *_: backoff.inc(),
            )
            self._client.xgroup_create(
                self.stream, self.group, start="0", mkstream=True
            )
        return self._client

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def _gauge_unacked(self) -> None:
        default_registry().gauge(
            "repro_broker_unacked",
            "Delivered broker windows awaiting the next checkpoint ack.",
        ).set(float(len(self._unacked)))

    def _gauge_lag(self, client: BrokerClient) -> None:
        # Approximate: entries in the stream minus windows emitted.
        # Counts the not-yet-consumed eos marker as lag 1 until the
        # stream actually ends.  Called from the fetch thread — the
        # extra XLEN round trip must not block the event loop.
        lag = max(0.0, float(client.xlen(self.stream)) - self._offset)
        if self._finished:
            lag = 0.0
        default_registry().gauge(
            "repro_broker_consumer_lag",
            "Stream entries not yet emitted as windows (approximate).",
        ).set(lag)

    # -- fetch loop (runs in a worker thread) -------------------------

    def _fetch(self) -> Optional[List[Tuple[str, Dict[str, str]]]]:
        """One batch of entries, honouring drain mode; ``None`` = no
        data this block interval (caller loops)."""
        client = self._require_client()
        registry = default_registry()
        timer = registry.histogram(
            "repro_broker_fetch_seconds",
            "Wall time of one broker fetch round trip.",
        )
        if self._draining:
            start = time.perf_counter()
            entries = client.xreadgroup(
                self.stream,
                self.group,
                self.consumer,
                last_id=self._last_entry_id,
                count=self.batch,
            )
            timer.observe(time.perf_counter() - start)
            if entries:
                registry.counter(
                    "repro_broker_redelivered_total",
                    "Broker entries re-delivered from the pending list.",
                ).inc(len(entries))
                return entries
            # Empty PEL past the cursor: drain complete (the empty
            # list is the signal — distinct from None/no-data).
            self._draining = False
            return None

        reconnects_before = client.reconnects
        start = time.perf_counter()
        entries = client.xreadgroup(
            self.stream,
            self.group,
            self.consumer,
            last_id=">",
            count=self.batch,
            block_ms=self.block_ms,
        )
        timer.observe(time.perf_counter() - start)
        if client.reconnects != reconnects_before:
            # The connection died mid-read: the server may have
            # delivered entries we never saw (they sit in our PEL),
            # and the retried read started *past* them.  Discard this
            # batch — the drain re-delivers it and the stranded gap in
            # id order — and resume from the last emitted entry.
            registry.counter(
                "repro_broker_reconnects_total",
                "Broker connection drops observed by sources.",
            ).inc(float(client.reconnects - reconnects_before))
            self._draining = True
            return None
        if entries:
            registry.counter(
                "repro_broker_delivered_total",
                "Broker entries delivered as new reads.",
            ).inc(len(entries))
            self._gauge_lag(client)
        return entries or None

    # -- source contract ----------------------------------------------

    def _rows(self) -> Iterator[np.ndarray]:
        raise TypeError(
            "the 'broker' source is asynchronous; drive it with "
            "StreamService.pump() / StreamGateway.serve() instead of a "
            "synchronous run"
        )

    async def arows(self):
        self.alphabet  # bound check
        self._require_client()  # fail fast when no feed is bound
        # Every fresh generator starts in drain mode: a previous pump
        # slice may have fetched a batch and been torn down before
        # emitting all of it, stranding the tail in the PEL past the
        # group cursor.  Draining from the last *emitted* id re-delivers
        # exactly that tail (and, on a resumed source, everything since
        # the last checkpoint) before new '>' reads continue.
        self._draining = True
        #: The one overlapped fetch in flight, or None.  Issued after a
        #: steady-state batch lands so the next read's round trip runs
        #: while the pipeline chews the current rows; settled in the
        #: ``finally`` because the client connection is not thread-safe
        #: — nothing else (a drain read, a checkpoint ack, a fresh
        #: generator) may touch it while the fetch thread holds it.
        prefetched = None
        try:
            while True:
                if self._pushback:
                    row = self._pushback.pop()
                    if self._pushback_ids:
                        self._unacked.append(self._pushback_ids.pop())
                    self._offset += 1
                    yield row
                    continue
                if self._finished:
                    return
                if prefetched is not None:
                    task, prefetched = prefetched, None
                    batch = await task
                else:
                    batch = await asyncio.to_thread(self._fetch)
                if (
                    batch
                    and not self._draining
                    and EOS_FIELD not in batch[-1][1]
                ):
                    prefetched = asyncio.ensure_future(
                        asyncio.to_thread(self._fetch)
                    )
                if not batch:
                    continue
                client = self._client
                for entry_id, fields in batch:
                    if EOS_FIELD in fields:
                        # Deliberately left un-acked (and out of the
                        # un-acked ledger — it has no window, so it must
                        # not pair with an unemit): the pending eos is
                        # how a resumed consumer learns the stream
                        # already ended (see EOS_FIELD).
                        self._last_entry_id = entry_id
                        self._finished = True
                        break
                    if "rows" in fields:
                        # Chunked entry: several windows, one decode.
                        try:
                            base, block = _decode_chunk(
                                fields, self.alphabet
                            )
                        except (ValueError, TypeError) as error:
                            raise BrokerError(
                                f"undecodable chunked entry {entry_id} "
                                f"on stream {self.stream!r}: {error}; "
                                "dropping a chunk would shift every "
                                "later window against its base index, "
                                "so it cannot be dead-lettered"
                            ) from error
                        total = block.shape[0]
                        # Rows a committed checkpoint already captured
                        # (this is a redelivery) are skipped, not
                        # re-emitted — the resumed offset is the
                        # authority on what was released.
                        already = min(max(self._offset - base, 0), total)
                        if already >= total:
                            # Ack was lost after a full emit; nothing
                            # left to extract.  It stays pending (only
                            # a checkpoint may ack) and every future
                            # drain re-skips it, like the eos marker.
                            self._last_entry_id = entry_id
                            continue
                        for index in range(already, total):
                            self._unacked.append(
                                (entry_id, index == total - 1)
                            )
                            self._offset += 1
                            yield block[index]
                        # The drain cursor advances only once the whole
                        # chunk is out: a teardown mid-chunk must
                        # re-deliver it (the skip above keeps that
                        # row-exact).
                        self._last_entry_id = entry_id
                        continue
                    try:
                        row = self._row_cache.decode(fields, self.alphabet)
                    except (ValueError, TypeError) as error:
                        client.dead_letter(
                            self.stream,
                            self.group,
                            entry_id,
                            fields,
                            reason=str(error),
                        )
                        default_registry().counter(
                            "repro_broker_dead_letter_total",
                            "Poison broker entries moved to the dead "
                            "stream.",
                        ).inc()
                        self._last_entry_id = entry_id
                        continue
                    self._unacked.append((entry_id, True))
                    self._last_entry_id = entry_id
                    self._offset += 1
                    yield row
                self._gauge_unacked()
                if self._finished:
                    return
        finally:
            if prefetched is not None:
                # Entries the settled read delivered but nobody emitted
                # are un-acked pending entries — the next generator's
                # drain replays them (the at-least-once contract).
                try:
                    await prefetched
                except BaseException:
                    pass


@register_sink(
    "broker",
    keys=(SpecKey("url"), SpecKey("stream"), SpecKey("eos", convert=int)),
)
class BrokerSink(StreamSink):
    """Publish released windows to a broker stream
    (``broker:url=redis://host:port,stream=released``).

    Each window becomes one entry with ``window`` (index), ``row``
    (0/1 characters — the form :class:`BrokerSource` reads back, so a
    sanitized stream can be served again) and ``answers`` (JSON).
    ``eos=1`` appends the end-of-stream control entry on close, so a
    downstream consumer group knows the finite run ended.
    """

    def __init__(
        self,
        url: Optional[str] = None,
        *,
        stream: str = "released",
        eos: int = 0,
        retry: Optional[RetryPolicy] = None,
    ):
        super().__init__()
        self.url = url
        self.stream = stream
        self.eos = bool(eos)
        self._retry = retry
        self._client: Optional[BrokerClient] = None

    def _require_client(self) -> BrokerClient:
        if self._client is None:
            if self.url is None:
                raise ValueError(
                    "the 'broker' sink has no feed bound; give the "
                    "spec a url= (broker:url=redis://host:port,...)"
                )
            self._client = BrokerClient(self.url, retry=self._retry)
        return self._client

    def _write(self, index, row, answers, truth) -> None:
        self._require_client().xadd(
            self.stream,
            {
                "window": str(int(index)),
                "row": _encode_row(row),
                "answers": json.dumps(
                    {name: bool(value) for name, value in answers.items()},
                    sort_keys=True,
                ),
            },
        )

    def close(self) -> None:
        if self._client is not None:
            if self.eos:
                self._client.xadd(self.stream, {EOS_FIELD: "1"})
                self.eos = False  # close() is idempotent
            self._client.close()
            self._client = None
