"""Resilient broker client: retry, reconnect, dead-letter.

:class:`RetryPolicy` is the fault budget as data — a capped
exponential backoff schedule with deterministic seeded jitter and an
optional absolute deadline.  Its :meth:`~RetryPolicy.run` loop takes
injectable ``sleep`` and ``clock`` callables so tests can pin the
exact schedule under a fake clock; the production path just uses
``time.sleep`` / ``time.monotonic``.  Three promises, each pinned by
``tests/test_broker_client.py``:

- the un-jittered schedule is exactly
  ``min(max_delay, base_delay * multiplier**attempt)``;
- jitter is drawn from ``random.Random(seed)`` fresh per call, so two
  runs of the same policy sleep identically (bit-for-bit repeatable
  fault recovery — the repo-wide determinism contract extends to
  failure handling);
- no sleep ever crosses the deadline: delays are clamped to the time
  remaining, and when the budget or the deadline is exhausted
  :class:`RetryBudgetExceeded` is raised *from* the last transport
  error, preserving the causal chain.

:class:`BrokerClient` wraps one :class:`~repro.broker.resp.RespConnection`
with that policy: every command retries transport failures (the
connection reconnects lazily on the next attempt), ``reconnects`` /
``retries`` counters expose recovery activity to the connectors'
telemetry, and :meth:`~BrokerClient.dead_letter` implements the
poison-entry policy — an entry that cannot be decoded is copied to
``<stream>:dead`` with a reason and acked, so one malformed producer
cannot wedge a consumer group forever.

Server-side error replies (:class:`~repro.broker.resp.RespError`) are
never retried — a healthy connection refusing a command will refuse
it again.
"""

from __future__ import annotations

import random
import time

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.broker.resp import (
    BrokerConnectionError,
    RespConnection,
    RespError,
    parse_url,
)

__all__ = ["BrokerClient", "RetryBudgetExceeded", "RetryPolicy"]


class RetryBudgetExceeded(BrokerConnectionError):
    """Every retry failed (budget spent or deadline passed).

    Always raised ``from`` the last underlying error, so the causal
    chain ends at the transport failure that actually occurred.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    ``attempts`` is the total number of tries (first call included);
    the sleep before retry ``i`` (0-indexed) is
    ``min(max_delay, base_delay * multiplier**i)`` stretched by a
    jitter factor in ``[1, 1 + jitter)`` drawn from
    ``random.Random(seed)``.
    """

    attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay(self, attempt: int) -> float:
        """The un-jittered backoff before retry ``attempt`` (0-based)."""
        return min(self.max_delay, self.base_delay * self.multiplier**attempt)

    def schedule(self) -> List[float]:
        """Jittered sleep durations for one full run, deterministic."""
        rng = random.Random(self.seed)
        return [
            self.delay(attempt) * (1.0 + self.jitter * rng.random())
            for attempt in range(self.attempts - 1)
        ]

    def run(
        self,
        call: Callable[[], object],
        *,
        retryable: Tuple[type, ...] = (BrokerConnectionError,),
        deadline: Optional[float] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        on_retry: Optional[Callable[[int, float, BaseException], None]] = None,
    ):
        """Invoke ``call`` under this policy and return its result.

        ``deadline`` is an absolute ``clock()`` value; sleeps are
        clamped so none ends past it, and once it is reached no
        further attempt is made.  ``on_retry(attempt, slept, error)``
        fires before each backoff sleep (telemetry hook).
        """
        rng = random.Random(self.seed)
        last_error: Optional[BaseException] = None
        for attempt in range(self.attempts):
            try:
                return call()
            except retryable as error:
                last_error = error
            if attempt == self.attempts - 1:
                break
            duration = (
                self.delay(attempt) * (1.0 + self.jitter * rng.random())
            )
            if deadline is not None:
                remaining = deadline - clock()
                if remaining <= 0:
                    raise RetryBudgetExceeded(
                        f"deadline reached after {attempt + 1} attempt(s)"
                    ) from last_error
                duration = min(duration, remaining)
            if on_retry is not None:
                on_retry(attempt, duration, last_error)
            if duration > 0:
                sleep(duration)
        raise RetryBudgetExceeded(
            f"gave up after {self.attempts} attempt(s)"
        ) from last_error


def _fields_to_dict(flat: Sequence[bytes]) -> Dict[str, str]:
    if len(flat) % 2:
        raise ValueError("odd field/value list in stream entry")
    return {
        flat[i].decode("utf-8"): flat[i + 1].decode("utf-8")
        for i in range(0, len(flat), 2)
    }


#: One delivered stream entry: ``(entry_id, fields)``.
Entry = Tuple[str, Dict[str, str]]


class BrokerClient:
    """High-level Redis-Streams operations over a resilient connection.

    Transport failures close the connection and are retried under the
    :class:`RetryPolicy` (the next attempt reconnects lazily); the
    ``reconnects`` counter increments once per observed connection
    failure, so callers can detect that a read may have been processed
    server-side without a reply reaching us — the at-least-once hazard
    handled by the connector's drain path.  Not thread-safe.
    """

    def __init__(
        self,
        url: str,
        *,
        connect_timeout: float = 2.0,
        read_timeout: float = 5.0,
        retry: Optional[RetryPolicy] = None,
        on_retry: Optional[Callable[[int, float, BaseException], None]] = None,
    ):
        self.url = url
        host, port = parse_url(url)
        self._connection = RespConnection(
            host,
            port,
            connect_timeout=connect_timeout,
            read_timeout=read_timeout,
        )
        self.retry_policy = retry if retry is not None else RetryPolicy()
        self._on_retry = on_retry
        self.reconnects = 0
        self.retries = 0
        self.dead_letters = 0

    # -- plumbing ------------------------------------------------------

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "BrokerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def call(self, *parts, timeout: Optional[float] = None):
        """Execute one command with retry on transport failure."""

        def attempt():
            try:
                return self._connection.execute(*parts, timeout=timeout)
            except BrokerConnectionError:
                self.reconnects += 1
                raise

        def note_retry(attempt_index, duration, error):
            self.retries += 1
            if self._on_retry is not None:
                self._on_retry(attempt_index, duration, error)

        return self.retry_policy.run(attempt, on_retry=note_retry)

    # -- commands ------------------------------------------------------

    def ping(self) -> bool:
        return self.call("PING") == "PONG"

    def xadd(
        self,
        stream: str,
        fields: Mapping[str, str],
        *,
        entry_id: str = "*",
    ) -> str:
        if not fields:
            raise ValueError("XADD requires at least one field")
        parts: List = ["XADD", stream, entry_id]
        for key, value in fields.items():
            parts.append(key)
            parts.append(value)
        return self.call(*parts).decode("ascii")

    def xlen(self, stream: str) -> int:
        return int(self.call("XLEN", stream))

    def xrange(
        self,
        stream: str,
        *,
        start: str = "-",
        end: str = "+",
        count: Optional[int] = None,
    ) -> List[Entry]:
        parts: List = ["XRANGE", stream, start, end]
        if count is not None:
            parts += ["COUNT", count]
        return [
            (entry_id.decode("ascii"), _fields_to_dict(flat))
            for entry_id, flat in self.call(*parts)
        ]

    def xgroup_create(
        self,
        stream: str,
        group: str,
        *,
        start: str = "0",
        mkstream: bool = True,
    ) -> bool:
        """Create a consumer group; ``False`` if it already existed."""
        parts: List = ["XGROUP", "CREATE", stream, group, start]
        if mkstream:
            parts.append("MKSTREAM")
        try:
            self.call(*parts)
        except RespError as error:
            if error.code == "BUSYGROUP":
                return False
            raise
        return True

    def xreadgroup(
        self,
        stream: str,
        group: str,
        consumer: str,
        *,
        last_id: str = ">",
        count: Optional[int] = None,
        block_ms: Optional[int] = None,
    ) -> Optional[List[Entry]]:
        """Read entries for ``consumer``; ``None`` means no data.

        With ``last_id=">"`` the server delivers new entries and
        records them pending; with an explicit id it re-delivers this
        consumer's own pending entries after that id — there an empty
        list (PEL drained) is distinct from ``None``.
        """
        parts: List = ["XREADGROUP", "GROUP", group, consumer]
        if count is not None:
            parts += ["COUNT", count]
        timeout = None
        if block_ms is not None:
            parts += ["BLOCK", block_ms]
            # The socket read must outlive the server-side block.
            timeout = block_ms / 1000.0 + self._connection.read_timeout
        parts += ["STREAMS", stream, last_id]
        reply = self.call(*parts, timeout=timeout)
        if reply is None:
            return None
        for name, entries in reply:
            if name.decode("utf-8") == stream:
                return [
                    (entry_id.decode("ascii"), _fields_to_dict(flat))
                    for entry_id, flat in entries
                ]
        return None

    def xack(self, stream: str, group: str, ids: Sequence[str]) -> int:
        if not ids:
            return 0
        return int(self.call("XACK", stream, group, *ids))

    def xpending(self, stream: str, group: str) -> int:
        """Number of pending (delivered, un-acked) entries."""
        reply = self.call("XPENDING", stream, group)
        return int(reply[0])

    def xautoclaim(
        self,
        stream: str,
        group: str,
        consumer: str,
        *,
        min_idle_ms: int = 0,
        start: str = "0-0",
        count: Optional[int] = None,
    ) -> List[Entry]:
        parts: List = [
            "XAUTOCLAIM", stream, group, consumer, min_idle_ms, start,
        ]
        if count is not None:
            parts += ["COUNT", count]
        _cursor, entries = self.call(*parts)
        return [
            (entry_id.decode("ascii"), _fields_to_dict(flat))
            for entry_id, flat in entries
        ]

    # -- dead-letter policy -------------------------------------------

    def dead_letter(
        self,
        stream: str,
        group: str,
        entry_id: str,
        fields: Mapping[str, str],
        *,
        reason: str,
    ) -> str:
        """Move a poison entry to ``<stream>:dead`` and ack it.

        The dead-letter copy carries the original fields plus
        ``source_id`` and ``reason``, so operators can inspect and
        re-inject; the ack keeps the consumer group moving.
        """
        record = dict(fields)
        record["source_id"] = entry_id
        record["reason"] = reason
        dead_id = self.xadd(f"{stream}:dead", record)
        self.xack(stream, group, [entry_id])
        self.dead_letters += 1
        return dead_id
