"""In-process Redis-Streams broker for CI: real sockets, fake state.

:class:`FakeRedisServer` binds a localhost TCP port, accepts
connections on a background thread, and speaks enough RESP2 +
Redis-Streams to drive the real client code path end to end — the
same bytes cross a real socket, so serialization bugs, partial reads
and connection teardown behave exactly as against a live broker,
with zero external services.

Supported commands: ``PING``, ``XADD``, ``XLEN``, ``XRANGE``,
``XREAD``, ``XGROUP CREATE``, ``XREADGROUP``, ``XACK``, ``XPENDING``,
``XAUTOCLAIM``.  Semantics follow Redis where the connectors depend
on them:

- entry ids are ``<n>-0`` with ``n`` counting up from 1 per stream —
  deterministic, so tests can assert exact ids;
- consumer groups track a last-delivered cursor plus a pending-entry
  list (PEL); ``XREADGROUP`` with ``>`` delivers new entries and
  records them pending, with an explicit id it *re*-delivers that
  consumer's own pending entries after the id (the crash-recovery
  read);
- ``XACK`` drops ids from the PEL; ``XPENDING`` summarizes it;
  ``XAUTOCLAIM`` reassigns another consumer's pending entries.

Fault injection — the point of the fake — is armed per command with
:meth:`FakeRedisServer.inject_fault`:

- ``"reset"``: close the connection *before* processing (the server
  never saw the command);
- ``"drop"``: process the command, then close *before* replying (for
  ``XREADGROUP >`` this strands entries in the PEL that the client
  never received — the at-least-once hazard the connector's drain
  path exists for);
- ``"hang"``: go silent for ``delay`` seconds, then close (exercises
  client read timeouts).
"""

from __future__ import annotations

import bisect
import socket
import threading
import time

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["FakeRedisServer"]


class _Simple(str):
    """Marker: encode as a RESP simple string (``+...``)."""


class _ErrorReply(str):
    """Marker: encode as a RESP error reply (``-...``)."""


class _CloseConnection(Exception):
    """Raised by fault hooks to tear the connection down."""

    def __init__(self, *, after_reply: bool = False):
        super().__init__("fault-injected close")
        self.after_reply = after_reply


def _encode(value) -> bytes:
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _encode_into(out: bytearray, value) -> None:
    # Appends into one shared buffer: a big XREADGROUP reply is
    # thousands of nested nodes, and building intermediate bytes per
    # node (then joining) would allocate quadratically on the reply's
    # hot path.
    if isinstance(value, _Simple):
        out += b"+%s\r\n" % value.encode("utf-8")
    elif isinstance(value, _ErrorReply):
        out += b"-%s\r\n" % value.encode("utf-8")
    elif value is None:
        out += b"*-1\r\n"
    elif isinstance(value, bool):
        raise TypeError("no boolean replies in RESP2")
    elif isinstance(value, int):
        out += b":%d\r\n" % value
    elif isinstance(value, (str, bytes)):
        if isinstance(value, str):
            value = value.encode("utf-8")
        out += b"$%d\r\n" % len(value)
        out += value
        out += b"\r\n"
    elif isinstance(value, (list, tuple)):
        out += b"*%d\r\n" % len(value)
        for item in value:
            _encode_into(out, item)
    else:
        raise TypeError(f"cannot encode {type(value).__name__}")


def _parse_id(text: str, *, default_seq: int = 0) -> Tuple[int, int]:
    ms, sep, seq = text.partition("-")
    return int(ms), int(seq) if sep else default_seq


def _format_id(entry_id: Tuple[int, int]) -> str:
    return f"{entry_id[0]}-{entry_id[1]}"


@dataclass
class _Pending:
    consumer: str
    delivery_count: int = 1


@dataclass
class _Group:
    last_delivered: Tuple[int, int]
    #: entry id → pending record; dict order is id order because
    #: entries enter the PEL in delivery order and re-delivery never
    #: re-inserts.
    pending: Dict[Tuple[int, int], _Pending] = field(default_factory=dict)


@dataclass
class _Stream:
    entries: List[Tuple[Tuple[int, int], List[bytes]]] = field(
        default_factory=list
    )
    next_ms: int = 1
    groups: Dict[str, _Group] = field(default_factory=dict)

    @property
    def last_id(self) -> Tuple[int, int]:
        return self.entries[-1][0] if self.entries else (0, 0)

    def entries_after(
        self, cursor: Tuple[int, int], count: Optional[int]
    ) -> List[Tuple[Tuple[int, int], List[bytes]]]:
        # Entries are append-ordered by id, so the cursor position is a
        # bisection, not a scan — consumers near the stream's tail pay
        # for what they fetch, not for the whole history.
        start = bisect.bisect_right(
            self.entries, cursor, key=lambda item: item[0]
        )
        end = len(self.entries)
        if count is not None:
            end = min(end, start + count)
        return self.entries[start:end]


@dataclass
class _Fault:
    mode: str  # "reset" | "drop" | "hang"
    command: Optional[str]  # uppercase command name, or None = any
    count: int
    delay: float


class FakeRedisServer:
    """A localhost RESP2 streams broker with fault injection.

    Use as a context manager or call :meth:`start` / :meth:`stop`;
    ``port`` is chosen by the OS (pass ``port=0``), ``url`` is the
    ``redis://`` address clients connect to.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self._host = host
        self._requested_port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._running = False
        self._lock = threading.Lock()
        self._data_ready = threading.Condition(self._lock)
        self._streams: Dict[str, _Stream] = {}
        self._faults: List[_Fault] = []
        self._connections: List[socket.socket] = []
        #: (mode, command) tuples, appended as each armed fault fires.
        self.faults_fired: List[Tuple[str, str]] = []
        self.commands_served = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        if self._listener is None:
            raise RuntimeError("server is not running")
        return self._listener.getsockname()[1]

    @property
    def url(self) -> str:
        return f"redis://{self._host}:{self.port}"

    def start(self) -> "FakeRedisServer":
        if self._running:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._requested_port))
        listener.listen(32)
        self._listener = listener
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fake-redis-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        if self._listener is not None:
            # shutdown() before close(): close() alone does not wake a
            # thread already blocked in accept() on Linux, and the
            # accept loop would sit out the whole join timeout.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections, self._connections = self._connections, []
            self._data_ready.notify_all()
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        self._listener = None

    def __enter__(self) -> "FakeRedisServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- fault injection ----------------------------------------------

    def inject_fault(
        self,
        mode: str,
        *,
        command: Optional[str] = None,
        count: int = 1,
        delay: float = 0.2,
    ) -> None:
        """Arm ``count`` connection faults, fired on matching commands.

        ``mode`` is ``"reset"`` (close before processing), ``"drop"``
        (process, close before replying) or ``"hang"`` (silence for
        ``delay`` seconds, then close).  ``command`` limits the fault
        to one command name (case-insensitive); ``None`` fires on the
        next command of any kind.
        """
        if mode not in ("reset", "drop", "hang"):
            raise ValueError(f"unknown fault mode {mode!r}")
        if count < 1:
            raise ValueError("fault count must be >= 1")
        with self._lock:
            self._faults.append(
                _Fault(mode, command.upper() if command else None,
                       count, float(delay))
            )

    def _match_fault(self, command: str) -> Optional[_Fault]:
        with self._lock:
            for fault in self._faults:
                if fault.command is None or fault.command == command:
                    fault.count -= 1
                    if fault.count == 0:
                        self._faults.remove(fault)
                    self.faults_fired.append((fault.mode, command))
                    return fault
        return None

    # -- introspection (tests) ----------------------------------------

    def stream_length(self, stream: str) -> int:
        with self._lock:
            record = self._streams.get(stream)
            return len(record.entries) if record else 0

    def pending_count(self, stream: str, group: str) -> int:
        with self._lock:
            record = self._streams.get(stream)
            if record is None or group not in record.groups:
                return 0
            return len(record.groups[group].pending)

    # -- socket plumbing ----------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                if not self._running:
                    conn.close()
                    return
                self._connections.append(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="fake-redis-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        buffer = bytearray()
        try:
            while self._running:
                command = self._read_command(conn, buffer)
                if command is None:
                    return
                try:
                    reply = self._dispatch(command)
                except _CloseConnection as fault:
                    if fault.after_reply:
                        pass  # reply suppressed: processed, not sent
                    return
                conn.sendall(_encode(reply))
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                if conn in self._connections:
                    self._connections.remove(conn)

    def _read_command(
        self, conn: socket.socket, buffer: bytearray
    ) -> Optional[List[bytes]]:
        def fill() -> bool:
            try:
                data = conn.recv(65536)
            except OSError:
                return False
            if not data:
                return False
            buffer.extend(data)
            return True

        def read_line() -> Optional[bytes]:
            while True:
                index = buffer.find(b"\r\n")
                if index >= 0:
                    line = bytes(buffer[:index])
                    del buffer[: index + 2]
                    return line
                if not fill():
                    return None

        header = read_line()
        if header is None or not header.startswith(b"*"):
            return None
        parts: List[bytes] = []
        for _ in range(int(header[1:])):
            length_line = read_line()
            if length_line is None or not length_line.startswith(b"$"):
                return None
            length = int(length_line[1:])
            while len(buffer) < length + 2:
                if not fill():
                    return None
            parts.append(bytes(buffer[:length]))
            del buffer[: length + 2]
        return parts

    # -- command dispatch ---------------------------------------------

    def _dispatch(self, parts: List[bytes]):
        name = parts[0].decode("utf-8", "replace").upper()
        args = [p.decode("utf-8") for p in parts[1:]]
        fault = self._match_fault(name)
        if fault is not None:
            if fault.mode == "reset":
                raise _CloseConnection()
            if fault.mode == "hang":
                time.sleep(fault.delay)
                raise _CloseConnection()
            # "drop": process below, then close without replying.
        self.commands_served += 1
        handler = getattr(self, f"_cmd_{name.lower()}", None)
        if handler is None:
            reply = _ErrorReply(f"ERR unknown command '{name}'")
        else:
            try:
                reply = handler(args)
            except (ValueError, IndexError):
                reply = _ErrorReply(f"ERR malformed {name} arguments")
        if fault is not None and fault.mode == "drop":
            raise _CloseConnection(after_reply=True)
        return reply

    def _stream_record(self, stream: str, *, create: bool) -> _Stream:
        record = self._streams.get(stream)
        if record is None:
            if not create:
                raise KeyError(stream)
            record = self._streams[stream] = _Stream()
        return record

    # -- commands ------------------------------------------------------

    def _cmd_ping(self, args):
        return _Simple(args[0]) if args else _Simple("PONG")

    def _cmd_xadd(self, args):
        stream, id_text = args[0], args[1]
        fields = args[2:]
        if not fields or len(fields) % 2:
            return _ErrorReply(
                "ERR wrong number of arguments for 'xadd' command"
            )
        with self._lock:
            record = self._stream_record(stream, create=True)
            if id_text == "*":
                entry_id = (record.next_ms, 0)
            else:
                entry_id = _parse_id(id_text)
                if entry_id <= record.last_id:
                    return _ErrorReply(
                        "ERR The ID specified in XADD is equal or smaller "
                        "than the target stream top item"
                    )
            record.next_ms = entry_id[0] + 1
            record.entries.append(
                (entry_id, [part.encode("utf-8") for part in fields])
            )
            self._data_ready.notify_all()
        return _format_id(entry_id).encode("ascii")

    def _cmd_xlen(self, args):
        with self._lock:
            record = self._streams.get(args[0])
            return len(record.entries) if record else 0

    def _cmd_xrange(self, args):
        stream, start, end = args[0], args[1], args[2]
        count = None
        if len(args) >= 5 and args[3].upper() == "COUNT":
            count = int(args[4])
        low = (0, 0) if start == "-" else _parse_id(start)
        high = (
            (2**63 - 1, 2**63 - 1) if end == "+"
            else _parse_id(end, default_seq=2**63 - 1)
        )
        with self._lock:
            record = self._streams.get(stream)
            if record is None:
                return []
            found = [
                item for item in record.entries if low <= item[0] <= high
            ]
        if count is not None:
            found = found[:count]
        return [[_format_id(i), list(fields)] for i, fields in found]

    def _cmd_xgroup(self, args):
        if args[0].upper() != "CREATE":
            return _ErrorReply("ERR unsupported XGROUP subcommand")
        stream, group, start = args[1], args[2], args[3]
        mkstream = any(a.upper() == "MKSTREAM" for a in args[4:])
        with self._lock:
            record = self._streams.get(stream)
            if record is None:
                if not mkstream:
                    return _ErrorReply(
                        "ERR The XGROUP subcommand requires the key to "
                        "exist. Note that for CREATE you may want to use "
                        "the MKSTREAM option to create an empty stream "
                        "automatically."
                    )
                record = self._streams[stream] = _Stream()
            if group in record.groups:
                return _ErrorReply(
                    "BUSYGROUP Consumer Group name already exists"
                )
            cursor = record.last_id if start == "$" else _parse_id(start)
            record.groups[group] = _Group(last_delivered=cursor)
        return _Simple("OK")

    @staticmethod
    def _read_options(args):
        """Parse ``[COUNT n] [BLOCK ms] ... STREAMS s1 .. id1 ..``."""
        count = block_ms = None
        index = 0
        while index < len(args):
            word = args[index].upper()
            if word == "COUNT":
                count = int(args[index + 1])
                index += 2
            elif word == "BLOCK":
                block_ms = int(args[index + 1])
                index += 2
            elif word == "NOACK":
                index += 1
            elif word == "STREAMS":
                tail = args[index + 1 :]
                if len(tail) % 2:
                    raise ValueError("unbalanced STREAMS arguments")
                half = len(tail) // 2
                return count, block_ms, tail[:half], tail[half:]
            else:
                raise ValueError(f"unexpected token {word}")
        raise ValueError("missing STREAMS clause")

    def _cmd_xread(self, args):
        count, block_ms, streams, ids = self._read_options(args)

        def collect():
            results = []
            for stream, id_text in zip(streams, ids):
                record = self._streams.get(stream)
                if record is None:
                    continue
                cursor = (
                    record.last_id if id_text == "$"
                    else _parse_id(id_text)
                )
                found = record.entries_after(cursor, count)
                if found:
                    results.append([
                        stream,
                        [[_format_id(i), f] for i, f in found],
                    ])
            return results or None

        with self._lock:
            results = collect()
            if results is None and block_ms is not None:
                deadline = time.monotonic() + block_ms / 1000.0
                while results is None and self._running:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._data_ready.wait(remaining)
                    results = collect()
            return results

    def _cmd_xreadgroup(self, args):
        if args[0].upper() != "GROUP":
            return _ErrorReply("ERR syntax error")
        group_name, consumer = args[1], args[2]
        count, block_ms, streams, ids = self._read_options(args[3:])

        def deliver():
            results = []
            for stream, id_text in zip(streams, ids):
                record = self._streams.get(stream)
                if record is None or group_name not in record.groups:
                    raise _NoGroup(stream, group_name)
                group = record.groups[group_name]
                if id_text == ">":
                    found = record.entries_after(
                        group.last_delivered, count
                    )
                    for entry_id, _ in found:
                        group.last_delivered = entry_id
                        group.pending[entry_id] = _Pending(consumer)
                    if found:
                        results.append([
                            stream,
                            [[_format_id(i), f] for i, f in found],
                        ])
                else:
                    # Re-delivery read: this consumer's own pending
                    # entries strictly after the requested id.  Always
                    # reported, even when empty — an empty PEL is the
                    # "drain complete" signal, not "no data yet".
                    cursor = _parse_id(id_text)
                    by_id = dict(record.entries)
                    own = [
                        entry_id
                        for entry_id, pend in group.pending.items()
                        if pend.consumer == consumer and entry_id > cursor
                    ]
                    own.sort()
                    if count is not None:
                        own = own[:count]
                    for entry_id in own:
                        group.pending[entry_id].delivery_count += 1
                    results.append([
                        stream,
                        [
                            [_format_id(i), list(by_id.get(i, []))]
                            for i in own
                        ],
                    ])
            return results or None

        with self._lock:
            try:
                results = deliver()
                blocking_allowed = all(i == ">" for i in ids)
                if (
                    results is None
                    and block_ms is not None
                    and blocking_allowed
                ):
                    deadline = time.monotonic() + block_ms / 1000.0
                    while results is None and self._running:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._data_ready.wait(remaining)
                        results = deliver()
            except _NoGroup as error:
                return _ErrorReply(
                    f"NOGROUP No such consumer group '{error.group}' for "
                    f"key name '{error.stream}'"
                )
            return results

    def _cmd_xack(self, args):
        stream, group_name = args[0], args[1]
        acked = 0
        with self._lock:
            record = self._streams.get(stream)
            if record is None or group_name not in record.groups:
                return 0
            pending = record.groups[group_name].pending
            for id_text in args[2:]:
                if pending.pop(_parse_id(id_text), None) is not None:
                    acked += 1
        return acked

    def _cmd_xpending(self, args):
        stream, group_name = args[0], args[1]
        with self._lock:
            record = self._streams.get(stream)
            if record is None or group_name not in record.groups:
                return _ErrorReply(
                    f"NOGROUP No such consumer group '{group_name}' for "
                    f"key name '{stream}'"
                )
            pending = record.groups[group_name].pending
            if not pending:
                return [0, None, None, None]
            ids = sorted(pending)
            per_consumer: Dict[str, int] = {}
            for pend in pending.values():
                per_consumer[pend.consumer] = (
                    per_consumer.get(pend.consumer, 0) + 1
                )
            return [
                len(ids),
                _format_id(ids[0]),
                _format_id(ids[-1]),
                [
                    [name, str(total)]
                    for name, total in sorted(per_consumer.items())
                ],
            ]

    def _cmd_xautoclaim(self, args):
        stream, group_name, consumer = args[0], args[1], args[2]
        # min-idle-time (args[3]) is accepted but not modelled: the
        # fake has no per-entry clocks, so every pending entry is
        # claimable.  start id at args[4].
        start = (
            (0, 0) if args[4] in ("-", "0", "0-0")
            else _parse_id(args[4])
        )
        count = None
        if len(args) >= 7 and args[5].upper() == "COUNT":
            count = int(args[6])
        with self._lock:
            record = self._streams.get(stream)
            if record is None or group_name not in record.groups:
                return _ErrorReply(
                    f"NOGROUP No such consumer group '{group_name}' for "
                    f"key name '{stream}'"
                )
            group = record.groups[group_name]
            claimable = sorted(
                entry_id
                for entry_id in group.pending
                if entry_id >= start
            )
            if count is not None:
                claimable = claimable[:count]
            by_id = dict(record.entries)
            for entry_id in claimable:
                pend = group.pending[entry_id]
                pend.consumer = consumer
                pend.delivery_count += 1
            return [
                "0-0",
                [
                    [_format_id(i), list(by_id.get(i, []))]
                    for i in claimable
                ],
            ]


class _NoGroup(Exception):
    def __init__(self, stream: str, group: str):
        super().__init__(f"no group {group} on {stream}")
        self.stream = stream
        self.group = group
