"""Merging event streams.

Section III-A: "When multiple data streams are given, we merge their
corresponding event streams into one single event stream.  Events from
different event streams with the same timestamps can be ordered
arbitrarily" — we make that arbitrary order deterministic (stable by
input stream position) so runs are reproducible.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

from repro.streams.events import Event
from repro.streams.stream import EventStream


def merge_event_streams(
    streams: Sequence[EventStream], *, name: str = "merged"
) -> EventStream:
    """Merge several temporally ordered event streams into one.

    The merge is a stable k-way merge on timestamps: ties are broken by
    the position of the source stream in ``streams`` and then by the
    event's position within its stream, so equal-timestamp events from
    the same stream keep their relative order.
    """
    if not streams:
        raise ValueError("at least one stream is required")
    heap: List = []
    iterators = [iter(stream) for stream in streams]
    for stream_pos, iterator in enumerate(iterators):
        event = next(iterator, None)
        if event is not None:
            heapq.heappush(heap, (event.timestamp, stream_pos, 0, id(event), event))
    merged: List[Event] = []
    counters = [1] * len(iterators)
    while heap:
        _ts, stream_pos, _event_pos, _tie, event = heapq.heappop(heap)
        merged.append(event)
        nxt = next(iterators[stream_pos], None)
        if nxt is not None:
            heapq.heappush(
                heap,
                (
                    nxt.timestamp,
                    stream_pos,
                    counters[stream_pos],
                    id(nxt),
                    nxt,
                ),
            )
            counters[stream_pos] += 1
    return EventStream(merged, name=name)


def interleave_round_robin(
    streams: Sequence[EventStream], *, name: str = "interleaved"
) -> EventStream:
    """Merge streams that share identical timestamp grids, round-robin.

    A convenience for synthetic workloads where several subjects emit on
    the same clock; equivalent to :func:`merge_event_streams` but makes
    the tie-breaking policy (subject order per tick) explicit.
    """
    return merge_event_streams(streams, name=name)


def partition_by_source(stream: EventStream) -> dict:
    """Split a merged stream back into per-source streams.

    Events without a source are grouped under ``None``.  Inverse (up to
    tie order) of :func:`merge_event_streams` when sources are distinct.
    """
    groups: dict = {}
    for event in stream:
        groups.setdefault(event.source, []).append(event)
    return {
        source: EventStream(events, name=str(source))
        for source, events in groups.items()
    }
