"""Data streams and event streams.

Streams are conceptually infinite; concretely they wrap any iterable and
support lazy iteration, bounded materialization (:meth:`DataStream.take`)
and replay (when built from a sequence).  :class:`EventStream` enforces
the temporal-order invariant of Section III-A: ``e_{i+1}`` is extracted
after ``e_i`` (non-decreasing timestamps).
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.streams.events import DataTuple, Event


class DataStream:
    """A (possibly infinite) stream of :class:`DataTuple`.

    Built from a sequence (replayable: each iteration restarts) or from a
    factory returning fresh iterators (for synthetic/infinite sources).
    """

    def __init__(
        self,
        tuples: Optional[Iterable[DataTuple]] = None,
        *,
        factory: Optional[Callable[[], Iterator[DataTuple]]] = None,
        name: Optional[str] = None,
    ):
        if (tuples is None) == (factory is None):
            raise ValueError("provide exactly one of tuples= or factory=")
        self.name = name
        if factory is not None:
            self._factory = factory
            self._materialized: Optional[List[DataTuple]] = None
        else:
            self._materialized = list(tuples)  # type: ignore[arg-type]
            self._factory = None

    def __iter__(self) -> Iterator[DataTuple]:
        if self._materialized is not None:
            return iter(self._materialized)
        assert self._factory is not None
        return self._factory()

    def __len__(self) -> int:
        if self._materialized is None:
            raise TypeError(
                "length of a factory-backed (potentially infinite) stream "
                "is undefined; use take()"
            )
        return len(self._materialized)

    def take(self, count: int) -> List[DataTuple]:
        """Materialize the first ``count`` tuples."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return list(itertools.islice(iter(self), count))

    @classmethod
    def from_records(
        cls,
        records: Iterable[dict],
        *,
        timestamp_key: str = "timestamp",
        source: Optional[str] = None,
        name: Optional[str] = None,
    ) -> "DataStream":
        """Build a replayable stream from dict records.

        ``timestamp_key`` names the field holding the timestamp; all other
        fields become the tuple payload.
        """
        tuples = []
        for record in records:
            if timestamp_key not in record:
                raise KeyError(
                    f"record {record!r} is missing timestamp key {timestamp_key!r}"
                )
            payload = {k: v for k, v in record.items() if k != timestamp_key}
            tuples.append(
                DataTuple(record[timestamp_key], values=payload, source=source)
            )
        return cls(tuples, name=name)


class EventStream:
    """A finite, materialized event stream ``S^E`` in temporal order.

    The constructor verifies non-decreasing timestamps (events from
    different sources with equal timestamps may appear in any order —
    the paper notes their relative order is immaterial).
    """

    def __init__(self, events: Iterable[Event], *, name: Optional[str] = None):
        self._events: List[Event] = list(events)
        self.name = name
        previous: Optional[float] = None
        for position, event in enumerate(self._events):
            if not isinstance(event, Event):
                raise TypeError(
                    f"item {position} is {type(event).__name__}, expected Event"
                )
            if previous is not None and event.timestamp < previous:
                raise ValueError(
                    f"events out of temporal order at position {position}: "
                    f"{event.timestamp} < {previous}"
                )
            previous = event.timestamp

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return EventStream(self._events[index], name=self.name)
        return self._events[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, EventStream):
            return NotImplemented
        return self._events == other._events

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"EventStream{label}({len(self._events)} events)"

    @property
    def events(self) -> List[Event]:
        """The events as a list (copy)."""
        return list(self._events)

    def event_types(self) -> List[str]:
        """Distinct event types, in first-appearance order."""
        seen = {}
        for event in self._events:
            seen.setdefault(event.event_type, None)
        return list(seen)

    def filter(self, predicate: Callable[[Event], bool]) -> "EventStream":
        """Return the sub-stream of events satisfying ``predicate``."""
        return EventStream(
            (event for event in self._events if predicate(event)),
            name=self.name,
        )

    def of_types(self, types: Sequence[str]) -> "EventStream":
        """Return the sub-stream of events whose type is in ``types``."""
        wanted = set(types)
        return self.filter(lambda event: event.event_type in wanted)

    def between(self, start: float, end: float) -> "EventStream":
        """Return events with ``start <= timestamp <= end``."""
        if end < start:
            raise ValueError(f"end ({end}) must be >= start ({start})")
        return self.filter(lambda event: start <= event.timestamp <= end)

    def replace(self, index: int, event: Event) -> "EventStream":
        """Return a copy with the event at ``index`` replaced.

        The replacement must keep the stream temporally ordered; this is
        the stream-level edit behind in-pattern neighbouring
        (Definition 1).
        """
        events = list(self._events)
        events[index] = event
        return EventStream(events, name=self.name)

    def timestamps(self) -> List[float]:
        """All event timestamps, in order."""
        return [event.timestamp for event in self._events]
