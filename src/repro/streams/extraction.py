"""Event extraction: lifting data tuples of interest into events.

Section III-A: "Within a data stream S^D, any data tuple of our interest
is considered an event.  We can extract all events from a given data
stream ... in temporal order and form a new stream S^E."
:class:`EventExtractor` pairs a tuple predicate with a mapping to an
event type (and optional attribute projection); :func:`extract_events`
applies a set of extractors over one data stream.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional, Sequence

from repro.streams.events import DataTuple, Event
from repro.streams.stream import DataStream, EventStream


class EventExtractor:
    """Extracts events of one type from data tuples.

    Parameters
    ----------
    event_type:
        The symbol assigned to extracted events, or a callable mapping the
        matching tuple to a symbol (for families of events such as
        per-cell region entries).
    predicate:
        Decides whether a tuple is "of interest".  Defaults to accepting
        every tuple.
    attributes:
        Optional projection from the tuple to event attributes.  Defaults
        to carrying the tuple's payload through.
    """

    def __init__(
        self,
        event_type,
        *,
        predicate: Optional[Callable[[DataTuple], bool]] = None,
        attributes: Optional[Callable[[DataTuple], Mapping]] = None,
        name: Optional[str] = None,
    ):
        if isinstance(event_type, str):
            if not event_type:
                raise ValueError("event_type must be non-empty")
            self._typer: Callable[[DataTuple], str] = lambda _t: event_type
            self.name = name or event_type
        elif callable(event_type):
            self._typer = event_type
            self.name = name or getattr(event_type, "__name__", "extractor")
        else:
            raise TypeError(
                "event_type must be a string or a callable(DataTuple) -> str"
            )
        self._predicate = predicate
        self._attributes = attributes

    def matches(self, data_tuple: DataTuple) -> bool:
        """Whether this extractor considers the tuple of interest."""
        if self._predicate is None:
            return True
        return bool(self._predicate(data_tuple))

    def extract(self, data_tuple: DataTuple) -> Optional[Event]:
        """Return the extracted event, or ``None`` when not of interest."""
        if not self.matches(data_tuple):
            return None
        if self._attributes is not None:
            payload = dict(self._attributes(data_tuple))
        else:
            payload = data_tuple.values
        return Event(
            self._typer(data_tuple),
            data_tuple.timestamp,
            attributes=payload,
            source=data_tuple.source,
        )


def extract_events(
    stream: DataStream,
    extractors: Sequence[EventExtractor],
    *,
    limit: Optional[int] = None,
) -> EventStream:
    """Run ``extractors`` over ``stream`` and collect the event stream.

    Each tuple may match several extractors and thus yield several events
    (all carrying the tuple's timestamp).  ``limit`` bounds the number of
    *tuples* read, which makes the function safe on factory-backed
    (infinite) streams.
    """
    if not extractors:
        raise ValueError("at least one extractor is required")
    events: List[Event] = []
    for position, data_tuple in enumerate(stream):
        if limit is not None and position >= limit:
            break
        for extractor in extractors:
            event = extractor.extract(data_tuple)
            if event is not None:
                events.append(event)
    return EventStream(events, name=getattr(stream, "name", None))
