"""Event and data-tuple types.

The paper models a data stream as an infinite tuple
``S^D = (d_1, d_2, ...)`` of raw data, and an event stream
``S^E = (e_1, e_2, ...)`` of the tuples of interest, in temporal order
(Section III-A).  :class:`DataTuple` is one ``d_i``; :class:`Event` is one
``e_i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple


def _freeze_attributes(attributes: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    if not attributes:
        return ()
    return tuple(sorted(attributes.items()))


@dataclass(frozen=True)
class DataTuple:
    """One raw record ``d_i`` of a data stream ``S^D``.

    Attributes
    ----------
    timestamp:
        Logical or wall-clock time of the observation.  Only the ordering
        of timestamps matters to the library.
    values:
        The raw payload (e.g. ``{"lat": ..., "lon": ...}``), frozen into a
        sorted tuple of items so tuples are hashable.
    source:
        Identifier of the producing data stream / data subject.
    """

    timestamp: float
    _values: Tuple[Tuple[str, Any], ...] = field(default=())
    source: Optional[str] = None

    def __init__(
        self,
        timestamp: float,
        values: Optional[Mapping[str, Any]] = None,
        source: Optional[str] = None,
    ):
        object.__setattr__(self, "timestamp", float(timestamp))
        object.__setattr__(self, "_values", _freeze_attributes(values))
        object.__setattr__(self, "source", source)

    @property
    def values(self) -> Dict[str, Any]:
        """The payload as a plain dict (copy)."""
        return dict(self._values)

    def value(self, key: str, default: Any = None) -> Any:
        """Return one payload field, or ``default`` when absent."""
        for name, val in self._values:
            if name == key:
                return val
        return default

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataTuple(t={self.timestamp:g}, values={self.values!r}, "
            f"source={self.source!r})"
        )


@dataclass(frozen=True)
class Event:
    """One event ``e_i`` of an event stream ``S^E``.

    Events are immutable and hashable.  Equality covers type, timestamp,
    attributes and source, so two observations of the same phenomenon at
    the same instant compare equal — which is what the pattern-level
    neighbouring definitions need (two streams differ in *one* event).

    Attributes
    ----------
    event_type:
        The symbol this event contributes to the alphabet (e.g.
        ``"enter_cell_42"`` or ``"e7"``).
    timestamp:
        Extraction time; events in a stream are kept in temporal order.
    attributes:
        Optional structured payload carried along for CEP predicates.
    source:
        Identifier of the originating data stream, preserved across
        stream merging so provenance survives (Section III-A).
    """

    event_type: str
    timestamp: float
    _attributes: Tuple[Tuple[str, Any], ...] = field(default=())
    source: Optional[str] = None

    def __init__(
        self,
        event_type: str,
        timestamp: float,
        attributes: Optional[Mapping[str, Any]] = None,
        source: Optional[str] = None,
    ):
        if not isinstance(event_type, str) or not event_type:
            raise ValueError(
                f"event_type must be a non-empty string, got {event_type!r}"
            )
        object.__setattr__(self, "event_type", event_type)
        object.__setattr__(self, "timestamp", float(timestamp))
        object.__setattr__(self, "_attributes", _freeze_attributes(attributes))
        object.__setattr__(self, "source", source)

    @property
    def attributes(self) -> Dict[str, Any]:
        """The attribute payload as a plain dict (copy)."""
        return dict(self._attributes)

    def attribute(self, key: str, default: Any = None) -> Any:
        """Return one attribute, or ``default`` when absent."""
        for name, val in self._attributes:
            if name == key:
                return val
        return default

    def with_timestamp(self, timestamp: float) -> "Event":
        """Return a copy of this event at a different timestamp."""
        return Event(
            self.event_type,
            timestamp,
            attributes=self.attributes,
            source=self.source,
        )

    def with_type(self, event_type: str) -> "Event":
        """Return a copy of this event with a different type symbol.

        This is the elementary "replace one event" edit used by the
        in-pattern neighbouring relation (Definition 1).
        """
        return Event(
            event_type,
            self.timestamp,
            attributes=self.attributes,
            source=self.source,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = f", source={self.source!r}" if self.source else ""
        return f"Event({self.event_type!r}, t={self.timestamp:g}{extra})"
