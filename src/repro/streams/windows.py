"""Window assigners over event streams.

Continuous queries over infinite streams are answered per window.  Four
assigners are provided:

- :class:`TumblingWindows` — fixed-width, non-overlapping time windows;
- :class:`SlidingWindows` — fixed-width windows advancing by a slide step
  (overlapping when ``slide < width``);
- :class:`CountWindows` — windows of a fixed number of events;
- :class:`SessionWindows` — windows split at inactivity gaps (used for
  per-trip windows in the taxi workload).

Each assigner maps an :class:`~repro.streams.stream.EventStream` to a
list of :class:`Window` objects in temporal order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.streams.events import Event
from repro.streams.stream import EventStream
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class Window:
    """One window of events.

    Attributes
    ----------
    index:
        Position of the window in the window stream (0-based).
    start, end:
        Time bounds; events satisfy ``start <= t < end`` for time windows
        (count/session windows report the observed bounds).
    events:
        The member events, in temporal order.
    """

    index: int
    start: float
    end: float
    events: tuple

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def event_types(self) -> frozenset:
        """The set of event types present in the window."""
        return frozenset(event.event_type for event in self.events)

    def contains_type(self, event_type: str) -> bool:
        """Whether an event of ``event_type`` occurs in the window."""
        return any(event.event_type == event_type for event in self.events)


class TumblingWindows:
    """Fixed-width, gap-free, non-overlapping time windows.

    Windows are aligned to ``origin`` (default: the first event's
    timestamp) and cover ``[origin + k*width, origin + (k+1)*width)``.
    Empty windows between occupied ones are emitted when
    ``emit_empty=True`` so downstream per-window answers stay aligned with
    wall-clock time.
    """

    def __init__(
        self,
        width: float,
        *,
        origin: Optional[float] = None,
        emit_empty: bool = False,
    ):
        self.width = check_positive("width", width)
        self.origin = origin
        self.emit_empty = emit_empty

    def assign(self, stream: EventStream) -> List[Window]:
        events = stream.events
        if not events:
            return []
        origin = self.origin if self.origin is not None else events[0].timestamp
        buckets = {}
        for event in events:
            if event.timestamp < origin:
                raise ValueError(
                    f"event at t={event.timestamp} precedes window origin {origin}"
                )
            bucket = int((event.timestamp - origin) // self.width)
            buckets.setdefault(bucket, []).append(event)
        windows: List[Window] = []
        last_bucket = max(buckets)
        bucket_ids: Sequence[int]
        if self.emit_empty:
            bucket_ids = range(0, last_bucket + 1)
        else:
            bucket_ids = sorted(buckets)
        for index, bucket in enumerate(bucket_ids):
            members = tuple(buckets.get(bucket, ()))
            windows.append(
                Window(
                    index=index,
                    start=origin + bucket * self.width,
                    end=origin + (bucket + 1) * self.width,
                    events=members,
                )
            )
        return windows


class SlidingWindows:
    """Fixed-width windows advancing by ``slide`` time units.

    With ``slide == width`` this degenerates to tumbling windows; with
    ``slide < width`` consecutive windows overlap and events are assigned
    to every window covering them.
    """

    def __init__(
        self,
        width: float,
        slide: float,
        *,
        origin: Optional[float] = None,
    ):
        self.width = check_positive("width", width)
        self.slide = check_positive("slide", slide)
        if self.slide > self.width:
            raise ValueError(
                f"slide ({slide}) must not exceed width ({width}); "
                "larger slides would drop events"
            )
        self.origin = origin

    def assign(self, stream: EventStream) -> List[Window]:
        events = stream.events
        if not events:
            return []
        origin = self.origin if self.origin is not None else events[0].timestamp
        horizon = events[-1].timestamp
        windows: List[Window] = []
        start = origin
        index = 0
        while start <= horizon:
            end = start + self.width
            members = tuple(
                event for event in events if start <= event.timestamp < end
            )
            windows.append(Window(index=index, start=start, end=end, events=members))
            index += 1
            start += self.slide
        return windows


class CountWindows:
    """Windows of exactly ``size`` consecutive events (last may be short).

    ``drop_partial=True`` discards a trailing window with fewer than
    ``size`` events.
    """

    def __init__(self, size: int, *, drop_partial: bool = False):
        self.size = check_positive_int("size", size)
        self.drop_partial = drop_partial

    def assign(self, stream: EventStream) -> List[Window]:
        events = stream.events
        windows: List[Window] = []
        for index, offset in enumerate(range(0, len(events), self.size)):
            members = tuple(events[offset : offset + self.size])
            if self.drop_partial and len(members) < self.size:
                break
            windows.append(
                Window(
                    index=index,
                    start=members[0].timestamp,
                    end=members[-1].timestamp,
                    events=members,
                )
            )
        return windows


class SessionWindows:
    """Windows split wherever consecutive events are more than ``gap`` apart.

    Used to segment per-taxi GPS event streams into trips: a pause longer
    than the gap ends the session.
    """

    def __init__(self, gap: float):
        self.gap = check_positive("gap", gap)

    def assign(self, stream: EventStream) -> List[Window]:
        events = stream.events
        if not events:
            return []
        windows: List[Window] = []
        current: List[Event] = [events[0]]
        for event in events[1:]:
            if event.timestamp - current[-1].timestamp > self.gap:
                windows.append(self._finish(len(windows), current))
                current = [event]
            else:
                current.append(event)
        windows.append(self._finish(len(windows), current))
        return windows

    @staticmethod
    def _finish(index: int, members: List[Event]) -> Window:
        return Window(
            index=index,
            start=members[0].timestamp,
            end=members[-1].timestamp,
            events=tuple(members),
        )
