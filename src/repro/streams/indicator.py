"""The windowed existence-indicator reduction.

The pattern-level PPMs of Section V operate on "the existence of events
``I(e_i) ∈ {0, 1}``" (Definition 5).  :class:`IndicatorStream` is that
representation: a boolean matrix with one row per window and one column
per event type of an :class:`EventAlphabet`.  Both evaluation workloads
reduce to it — Algorithm 2's synthetic windows literally are indicator
vectors, and the taxi workload reduces per-trip windows to region-entry
indicators.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.streams.windows import Window


class EventAlphabet:
    """An ordered universe of event-type symbols.

    The ordering fixes the column layout of indicator matrices; lookups
    are O(1).
    """

    def __init__(self, types: Iterable[str]):
        self._types: Tuple[str, ...] = tuple(types)
        if not self._types:
            raise ValueError("an alphabet needs at least one event type")
        self._index: Dict[str, int] = {}
        for position, name in enumerate(self._types):
            if not isinstance(name, str) or not name:
                raise ValueError(f"event type {name!r} must be a non-empty string")
            if name in self._index:
                raise ValueError(f"duplicate event type {name!r} in alphabet")
            self._index[name] = position

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterator[str]:
        return iter(self._types)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other) -> bool:
        if not isinstance(other, EventAlphabet):
            return NotImplemented
        return self._types == other._types

    def __hash__(self) -> int:
        return hash(self._types)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventAlphabet({list(self._types)!r})"

    @property
    def types(self) -> Tuple[str, ...]:
        """The symbols in column order."""
        return self._types

    def index(self, name: str) -> int:
        """Column index of ``name``; raises ``KeyError`` when unknown."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                f"event type {name!r} is not in the alphabet {list(self._types)}"
            ) from None

    def indices(self, names: Sequence[str]) -> List[int]:
        """Column indices for several symbols, in the given order."""
        return [self.index(name) for name in names]

    @classmethod
    def numbered(cls, count: int, *, prefix: str = "e") -> "EventAlphabet":
        """Build the alphabet ``e1..eN`` used by Algorithm 2."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        return cls(f"{prefix}{i}" for i in range(1, count + 1))


class IndicatorStream:
    """A finite stream of windows as binary existence-indicator vectors.

    Internally an ``(n_windows, len(alphabet))`` boolean matrix.  The
    object is immutable from the outside: accessors return copies, and
    perturbation produces new streams via :meth:`with_matrix`.
    """

    def __init__(self, alphabet: EventAlphabet, matrix: np.ndarray):
        if not isinstance(alphabet, EventAlphabet):
            raise TypeError(
                f"alphabet must be EventAlphabet, got {type(alphabet).__name__}"
            )
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError(
                f"matrix must be 2-dimensional, got shape {matrix.shape}"
            )
        if matrix.shape[1] != len(alphabet):
            raise ValueError(
                f"matrix has {matrix.shape[1]} columns but the alphabet has "
                f"{len(alphabet)} types"
            )
        if matrix.dtype != bool:
            unique = np.unique(matrix)
            if not np.all(np.isin(unique, (0, 1))):
                raise ValueError("matrix entries must be 0/1 or boolean")
            matrix = matrix.astype(bool)
        self._alphabet = alphabet
        self._matrix = matrix.copy()
        self._matrix.setflags(write=False)

    # -- construction --------------------------------------------------

    @classmethod
    def from_window_sets(
        cls,
        alphabet: EventAlphabet,
        windows: Iterable[Iterable[str]],
        *,
        strict: bool = True,
    ) -> "IndicatorStream":
        """Build from per-window collections of event-type symbols.

        ``strict=False`` silently ignores symbols outside the alphabet
        (useful when a recorded stream carries event types the analysis
        does not model).
        """
        rows: List[np.ndarray] = []
        for window in windows:
            row = np.zeros(len(alphabet), dtype=bool)
            for name in window:
                if name in alphabet:
                    row[alphabet.index(name)] = True
                elif strict:
                    raise KeyError(
                        f"event type {name!r} is not in the alphabet"
                    )
            rows.append(row)
        if rows:
            matrix = np.stack(rows)
        else:
            matrix = np.zeros((0, len(alphabet)), dtype=bool)
        return cls(alphabet, matrix)

    @classmethod
    def from_event_windows(
        cls,
        alphabet: EventAlphabet,
        windows: Sequence[Window],
        *,
        strict: bool = False,
    ) -> "IndicatorStream":
        """Build from :class:`~repro.streams.windows.Window` objects."""
        return cls.from_window_sets(
            alphabet,
            (window.event_types() for window in windows),
            strict=strict,
        )

    # -- basic accessors -----------------------------------------------

    @property
    def alphabet(self) -> EventAlphabet:
        return self._alphabet

    @property
    def n_windows(self) -> int:
        return int(self._matrix.shape[0])

    def __len__(self) -> int:
        return self.n_windows

    def __eq__(self, other) -> bool:
        if not isinstance(other, IndicatorStream):
            return NotImplemented
        return self._alphabet == other._alphabet and np.array_equal(
            self._matrix, other._matrix
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IndicatorStream({self.n_windows} windows x "
            f"{len(self._alphabet)} types)"
        )

    def matrix(self) -> np.ndarray:
        """The indicator matrix (a writable copy)."""
        return self._matrix.copy()

    def matrix_view(self) -> np.ndarray:
        """A read-only view of the indicator matrix (no copy)."""
        return self._matrix

    def window_types(self, index: int) -> FrozenSet[str]:
        """Event types present in window ``index``."""
        row = self._matrix[index]
        return frozenset(
            name for name, present in zip(self._alphabet.types, row) if present
        )

    def contains(self, index: int, event_type: str) -> bool:
        """Whether ``event_type`` occurs in window ``index``."""
        return bool(self._matrix[index, self._alphabet.index(event_type)])

    def column(self, event_type: str) -> np.ndarray:
        """The per-window indicator vector of one event type (copy)."""
        return self._matrix[:, self._alphabet.index(event_type)].copy()

    def occurrence_rates(self) -> Dict[str, float]:
        """Fraction of windows containing each event type."""
        if self.n_windows == 0:
            return {name: 0.0 for name in self._alphabet.types}
        means = self._matrix.mean(axis=0)
        return {
            name: float(means[i]) for i, name in enumerate(self._alphabet.types)
        }

    # -- detection and perturbation ------------------------------------

    def detect_all(self, event_types: Sequence[str]) -> np.ndarray:
        """Per-window detection of a containment pattern.

        A pattern ``P = seq(e_1..e_m)`` is detected in a window when all
        of its elements occur there — exactly Algorithm 2's rule ("if all
        three events are contained in one L_m, the pattern is detected").
        Returns a boolean vector of length ``n_windows``.
        """
        if not event_types:
            raise ValueError("a pattern needs at least one element")
        cols = self._alphabet.indices(list(event_types))
        return self._matrix[:, cols].all(axis=1)

    def detection_count(self, event_types: Sequence[str]) -> int:
        """Number of windows in which the pattern is detected."""
        return int(self.detect_all(event_types).sum())

    def with_matrix(self, matrix: np.ndarray) -> "IndicatorStream":
        """A new stream with the same alphabet and a different matrix."""
        return IndicatorStream(self._alphabet, matrix)

    def flip(self, window_index: int, event_type: str) -> "IndicatorStream":
        """A new stream with one indicator bit flipped.

        This is the elementary edit generating pattern-level neighbours in
        the windowed model: the two streams differ in the existence of a
        single event.
        """
        matrix = self.matrix()
        col = self._alphabet.index(event_type)
        matrix[window_index, col] = ~matrix[window_index, col]
        return self.with_matrix(matrix)

    def restrict(self, event_types: Sequence[str]) -> "IndicatorStream":
        """Project onto a sub-alphabet (column subset, given order)."""
        sub_alphabet = EventAlphabet(event_types)
        cols = self._alphabet.indices(list(event_types))
        return IndicatorStream(sub_alphabet, self._matrix[:, cols])

    def slice_windows(self, start: int, stop: int) -> "IndicatorStream":
        """Keep only windows ``start:stop`` (python slice semantics)."""
        return IndicatorStream(self._alphabet, self._matrix[start:stop])

    def concatenate(self, other: "IndicatorStream") -> "IndicatorStream":
        """Append another stream over the same alphabet."""
        if self._alphabet != other._alphabet:
            raise ValueError("cannot concatenate streams over different alphabets")
        return IndicatorStream(
            self._alphabet, np.vstack([self._matrix, other._matrix])
        )

    def split(self, fraction: float) -> Tuple["IndicatorStream", "IndicatorStream"]:
        """Split into a leading ``fraction`` and the remainder.

        Used to carve historical (training) windows for the adaptive PPM
        from evaluation windows.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        cut = int(round(fraction * self.n_windows))
        return self.slice_windows(0, cut), self.slice_windows(cut, self.n_windows)
