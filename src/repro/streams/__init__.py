"""Stream substrate: data streams, events, windows, indicator reduction.

Implements the paper's Section III data model (Fig. 1): raw *data streams*
``S^D`` carry data tuples; an extractor lifts tuples of interest into an
*event stream* ``S^E``; windows group events; and the
:class:`~repro.streams.indicator.IndicatorStream` reduction exposes each
window as a binary existence-indicator vector over the event alphabet —
the representation the pattern-level PPMs perturb.
"""

from repro.streams.events import DataTuple, Event
from repro.streams.extraction import EventExtractor, extract_events
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.merge import merge_event_streams
from repro.streams.stream import DataStream, EventStream
from repro.streams.windows import (
    CountWindows,
    SessionWindows,
    SlidingWindows,
    TumblingWindows,
    Window,
)

__all__ = [
    "CountWindows",
    "DataStream",
    "DataTuple",
    "Event",
    "EventAlphabet",
    "EventExtractor",
    "EventStream",
    "IndicatorStream",
    "SessionWindows",
    "SlidingWindows",
    "TumblingWindows",
    "Window",
    "extract_events",
    "merge_event_streams",
]
