"""Setuptools shim.

Kept alongside pyproject.toml so the package installs in offline
environments that lack the ``wheel`` package (``pip install -e .`` needs
it to build a PEP 660 editable wheel; ``python setup.py develop`` does
not).
"""

from setuptools import setup

setup()
